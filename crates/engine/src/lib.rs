//! # sbgt-engine — partitioned in-memory dataflow engine
//!
//! SBGT (IPDPS '23) scales Bayesian group testing by distributing the
//! exponential lattice state space over Apache Spark. This crate is the
//! Spark substitute used by the Rust reproduction: an in-process,
//! partition-parallel dataflow engine that mirrors the Spark primitives the
//! paper relies on:
//!
//! * [`Engine`] — the driver: owns a [`ThreadPool`] of executor threads and a
//!   [`MetricsRegistry`] recording per-task and per-job timings (the
//!   equivalent of Spark's stage/task UI, used by the benchmark harness).
//! * [`Dataset`] — an immutable partitioned collection (the RDD analogue)
//!   with `map`, `filter`, `map_partitions`, `reduce`, `aggregate`, `zip`,
//!   and shuffle-based `repartition`/`group_by_key` operations.
//! * [`Broadcast`] — read-only variables shared with every task (likelihood
//!   tables, pool masks).
//! * [`accumulator`] — commutative counters/sums updated from tasks
//!   (posterior normalization constants, mass accumulators).
//!
//! Everything runs inside one process: "executors" are worker threads and a
//! "cluster" is a thread count, per the reproduction guidance to rebuild the
//! distribution layer on rayon/threads. The dataflow semantics (pure tasks
//! over partitions, barriers between stages, broadcast of read-only state)
//! match what the SBGT paper's dataflow needs, so the scaling structure of
//! the original system is preserved.
//!
//! ## Immutable vs in-place stages
//!
//! Stages come in two execution variants, recorded per job as a
//! [`StageVariant`] in the metrics registry and rendered in the timeline:
//!
//! * **Immutable** (`map_partitions` and everything lowering to it): tasks
//!   read shared partition handles and materialize new output vectors. Any
//!   number of dataset clones can coexist; nothing is ever mutated. This is
//!   the Spark-faithful default, but each stage allocates output the size
//!   of its input — ruinous for a `2^N` posterior updated hundreds of times
//!   per episode.
//! * **In-place** ([`Dataset::map_partitions_in_place`] /
//!   [`Dataset::try_map_partitions_in_place`]): tasks receive `&mut [T]`
//!   and return only a per-partition scalar; no output dataset is
//!   materialized. Mutating through a shared `Arc` would be unsound, so
//!   each task proves uniqueness at runtime with [`Arc::try_unwrap`]:
//!   a partition whose handle is uniquely owned by this dataset is mutated
//!   in place (zero copies); a partition whose handle is shared — a live
//!   [`Dataset::clone`], an outstanding [`Dataset::partition_handles`]
//!   borrow kept alive, a concurrent reader — is **copied first**
//!   (copy-on-write), so observers of the old handle never see the
//!   mutation. The per-stage unique/COW split is what
//!   [`StageVariant::InPlace`] records.
//!
//! The uniqueness rule means in-place stages are *semantically* identical
//! to running the same closure immutably and replacing the dataset — only
//! the allocation profile differs. With fault tolerance off (the default),
//! a failed in-place stage has consumed its partitions and leaves the
//! dataset empty; see `try_map_partitions_in_place`.
//!
//! ## Fault model
//!
//! Stages run through a supervising scheduler ([`Engine::run_stage`]) that
//! provides Spark-style fault containment:
//!
//! * **Retry** ([`RetryPolicy`], Spark's `spark.task.maxFailures`): a
//!   panicking task is re-executed up to the attempt budget; the job fails
//!   only when some task exhausts it. Task closures must be idempotent.
//! * **Speculation** ([`SpeculationConfig`], Spark's `spark.speculation`):
//!   once a quantile of tasks has finished, tasks still running well past
//!   the median duration are duplicated once; first result wins.
//! * **Deterministic fault injection** ([`FaultPlan`] / [`ChaosConfig`],
//!   installed with [`Engine::set_fault_plan`]): seeded panics, straggler
//!   delays, and poisoned results at exact `(stage, task, attempt)`
//!   coordinates, for chaos testing the recovery machinery. A fault fires
//!   purely as a function of the plan and those coordinates (plus the
//!   engine's stage sequence number), so campaigns replay bit-for-bit;
//!   executor scheduling cannot perturb them.
//!
//! Fault tolerance is **opt-in**: with the default config (single attempt,
//! no speculation, no plan — [`Engine::fault_tolerance_active`] false),
//! in-place stages keep their zero-copy path. When active, every in-place
//! stage runs copy-on-write from pristine driver-held partition handles so
//! a retried or speculated attempt always sees unmutated input, and a
//! failed stage restores the dataset unchanged instead of leaving partial
//! results. What was injected and what recovery did about it is recorded
//! per job in [`metrics::FaultStats`] and rendered in the timeline.
//!
//! ## Example
//!
//! ```
//! use sbgt_engine::{Engine, EngineConfig, Dataset};
//!
//! let engine = Engine::new(EngineConfig::default().with_threads(2));
//! let ds = Dataset::from_vec((0u64..1000).collect::<Vec<_>>(), 8);
//! let sum: u64 = ds
//!     .map(&engine, |x| x * 2)
//!     .aggregate(&engine, 0u64, |acc, x| acc + x, |a, b| a + b);
//! assert_eq!(sum, 999 * 1000);
//! ```

pub mod accumulator;
pub mod broadcast;
pub mod chaos;
pub mod config;
pub mod dataset;
pub mod error;
pub mod keyed;
pub mod metrics;
pub mod obs;
pub mod partitioner;
pub mod pool;
pub mod retry;
pub mod shuffle;
pub mod stage;
pub mod timeline;

pub use accumulator::{CountAccumulator, SumAccumulator};
pub use broadcast::Broadcast;
pub use chaos::{ChaosConfig, Fault, FaultPlan, SpeculationConfig};
pub use config::EngineConfig;
pub use dataset::Dataset;
pub use error::{EngineError, Result};
pub use metrics::{
    BpStats, FaultStats, JobMetrics, MetricsRegistry, ServiceStats, StageAgg, StageVariant,
    TaskMetrics, TenantStats, BURN_BUDGET, BURN_WINDOW_ROUNDS,
};
pub use obs::{
    trace_id_for_cohort, LogHistogram, ObsConfig, SpanKind, SpanMeta, SpanRecorder, TraceContext,
    TraceLevel,
};
pub use partitioner::{partition_ranges, HashPartitioner, Partitioner, RangePartitioner};
pub use pool::ThreadPool;
pub use retry::RetryPolicy;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// The driver of the dataflow engine.
///
/// An `Engine` owns a pool of executor threads and a metrics registry. All
/// [`Dataset`] operations take `&Engine` and submit one task per partition to
/// the pool; the engine records wall-clock timings per task and per job so
/// benchmarks can report Spark-style stage breakdowns.
///
/// `Engine` is cheap to clone conceptually — wrap it in [`Arc`] if multiple
/// owners are needed; all of its methods take `&self`.
pub struct Engine {
    pool: ThreadPool,
    config: EngineConfig,
    metrics: Arc<MetricsRegistry>,
    /// Telemetry recorder (spans, marks, counter tracks); shared with
    /// sessions and the service layer. Recording is gated by
    /// `config.obs` — one atomic load per site when off.
    obs: Arc<SpanRecorder>,
    /// Installed fault-injection plan, if any (chaos testing).
    fault_plan: Mutex<Option<Arc<FaultPlan>>>,
    /// Count of stages launched; feeds the fault plan so repeated runs of
    /// the same-named stage draw distinct random faults.
    stage_seq: AtomicU64,
}

impl Engine {
    /// Create an engine with the given configuration, spawning
    /// `config.threads` executor threads immediately.
    pub fn new(config: EngineConfig) -> Self {
        let pool = ThreadPool::new(config.threads, "sbgt-exec");
        let obs = Arc::new(SpanRecorder::new(config.obs));
        Engine {
            pool,
            config,
            metrics: Arc::new(MetricsRegistry::new()),
            obs,
            fault_plan: Mutex::new(None),
            stage_seq: AtomicU64::new(0),
        }
    }

    /// Engine with default configuration (one executor per available core).
    pub fn default_local() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of executor threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Default partition count for datasets created through this engine:
    /// `partitions_per_thread * threads`, at least 1.
    pub fn default_partitions(&self) -> usize {
        (self.config.partitions_per_thread * self.pool.threads()).max(1)
    }

    /// The metrics registry recording job/task timings.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The telemetry recorder. Instrumentation sites gate on
    /// [`SpanRecorder::enabled_at`] before recording; exporters snapshot
    /// it ([`obs::render_chrome_trace`],
    /// [`MetricsRegistry::render_prometheus`]).
    pub fn obs(&self) -> &Arc<SpanRecorder> {
        &self.obs
    }

    /// Render the ASCII timeline of everything this engine recorded,
    /// including the `obs:` summary segment when tracing was on.
    pub fn render_timeline(&self) -> String {
        timeline::render_timeline_with_obs(&self.metrics, &self.obs)
    }

    /// Render the Prometheus exposition page for this engine, including
    /// the `sbgt_obs_*` recorder-health families sourced from the span
    /// recorder (dropped events, ring wraps, lane counts).
    pub fn render_prometheus(&self) -> String {
        self.metrics.render_prometheus_with_obs(Some(&self.obs))
    }

    /// The underlying executor pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Install a fault-injection plan. Replaces any existing plan and
    /// activates the fault-tolerant stage path (see
    /// [`Engine::fault_tolerance_active`]).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.fault_plan.lock() = Some(Arc::new(plan));
    }

    /// Remove the installed fault plan, silencing injection.
    pub fn clear_fault_plan(&self) {
        *self.fault_plan.lock() = None;
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault_plan.lock().clone()
    }

    /// Whether stages must be retry-safe: retries enabled, speculation
    /// enabled, or a fault plan installed. In-place dataset stages use this
    /// to choose between the zero-copy path (off) and the copy-on-write
    /// recovery path (on), where every attempt re-runs against pristine
    /// partition input.
    pub fn fault_tolerance_active(&self) -> bool {
        self.config.retry.retries_enabled()
            || self.config.speculation.is_some()
            || self.fault_plan.lock().is_some()
    }

    /// Next stage sequence number (monotonic per engine).
    pub(crate) fn next_stage_seq(&self) -> u64 {
        self.stage_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Run a named job: one closure per task, results returned in task order.
    ///
    /// This is the primitive every `Dataset` operation lowers to. Task
    /// panics are caught and surfaced as [`EngineError::TaskPanicked`]; the
    /// job's timing is recorded in the metrics registry whether it succeeds
    /// or fails.
    pub fn run_job<T, F>(&self, name: &str, tasks: Vec<F>) -> Result<Vec<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let obs_start = self
            .obs
            .enabled_at(TraceLevel::Spans)
            .then(|| (self.obs.intern(name), self.obs.now_ns()));
        let start = std::time::Instant::now();
        let n_tasks = tasks.len();
        let outcome = self.pool.run_tasks(tasks);
        let elapsed = start.elapsed();
        if let Some((name_id, start_ns)) = obs_start {
            let meta = SpanMeta {
                failed: outcome.is_err(),
                ..SpanMeta::default()
            };
            self.obs
                .record_span_ending_now(SpanKind::Stage, name_id, start_ns, meta);
        }
        match outcome {
            Ok(results) => {
                let task_metrics = results
                    .iter()
                    .enumerate()
                    .map(|(i, r)| TaskMetrics {
                        index: i,
                        duration: r.duration,
                    })
                    .collect();
                self.metrics.record_job(JobMetrics {
                    name: name.to_string(),
                    tasks: task_metrics,
                    wall: elapsed,
                    succeeded: true,
                    variant: StageVariant::Immutable,
                    faults: FaultStats::default(),
                });
                Ok(results.into_iter().map(|r| r.value).collect())
            }
            Err(e) => {
                self.metrics.record_job(JobMetrics {
                    name: name.to_string(),
                    tasks: Vec::with_capacity(0),
                    wall: elapsed,
                    succeeded: false,
                    variant: StageVariant::Immutable,
                    faults: FaultStats::default(),
                });
                let _ = n_tasks;
                Err(e)
            }
        }
    }

    /// Broadcast a read-only value to tasks (Spark `sc.broadcast`).
    pub fn broadcast<T: Send + Sync + 'static>(&self, value: T) -> Broadcast<T> {
        self.metrics.record_broadcast();
        Broadcast::new(value)
    }
}

/// A clonable handle to a shared [`Engine`].
///
/// The engine itself is `!Clone` (it owns the executor pool); services that
/// multiplex many concurrent workloads over one pool — `sbgt-service`'s
/// cohort workers, the batcher, the driver — each hold a `SharedEngine`.
/// Dereferences to [`Engine`], so every `&Engine` API works unchanged.
#[derive(Clone, Debug)]
pub struct SharedEngine(Arc<Engine>);

impl SharedEngine {
    /// Spawn an engine with the given configuration and wrap it for sharing.
    pub fn new(config: EngineConfig) -> Self {
        SharedEngine(Arc::new(Engine::new(config)))
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.0
    }
}

impl From<Engine> for SharedEngine {
    fn from(engine: Engine) -> Self {
        SharedEngine(Arc::new(engine))
    }
}

impl std::ops::Deref for SharedEngine {
    type Target = Engine;

    fn deref(&self) -> &Engine {
        &self.0
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.pool.threads())
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_runs_simple_job() {
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
        let out = engine.run_job("squares", tasks).unwrap();
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn engine_records_metrics() {
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        engine
            .run_job("a", (0..4).map(|i| move || i).collect::<Vec<_>>())
            .unwrap();
        engine
            .run_job("b", (0..2).map(|i| move || i).collect::<Vec<_>>())
            .unwrap();
        let jobs = engine.metrics().jobs();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "a");
        assert_eq!(jobs[0].tasks.len(), 4);
        assert_eq!(jobs[1].name, "b");
        assert!(jobs.iter().all(|j| j.succeeded));
    }

    #[test]
    fn engine_surfaces_task_panic() {
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let tasks: Vec<Box<dyn FnOnce() -> i32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom")), Box::new(|| 3)];
        let err = engine.run_job("panicky", tasks).unwrap_err();
        match err {
            EngineError::TaskPanicked { .. } => {}
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
        // Pool must stay usable after a panic.
        let ok = engine.run_job("after", vec![|| 42]).unwrap();
        assert_eq!(ok, vec![42]);
    }

    #[test]
    fn shared_engine_clones_share_pool_and_metrics() {
        let shared = SharedEngine::new(EngineConfig::default().with_threads(2));
        let other = shared.clone();
        shared
            .run_job("a", (0..2).map(|i| move || i).collect::<Vec<_>>())
            .unwrap();
        other
            .run_job("b", (0..2).map(|i| move || i).collect::<Vec<_>>())
            .unwrap();
        // Both handles drive the same engine: one registry sees both jobs.
        assert_eq!(shared.metrics().job_count(), 2);
        assert_eq!(other.engine().metrics().job_count(), 2);
        let wrapped: SharedEngine = Engine::new(EngineConfig::default().with_threads(1)).into();
        assert_eq!(wrapped.threads(), 1);
    }

    #[test]
    fn default_partitions_positive() {
        let engine = Engine::new(EngineConfig::default().with_threads(1));
        assert!(engine.default_partitions() >= 1);
    }

    #[test]
    fn fault_tolerance_activation_gates() {
        // Default: off — the zero-copy in-place path stays live.
        let engine = Engine::new(EngineConfig::default().with_threads(1));
        assert!(!engine.fault_tolerance_active());
        // Installing any fault plan flips it on; clearing flips it back.
        engine.set_fault_plan(FaultPlan::new().panic_at("x", 0, 0));
        assert!(engine.fault_tolerance_active());
        assert!(engine.fault_plan().is_some());
        engine.clear_fault_plan();
        assert!(!engine.fault_tolerance_active());
        // Retries or speculation alone also activate it.
        let retrying = Engine::new(
            EngineConfig::default()
                .with_threads(1)
                .with_retry(RetryPolicy::default()),
        );
        assert!(retrying.fault_tolerance_active());
        let speculating = Engine::new(
            EngineConfig::default()
                .with_threads(1)
                .with_speculation(SpeculationConfig::default()),
        );
        assert!(speculating.fault_tolerance_active());
    }
}
