//! Engine configuration.

use serde::{Deserialize, Serialize};

/// Configuration for an [`crate::Engine`].
///
/// Mirrors the knobs of a Spark deployment that matter to SBGT: executor
/// count (`threads`) and partition granularity (`partitions_per_thread`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of executor threads. Defaults to the available parallelism of
    /// the host (at least 1).
    pub threads: usize,
    /// Partitions created per thread when a dataset does not specify its own
    /// partition count. Over-partitioning (the Spark default of 2-4x) keeps
    /// executors busy when partition workloads are skewed.
    pub partitions_per_thread: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: available_threads(),
            partitions_per_thread: 4,
        }
    }
}

impl EngineConfig {
    /// Set the executor thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the per-thread partition multiplier (clamped to at least 1).
    pub fn with_partitions_per_thread(mut self, ppt: usize) -> Self {
        self.partitions_per_thread = ppt.max(1);
        self
    }
}

/// Available hardware parallelism, falling back to 1 when unknown.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = EngineConfig::default();
        assert!(c.threads >= 1);
        assert!(c.partitions_per_thread >= 1);
    }

    #[test]
    fn builders_clamp() {
        let c = EngineConfig::default()
            .with_threads(0)
            .with_partitions_per_thread(0);
        assert_eq!(c.threads, 1);
        assert_eq!(c.partitions_per_thread, 1);
    }

    #[test]
    fn serde_roundtrip() {
        let c = EngineConfig::default().with_threads(3);
        let s = serde_json_like(&c);
        assert!(s.contains("threads"));
    }

    fn serde_json_like(c: &EngineConfig) -> String {
        // serde_json is not an allowed dependency; exercise Serialize via the
        // debug representation plus a manual field check instead.
        format!("threads={} ppt={}", c.threads, c.partitions_per_thread)
    }
}
