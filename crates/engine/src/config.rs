//! Engine configuration.

use serde::{Deserialize, Serialize};

use crate::chaos::SpeculationConfig;
use crate::obs::ObsConfig;
use crate::retry::RetryPolicy;

/// Configuration for an [`crate::Engine`].
///
/// Mirrors the knobs of a Spark deployment that matter to SBGT: executor
/// count (`threads`), partition granularity (`partitions_per_thread`), task
/// re-execution (`retry`, Spark's `spark.task.maxFailures`), and straggler
/// speculation (`speculation`, Spark's `spark.speculation`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of executor threads. Defaults to the available parallelism of
    /// the host (at least 1).
    pub threads: usize,
    /// Partitions created per thread when a dataset does not specify its own
    /// partition count. Over-partitioning (the Spark default of 2-4x) keeps
    /// executors busy when partition workloads are skewed.
    pub partitions_per_thread: usize,
    /// Per-task retry policy applied to every dataset stage. Defaults to
    /// [`RetryPolicy::none`] (single attempt): retries force in-place
    /// stages onto the copy-on-write path (a retried task must re-run
    /// against pristine input), so fault tolerance is opt-in to keep the
    /// zero-copy hot loop intact by default.
    pub retry: RetryPolicy,
    /// Speculative re-execution of stragglers; `None` (default) disables
    /// it. Enabling it also activates the fault-tolerant stage path.
    pub speculation: Option<SpeculationConfig>,
    /// Telemetry recording ([`ObsConfig`]). Defaults to the `SBGT_TRACE`
    /// environment variable (unset meaning off), so any binary can be
    /// traced without code changes; recording off is a branch on one
    /// atomic per instrumentation site.
    pub obs: ObsConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: available_threads(),
            partitions_per_thread: 4,
            retry: RetryPolicy::none(),
            speculation: None,
            obs: ObsConfig::from_env(),
        }
    }
}

impl EngineConfig {
    /// Set the executor thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the per-thread partition multiplier (clamped to at least 1).
    pub fn with_partitions_per_thread(mut self, ppt: usize) -> Self {
        self.partitions_per_thread = ppt.max(1);
        self
    }

    /// Set the stage retry policy (e.g. `RetryPolicy::default()` for the
    /// Spark-style 4 attempts).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enable speculative straggler re-execution.
    pub fn with_speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.speculation = Some(speculation);
        self
    }

    /// Set the telemetry configuration explicitly (overriding the
    /// `SBGT_TRACE` environment default).
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }
}

/// Available hardware parallelism, falling back to 1 when unknown.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = EngineConfig::default();
        assert!(c.threads >= 1);
        assert!(c.partitions_per_thread >= 1);
        assert_eq!(c.retry.max_attempts(), 1, "fault tolerance is opt-in");
        assert!(c.speculation.is_none());
    }

    #[test]
    fn builders_clamp() {
        let c = EngineConfig::default()
            .with_threads(0)
            .with_partitions_per_thread(0);
        assert_eq!(c.threads, 1);
        assert_eq!(c.partitions_per_thread, 1);
    }

    #[test]
    fn obs_builder_overrides_env_default() {
        use crate::obs::TraceLevel;
        let c = EngineConfig::default().with_obs(ObsConfig::full());
        assert_eq!(c.obs.level, TraceLevel::Full);
        assert_eq!(
            EngineConfig::default().with_obs(ObsConfig::off()).obs.level,
            TraceLevel::Off
        );
    }

    #[test]
    fn fault_tolerance_builders() {
        let c = EngineConfig::default()
            .with_retry(RetryPolicy::default())
            .with_speculation(SpeculationConfig::default());
        assert_eq!(c.retry.max_attempts(), 4);
        let spec = c.speculation.unwrap();
        assert!(spec.quantile > 0.0 && spec.quantile <= 1.0);
        assert!(spec.multiplier >= 1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let c = EngineConfig::default().with_threads(3);
        let s = serde_json_like(&c);
        assert!(s.contains("threads"));
    }

    fn serde_json_like(c: &EngineConfig) -> String {
        // serde_json is not an allowed dependency; exercise Serialize via the
        // debug representation plus a manual field check instead.
        format!("threads={} ppt={}", c.threads, c.partitions_per_thread)
    }
}
