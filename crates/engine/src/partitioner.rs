//! Partitioning strategies.
//!
//! Datasets are split into contiguous partitions; shuffles route records to
//! target partitions with a [`Partitioner`]. The hash partitioner uses the
//! FxHash multiplication-based mixing function (fast, adequate quality for
//! in-process shuffles; HashDoS resistance is irrelevant here — see the
//! perf-book guidance on hash function choice).

use std::hash::{Hash, Hasher};
use std::ops::Range;

/// Split `len` items into `parts` contiguous ranges whose sizes differ by at
/// most one. Returns exactly `parts` ranges (possibly empty trailing ones
/// when `len < parts`).
///
/// The first `len % parts` ranges get one extra element, which keeps the
/// longest-partition length minimal — the property that bounds stage wall
/// time in a barrier-synchronized dataflow.
pub fn partition_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Maps a record key to a target partition index.
pub trait Partitioner<K: ?Sized>: Send + Sync {
    /// Total number of target partitions.
    fn num_partitions(&self) -> usize;
    /// Target partition for `key`; must be `< num_partitions()`.
    fn partition(&self, key: &K) -> usize;
}

/// Hash partitioner over any `Hash` key.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    parts: usize,
}

impl HashPartitioner {
    /// Create a hash partitioner targeting `parts` partitions (at least 1).
    pub fn new(parts: usize) -> Self {
        HashPartitioner {
            parts: parts.max(1),
        }
    }
}

impl<K: Hash + ?Sized> Partitioner<K> for HashPartitioner {
    fn num_partitions(&self) -> usize {
        self.parts
    }

    fn partition(&self, key: &K) -> usize {
        let mut hasher = FxHasher::default();
        key.hash(&mut hasher);
        (hasher.finish() % self.parts as u64) as usize
    }
}

/// Range partitioner for `u64` keys distributed over a known span, used to
/// shard lattice state indices contiguously (state index = array index, so
/// contiguous shards keep kernels gather-free).
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    parts: usize,
    span: u64,
}

impl RangePartitioner {
    /// Partitioner for keys in `0..span` into `parts` contiguous ranges.
    pub fn new(parts: usize, span: u64) -> Self {
        RangePartitioner {
            parts: parts.max(1),
            span: span.max(1),
        }
    }
}

impl Partitioner<u64> for RangePartitioner {
    fn num_partitions(&self) -> usize {
        self.parts
    }

    fn partition(&self, key: &u64) -> usize {
        let key = (*key).min(self.span - 1);
        // Mirror partition_ranges: first `extra` ranges are one larger.
        let base = self.span / self.parts as u64;
        let extra = self.span % self.parts as u64;
        let boundary = extra * (base + 1);
        if key < boundary {
            (key / (base + 1)) as usize
        } else {
            match (key - boundary).checked_div(base) {
                Some(q) => (extra + q) as usize,
                // span < parts: everything past the boundary is out of
                // range of the sized partitions; clamp to the last
                // non-empty one.
                None => (extra.saturating_sub(1)) as usize,
            }
        }
    }
}

/// FxHash: the rustc hash function (multiply + rotate mixing).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly() {
        for len in [0usize, 1, 7, 16, 100, 1023] {
            for parts in [1usize, 2, 3, 8, 50] {
                let ranges = partition_ranges(len, parts);
                assert_eq!(ranges.len(), parts);
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start);
                    expected_start = r.end;
                }
                assert_eq!(expected_start, len);
                let sizes: Vec<_> = ranges.iter().map(|r| r.len()).collect();
                let max = sizes.iter().max().unwrap();
                let min = sizes.iter().min().unwrap();
                assert!(max - min <= 1, "balanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn zero_parts_clamps() {
        let ranges = partition_ranges(10, 0);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0], 0..10);
    }

    #[test]
    fn hash_partitioner_in_range() {
        let p = HashPartitioner::new(7);
        for key in 0u64..1000 {
            let idx = p.partition(&key);
            assert!(idx < 7);
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p = HashPartitioner::new(8);
        let mut counts = [0usize; 8];
        for key in 0u64..8000 {
            counts[p.partition(&key)] += 1;
        }
        // Expect roughly 1000 per bucket; allow generous slack.
        for &c in &counts {
            assert!(c > 500 && c < 1500, "skewed: {counts:?}");
        }
    }

    #[test]
    fn range_partitioner_matches_partition_ranges() {
        for span in [1u64, 5, 16, 100, 1000] {
            for parts in [1usize, 2, 3, 7, 16] {
                let ranges = partition_ranges(span as usize, parts);
                let p = RangePartitioner::new(parts, span);
                for key in 0..span {
                    let expected = ranges
                        .iter()
                        .position(|r| r.contains(&(key as usize)))
                        .unwrap();
                    assert_eq!(
                        p.partition(&key),
                        expected,
                        "span={span} parts={parts} key={key}"
                    );
                }
            }
        }
    }

    #[test]
    fn range_partitioner_clamps_out_of_span() {
        let p = RangePartitioner::new(4, 100);
        assert!(Partitioner::<u64>::partition(&p, &1_000_000) < 4);
    }

    #[test]
    fn fxhasher_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        "hello world".hash(&mut a);
        "hello world".hash(&mut b);
        assert_eq!(a.finish(), b.finish());
    }
}
