//! Task retry — the engine's fault-containment layer.
//!
//! Spark re-executes failed tasks up to `spark.task.maxFailures` before
//! failing the job; long surveillance runs rely on that to survive flaky
//! executors. The in-process analogue retries a panicking task closure a
//! bounded number of times. Retryable tasks are `Fn` (re-invocable) rather
//! than the one-shot `FnOnce` of [`crate::ThreadPool::run_tasks`]; task
//! closures must therefore be idempotent, exactly like Spark tasks.

use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::{Engine, JobMetrics, TaskMetrics};

/// Policy for retrying failed tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per task (≥ 1; 1 means no retry).
    pub max_attempts: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Spark's default is 4 attempts.
        RetryPolicy { max_attempts: 4 }
    }
}

impl Engine {
    /// Run a job whose tasks are retried on panic per `policy`.
    ///
    /// Returns the results in task order, plus the total number of retries
    /// that occurred. Fails with [`EngineError::TaskPanicked`] only after a
    /// task exhausts its attempts; earlier attempts' panics are contained.
    pub fn run_job_retrying<T, F>(
        &self,
        name: &str,
        tasks: Vec<F>,
        policy: RetryPolicy,
    ) -> Result<(Vec<T>, usize)>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        let start = std::time::Instant::now();
        let tasks: Vec<Arc<F>> = tasks.into_iter().map(Arc::new).collect();

        // Attempt loop: resubmit only the failed task indices each round.
        let mut pending: Vec<usize> = (0..tasks.len()).collect();
        let mut slots: Vec<Option<T>> = (0..tasks.len()).map(|_| None).collect();
        let mut durations: Vec<std::time::Duration> = vec![Default::default(); tasks.len()];
        let mut retries = 0usize;
        let mut last_error: Option<(usize, String)> = None;

        for attempt in 0..policy.max_attempts {
            if pending.is_empty() {
                break;
            }
            if attempt > 0 {
                retries += pending.len();
            }
            let round: Vec<_> = pending
                .iter()
                .map(|&idx| {
                    let task = Arc::clone(&tasks[idx]);
                    move || {
                        let started = std::time::Instant::now();
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task()));
                        (out, started.elapsed())
                    }
                })
                .collect();
            let outcomes = self.pool().run_tasks(round)?;
            let mut still_pending = Vec::new();
            for (slot_pos, result) in pending.iter().zip(outcomes) {
                let (outcome, duration) = result.value;
                match outcome {
                    Ok(value) => {
                        slots[*slot_pos] = Some(value);
                        durations[*slot_pos] = duration;
                    }
                    Err(payload) => {
                        last_error =
                            Some((*slot_pos, crate::error::panic_message(payload.as_ref())));
                        still_pending.push(*slot_pos);
                    }
                }
            }
            pending = still_pending;
        }

        let succeeded = pending.is_empty();
        self.metrics().record_job(JobMetrics {
            name: name.to_string(),
            tasks: durations
                .iter()
                .enumerate()
                .map(|(index, &duration)| TaskMetrics { index, duration })
                .collect(),
            wall: start.elapsed(),
            succeeded,
            variant: crate::StageVariant::Immutable,
        });
        if !succeeded {
            let (task, message) = last_error.expect("pending implies a recorded failure");
            return Err(EngineError::TaskPanicked { task, message });
        }
        Ok((
            slots
                .into_iter()
                .map(|s| s.expect("all slots filled"))
                .collect(),
            retries,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn engine() -> Engine {
        Engine::new(EngineConfig::default().with_threads(2))
    }

    #[test]
    fn no_failures_no_retries() {
        let e = engine();
        let tasks: Vec<_> = (0..6).map(|i| move || i * 2).collect();
        let (out, retries) = e
            .run_job_retrying("clean", tasks, RetryPolicy::default())
            .unwrap();
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(retries, 0);
    }

    #[test]
    fn flaky_task_succeeds_on_retry() {
        let e = engine();
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = Arc::clone(&attempts);
        // Fails twice, then succeeds.
        let flaky = move || {
            let n = a.fetch_add(1, Ordering::SeqCst);
            if n < 2 {
                panic!("transient failure {n}");
            }
            99
        };
        let (out, retries) = e
            .run_job_retrying("flaky", vec![flaky], RetryPolicy { max_attempts: 4 })
            .unwrap();
        assert_eq!(out, vec![99]);
        assert_eq!(retries, 2);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn permanent_failure_exhausts_attempts() {
        let e = engine();
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let doomed = move || -> i32 {
            c.fetch_add(1, Ordering::SeqCst);
            panic!("permanent");
        };
        let err = e
            .run_job_retrying("doomed", vec![doomed], RetryPolicy { max_attempts: 3 })
            .unwrap_err();
        match err {
            EngineError::TaskPanicked { task: 0, message } => {
                assert_eq!(message, "permanent");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        // The failed job is recorded as such.
        let jobs = e.metrics().jobs();
        assert!(!jobs.last().unwrap().succeeded);
    }

    #[test]
    fn only_failed_tasks_are_retried() {
        let e = engine();
        let good_calls = Arc::new(AtomicUsize::new(0));
        let flaky_calls = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&good_calls);
        let f = Arc::clone(&flaky_calls);
        let tasks: Vec<Box<dyn Fn() -> u32 + Send + Sync>> = vec![
            Box::new(move || {
                g.fetch_add(1, Ordering::SeqCst);
                1
            }),
            Box::new(move || {
                if f.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("once");
                }
                2
            }),
        ];
        let (out, retries) = e
            .run_job_retrying("partial", tasks, RetryPolicy::default())
            .unwrap();
        assert_eq!(out, vec![1, 2]);
        assert_eq!(retries, 1);
        assert_eq!(good_calls.load(Ordering::SeqCst), 1, "good task ran once");
        assert_eq!(flaky_calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let e = engine();
        let _ = e.run_job_retrying("bad", vec![|| 1], RetryPolicy { max_attempts: 0 });
    }
}
