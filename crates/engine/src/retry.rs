//! Task retry — the engine's fault-containment layer.
//!
//! Spark re-executes failed tasks up to `spark.task.maxFailures` before
//! failing the job; long surveillance runs rely on that to survive flaky
//! executors. The in-process analogue retries a panicking task closure a
//! bounded number of times. Retryable tasks are `Fn` (re-invocable) rather
//! than the one-shot `FnOnce` of [`crate::ThreadPool::run_tasks`]; task
//! closures must therefore be idempotent, exactly like Spark tasks.
//!
//! The actual retry loop lives in the stage scheduler
//! ([`crate::Engine::run_stage_with`]), which also handles fault injection
//! and speculative straggler re-execution; [`crate::Engine::run_job_retrying`]
//! is the thin policy-explicit entry point kept for driver-level jobs.

use serde::{Deserialize, Serialize};

use crate::error::{EngineError, Result};
use crate::Engine;

/// Policy for retrying failed tasks.
///
/// The attempt budget is guaranteed `>= 1` by construction: use
/// [`RetryPolicy::new`] (validated), [`RetryPolicy::clamped`], or
/// [`RetryPolicy::none`]. A zero-attempt policy cannot exist, so jobs can
/// never fail by mis-configuration instead of by task fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per task (invariant: `>= 1`; 1 means no retry).
    max_attempts: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Spark's default is 4 attempts.
        RetryPolicy { max_attempts: 4 }
    }
}

impl RetryPolicy {
    /// A validated policy. `max_attempts == 0` is rejected with
    /// [`EngineError::InvalidArgument`] instead of blowing up later inside
    /// a job (the pre-PR-2 behaviour was an `assert!` panic on the driver).
    pub fn new(max_attempts: usize) -> Result<Self> {
        if max_attempts == 0 {
            return Err(EngineError::InvalidArgument(
                "retry policy needs at least one attempt".to_string(),
            ));
        }
        Ok(RetryPolicy { max_attempts })
    }

    /// Infallible constructor: clamps zero to one attempt.
    pub fn clamped(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
        }
    }

    /// Single attempt, no retry — the default of [`crate::EngineConfig`].
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1 }
    }

    /// Maximum attempts per task (always `>= 1`).
    pub fn max_attempts(&self) -> usize {
        self.max_attempts
    }

    /// Whether failed tasks get re-executed at all.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }
}

impl Engine {
    /// Run a job whose tasks are retried on panic per `policy`.
    ///
    /// Returns the results in task order, plus the total number of retries
    /// that occurred. Fails with [`EngineError::TaskPanicked`] (carrying
    /// the stage name and attempt count) only after a task exhausts its
    /// attempts; earlier attempts' panics are contained. Runs through the
    /// stage scheduler, so an installed [`crate::FaultPlan`] and the
    /// engine's speculation config apply here too.
    pub fn run_job_retrying<T, F>(
        &self,
        name: &str,
        tasks: Vec<F>,
        policy: RetryPolicy,
    ) -> Result<(Vec<T>, usize)>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        let (results, stats) =
            self.run_stage_with(name, tasks, policy, self.config().speculation)?;
        Ok((results, stats.retries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default().with_threads(2))
    }

    #[test]
    fn no_failures_no_retries() {
        let e = engine();
        let tasks: Vec<_> = (0..6).map(|i| move || i * 2).collect();
        let (out, retries) = e
            .run_job_retrying("clean", tasks, RetryPolicy::default())
            .unwrap();
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(retries, 0);
    }

    #[test]
    fn flaky_task_succeeds_on_retry() {
        let e = engine();
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = Arc::clone(&attempts);
        // Fails twice, then succeeds.
        let flaky = move || {
            let n = a.fetch_add(1, Ordering::SeqCst);
            if n < 2 {
                panic!("transient failure {n}");
            }
            99
        };
        let (out, retries) = e
            .run_job_retrying("flaky", vec![flaky], RetryPolicy::new(4).unwrap())
            .unwrap();
        assert_eq!(out, vec![99]);
        assert_eq!(retries, 2);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn permanent_failure_exhausts_attempts() {
        let e = engine();
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let doomed = move || -> i32 {
            c.fetch_add(1, Ordering::SeqCst);
            panic!("permanent");
        };
        let err = e
            .run_job_retrying("doomed", vec![doomed], RetryPolicy::new(3).unwrap())
            .unwrap_err();
        match err {
            EngineError::TaskPanicked {
                stage,
                task: 0,
                attempts,
                message,
            } => {
                assert_eq!(stage, "doomed");
                assert_eq!(attempts, 3);
                assert_eq!(message, "permanent");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        // The failed job is recorded as such, with its retries counted.
        let jobs = e.metrics().jobs();
        let last = jobs.last().unwrap();
        assert!(!last.succeeded);
        assert_eq!(last.faults.retries, 2);
    }

    #[test]
    fn only_failed_tasks_are_retried() {
        let e = engine();
        let good_calls = Arc::new(AtomicUsize::new(0));
        let flaky_calls = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&good_calls);
        let f = Arc::clone(&flaky_calls);
        let tasks: Vec<Box<dyn Fn() -> u32 + Send + Sync>> = vec![
            Box::new(move || {
                g.fetch_add(1, Ordering::SeqCst);
                1
            }),
            Box::new(move || {
                if f.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("once");
                }
                2
            }),
        ];
        let (out, retries) = e
            .run_job_retrying("partial", tasks, RetryPolicy::default())
            .unwrap();
        assert_eq!(out, vec![1, 2]);
        assert_eq!(retries, 1);
        assert_eq!(good_calls.load(Ordering::SeqCst), 1, "good task ran once");
        assert_eq!(flaky_calls.load(Ordering::SeqCst), 2);
    }

    /// Regression: a zero-attempt config used to `assert!`-panic on the
    /// driver inside `run_job_retrying`; it is now rejected at policy
    /// construction with a typed error, and an invalid policy smuggled in
    /// anyway (same-crate struct literal) surfaces `EngineError` too.
    #[test]
    fn zero_attempts_rejected_without_panicking() {
        match RetryPolicy::new(0) {
            Err(EngineError::InvalidArgument(msg)) => {
                assert!(msg.contains("at least one attempt"), "{msg}");
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
        assert_eq!(RetryPolicy::clamped(0).max_attempts(), 1);
        assert_eq!(RetryPolicy::none().max_attempts(), 1);
        assert!(!RetryPolicy::none().retries_enabled());
        assert!(RetryPolicy::default().retries_enabled());

        // Defense in depth: the scheduler validates rather than asserting.
        let e = engine();
        let invalid = RetryPolicy { max_attempts: 0 };
        match e.run_job_retrying("bad", vec![|| 1], invalid) {
            Err(EngineError::InvalidArgument(_)) => {}
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
    }
}
