//! Exporter integration tests: a real engine run at `Full` trace level
//! must yield a Chrome trace that parses, pairs every B with its E, and
//! nests task spans inside their parent stage span — plus a Prometheus
//! scrape that round-trips through the text parser.

use sbgt_engine::obs::{
    parse_json, parse_prometheus, render_chrome_trace, validate_chrome_trace, JsonValue, ObsConfig,
    SpanKind, SpanMeta, TraceLevel,
};
use sbgt_engine::{Dataset, Engine, EngineConfig};

/// Fault-free traced engine: speculation/retry losers can outlive their
/// stage span, so nesting assertions need a clean fault configuration.
fn traced_engine() -> Engine {
    Engine::new(
        EngineConfig::default()
            .with_threads(2)
            .with_obs(ObsConfig::full()),
    )
}

/// Run a few engine jobs so every lane holds stage and task spans.
fn run_some_jobs(e: &Engine) {
    let ds = Dataset::from_vec((0..64i64).collect(), 4);
    let doubled = ds.map(e, |x| x * 2);
    assert_eq!(doubled.collect().len(), 64);
    let sum = ds.aggregate(e, 0i64, |acc, x| acc + x, |a, b| a + b);
    assert_eq!(sum, (0..64).sum::<i64>());
}

#[test]
fn chrome_trace_from_a_real_run_parses_and_validates() {
    let e = traced_engine();
    {
        // An outer driver-side span (what a session round records) so the
        // driver lane exercises the validator's nesting logic: stage
        // spans close inside it.
        let rec = e.obs();
        let _round = rec.span(
            TraceLevel::Spans,
            SpanKind::Round,
            "test:round",
            SpanMeta::default(),
        );
        run_some_jobs(&e);
    }
    let trace = render_chrome_trace(e.obs());
    // Strict JSON parse (the in-repo parser rejects malformed output).
    let json = parse_json(&trace).expect("trace must be valid JSON");
    let JsonValue::Obj(fields) = &json else {
        panic!("trace root must be an object");
    };
    assert!(fields.iter().any(|(k, _)| k == "traceEvents"));
    // The structural validator checks B/E pairing, name matching, and
    // per-thread timestamp monotonicity.
    let summary = validate_chrome_trace(&trace).expect("trace must validate");
    assert!(summary.spans > 0, "a real run produces spans");
    assert!(summary.lanes >= 1);
    assert!(
        summary.max_depth >= 2,
        "task spans nest under stage spans (depth {})",
        summary.max_depth
    );
}

#[test]
fn task_spans_nest_inside_their_stage_span() {
    let e = traced_engine();
    run_some_jobs(&e);
    let rec = e.obs();
    let snap = rec.snapshot();
    assert_eq!(snap.total_dropped(), 0, "small run must not wrap the ring");
    let events: Vec<_> = snap.all_events().collect();
    let stages: Vec<_> = events
        .iter()
        .filter(|ev| ev.kind == SpanKind::Stage)
        .collect();
    let tasks: Vec<_> = events
        .iter()
        .filter(|ev| ev.kind == SpanKind::Task)
        .collect();
    assert!(!stages.is_empty() && !tasks.is_empty());
    for task in &tasks {
        let parent = stages
            .iter()
            .find(|s| s.meta.seq == task.meta.seq)
            .unwrap_or_else(|| panic!("task seq {} has no stage span", task.meta.seq));
        assert_eq!(
            rec.name_of(parent.name),
            rec.name_of(task.name),
            "task and stage spans share the stage name"
        );
        // Time containment: the driver closes the stage span after every
        // task result has been received.
        assert!(task.start_ns >= parent.start_ns, "task started early");
        assert!(task.end_ns <= parent.end_ns, "task outlived its stage");
    }
}

/// The env-gated default path: `SBGT_TRACE` selects the level an engine
/// built from `EngineConfig::default()` records at. Lives in this
/// integration binary (not the lib tests) because it mutates process
/// env; every other test here sets `ObsConfig` explicitly.
#[test]
fn sbgt_trace_env_selects_the_default_level() {
    for (value, expect) in [
        ("off", TraceLevel::Off),
        ("spans", TraceLevel::Spans),
        ("full", TraceLevel::Full),
        ("2", TraceLevel::Full),
        ("garbage", TraceLevel::Off),
    ] {
        std::env::set_var("SBGT_TRACE", value);
        assert_eq!(ObsConfig::from_env().level, expect, "SBGT_TRACE={value}");
    }
    std::env::set_var("SBGT_TRACE", "spans");
    let e = Engine::new(EngineConfig::default().with_threads(1));
    assert!(e.obs().enabled_at(TraceLevel::Spans));
    assert!(!e.obs().enabled_at(TraceLevel::Full));
    run_some_jobs(&e);
    let snap = e.obs().snapshot();
    let events: Vec<_> = snap.all_events().collect();
    assert!(events.iter().any(|ev| ev.kind == SpanKind::Stage));
    assert!(
        events.iter().all(|ev| ev.kind != SpanKind::Task),
        "spans level must not record per-task spans"
    );
    std::env::remove_var("SBGT_TRACE");
}

#[test]
fn prometheus_scrape_from_a_real_run_round_trips() {
    let e = traced_engine();
    run_some_jobs(&e);
    let text = e.metrics().render_prometheus();
    let samples = parse_prometheus(&text).expect("scrape must parse");
    assert!(!samples.is_empty());
    let jobs: f64 = samples
        .iter()
        .filter(|s| s.name == "sbgt_stage_jobs_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(jobs as usize, e.metrics().job_count());
    // Task totals per stage family match the registry aggregates.
    for agg in e.metrics().stage_aggregates() {
        let tasks = samples
            .iter()
            .find(|s| {
                s.name == "sbgt_stage_tasks_total" && s.label("stage") == Some(agg.name.as_str())
            })
            .expect("every stage family is exported");
        assert_eq!(tasks.value as u64, agg.tasks);
    }
}
