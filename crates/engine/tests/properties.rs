//! Property tests for the dataflow engine: partitioning, shuffle, sort,
//! join, and aggregation invariants under randomized inputs.

use proptest::prelude::*;

use sbgt_engine::{Dataset, Engine, EngineConfig};

fn engine() -> Engine {
    Engine::new(EngineConfig::default().with_threads(2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any partitioning of any vector preserves content and order.
    #[test]
    fn from_vec_preserves_order(
        data in prop::collection::vec(any::<i32>(), 0..200),
        parts in 1usize..12,
    ) {
        let ds = Dataset::from_vec(data.clone(), parts);
        prop_assert_eq!(ds.num_partitions(), parts);
        prop_assert_eq!(ds.collect(), data);
    }

    /// map ∘ collect ≡ collect ∘ map (engine map equals iterator map).
    #[test]
    fn map_commutes_with_collect(
        data in prop::collection::vec(any::<i16>(), 0..150),
        parts in 1usize..8,
    ) {
        let e = engine();
        let ds = Dataset::from_vec(data.clone(), parts);
        let via_engine = ds.map(&e, |x| i32::from(*x) * 3 - 1).collect();
        let direct: Vec<i32> = data.iter().map(|x| i32::from(*x) * 3 - 1).collect();
        prop_assert_eq!(via_engine, direct);
    }

    /// aggregate equals the sequential fold for associative+commutative ops.
    #[test]
    fn aggregate_equals_fold(
        data in prop::collection::vec(0i64..1000, 0..200),
        parts in 1usize..9,
    ) {
        let e = engine();
        let ds = Dataset::from_vec(data.clone(), parts);
        let sum = ds.aggregate(&e, 0i64, |acc, x| acc + x, |a, b| a + b);
        prop_assert_eq!(sum, data.iter().sum::<i64>());
        let max = ds.reduce(&e, |a, b| (*a).max(*b));
        prop_assert_eq!(max, data.iter().copied().max());
    }

    /// Shuffle preserves the multiset and colocates keys.
    #[test]
    fn shuffle_invariants(
        data in prop::collection::vec((0u8..20, any::<u16>()), 0..150),
        in_parts in 1usize..6,
        out_parts in 1usize..6,
    ) {
        let e = engine();
        let ds = Dataset::from_vec(data.clone(), in_parts);
        let shuffled = ds.shuffle_by_key(&e, out_parts);
        let mut before = data;
        let mut after = shuffled.collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
        for key in 0u8..20 {
            let holders = (0..shuffled.num_partitions())
                .filter(|&p| shuffled.partition(p).iter().any(|(k, _)| *k == key))
                .count();
            prop_assert!(holders <= 1, "key {} split", key);
        }
    }

    /// sort_by_key agrees with std sort on keys.
    #[test]
    fn sort_matches_std(
        data in prop::collection::vec((any::<i32>(), any::<u8>()), 0..150),
        parts in 1usize..6,
    ) {
        let e = engine();
        let ds = Dataset::from_vec(data.clone(), 4);
        let sorted = ds.sort_by_key(&e, parts, 5);
        let keys: Vec<i32> = sorted.iter().map(|(k, _)| *k).collect();
        let mut expected: Vec<i32> = data.iter().map(|(k, _)| *k).collect();
        expected.sort_unstable();
        prop_assert_eq!(keys, expected);
    }

    /// join equals the nested-loop reference.
    #[test]
    fn join_matches_reference(
        left in prop::collection::vec((0u8..8, 0u32..100), 0..40),
        right in prop::collection::vec((0u8..8, 0u32..100), 0..40),
    ) {
        let e = engine();
        let l = Dataset::from_vec(left.clone(), 3);
        let r = Dataset::from_vec(right.clone(), 2);
        let mut joined = l.join(&e, &r, 4).collect();
        joined.sort_unstable();
        let mut expected = Vec::new();
        for (k, v) in &left {
            for (k2, w) in &right {
                if k == k2 {
                    expected.push((*k, (*v, *w)));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(joined, expected);
    }

    /// reduce_by_key sums match a HashMap reference.
    #[test]
    fn reduce_by_key_matches_reference(
        data in prop::collection::vec((0u8..10, 0u64..1000), 0..120),
        parts in 1usize..5,
    ) {
        let e = engine();
        let ds = Dataset::from_vec(data.clone(), 4);
        let mut reduced = ds.reduce_by_key(&e, parts, |a, b| a + b).collect();
        reduced.sort_unstable();
        let mut expected_map = std::collections::HashMap::<u8, u64>::new();
        for (k, v) in &data {
            *expected_map.entry(*k).or_default() += v;
        }
        let mut expected: Vec<(u8, u64)> = expected_map.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(reduced, expected);
    }
}
