//! Service smoke: a short seeded load through the full stack — bounded
//! ingress, batcher, round-robin workers, shared engine — must drain
//! cleanly at nominal load: every cohort classified, nothing shed, nothing
//! leaked. This is the `make service-smoke` gate.

use sbgt_engine::{EngineConfig, SharedEngine};
use sbgt_service::{ServiceConfig, Specimen, SurveillanceService};
use sbgt_sim::traffic::{generate_arrivals, TrafficConfig};

#[test]
fn seeded_load_drains_cleanly() {
    let engine = SharedEngine::new(EngineConfig::default().with_threads(2));
    let config = ServiceConfig {
        workers: 2,
        queue_capacity: 256,
        batch_size: 8,
        dense_threshold: 9,
        parts: 3,
        base_seed: 0x50BE,
        ..ServiceConfig::default()
    };
    let service = SurveillanceService::start(engine.clone(), config).unwrap();

    let arrivals = generate_arrivals(&TrafficConfig::mixed(800.0, 96, 5));
    for a in &arrivals {
        service
            .submit(Specimen {
                risk: a.risk,
                infected: a.infected,
            })
            .unwrap();
    }
    let reports = service.drain();

    let subjects: usize = reports.iter().map(|r| r.subjects).sum();
    assert_eq!(subjects, 96, "every specimen must land in a report");
    assert_eq!(reports.len(), 12, "96 specimens / batch_size 8");
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(report.cohort, i as u64, "reports sorted by cohort id");
        assert!(
            report.outcome.classification.is_terminal(),
            "cohort {i} must classify"
        );
        assert_eq!(report.recovered_rounds, 0, "clean engine never recovers");
    }

    let stats = engine.metrics().service_stats();
    assert_eq!(stats.submitted, 96);
    assert_eq!(stats.shed, 0, "nominal load must not shed");
    assert_eq!(stats.cohorts_opened, 12);
    assert_eq!(stats.cohorts_completed, 12, "zero leaked cohorts");
    assert!(stats.rounds >= 12, "every cohort runs at least one round");
    assert!(stats.round_latency_percentile(0.5).is_some());

    // Counter-consistency ledger. Specimen granularity: everything offered
    // was either admitted (`submitted`) or shed, and after a drain every
    // admitted specimen sits in exactly one report — live count is zero,
    // so shed + classified == offered. Cohort granularity: opened ==
    // completed + live, with live == 0.
    let offered = arrivals.len() as u64;
    assert_eq!(stats.submitted + stats.shed, offered, "admission ledger");
    assert_eq!(
        subjects as u64 + stats.shed,
        offered,
        "shed + classified + live(0) must equal offered specimens"
    );
    assert_eq!(
        stats.cohorts_opened,
        reports.len() as u64,
        "live cohorts after drain must be zero: opened == reported"
    );
    assert_eq!(
        stats.plan_hits + stats.plan_misses,
        0,
        "cacheless config must record no plan traffic"
    );

    // The timeline gains a service section once service stats exist.
    let timeline = sbgt_engine::timeline::render_timeline(engine.metrics());
    assert!(timeline.contains("service:"), "timeline shows the service");
}
