//! Acceptance: a seeded 64-cohort mixed-workload run through the service
//! produces classifications **bit-for-bit identical** to serial per-cohort
//! runs — clean, and across a mid-run suspend/resume cycle with every
//! checkpoint round-tripped through its byte codec.

use std::thread;
use std::time::Duration;

use sbgt_engine::{EngineConfig, SharedEngine};
use sbgt_service::{
    batch_specimens, run_cohort_serial, CohortCheckpoint, ServiceCheckpoint, ServiceConfig,
    Specimen, SurveillanceService,
};
use sbgt_sim::traffic::{generate_arrivals, TrafficConfig};

const COHORTS: usize = 64;
const BATCH: usize = 8;

fn engine() -> SharedEngine {
    SharedEngine::new(EngineConfig::default().with_threads(2))
}

/// Mixed workload: specimens drawn from the open-loop Poisson generator's
/// two-class risk mix, in arrival order.
fn workload(seed: u64) -> Vec<Specimen> {
    generate_arrivals(&TrafficConfig::mixed(1000.0, COHORTS * BATCH, seed))
        .into_iter()
        .map(|a| Specimen {
            risk: a.risk,
            infected: a.infected,
        })
        .collect()
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        queue_capacity: COHORTS * BATCH,
        batch_size: BATCH,
        // Only the size trigger and close-time flush may form batches, so
        // service batching matches `batch_specimens` exactly.
        batch_deadline: Duration::from_secs(30),
        max_live_cohorts: COHORTS,
        dense_threshold: 5,
        parts: 4,
        base_seed: 0xE13,
        ..ServiceConfig::default()
    }
}

fn serial_reference(
    engine: &SharedEngine,
    cfg: &ServiceConfig,
    specimens: &[Specimen],
) -> Vec<sbgt::SessionOutcome> {
    batch_specimens(specimens, cfg.batch_size, cfg.base_seed)
        .iter()
        .map(|spec| run_cohort_serial(engine, spec, cfg.model, cfg.session, cfg.policy()))
        .collect()
}

#[test]
fn sixty_four_cohorts_match_serial_bit_for_bit() {
    let engine = engine();
    let cfg = config();
    let specimens = workload(42);
    let serial = serial_reference(&engine, &cfg, &specimens);
    assert_eq!(serial.len(), COHORTS);

    let service = SurveillanceService::start(engine.clone(), cfg.clone()).unwrap();
    for s in &specimens {
        service.submit(*s).unwrap();
    }
    let reports = service.drain();

    assert_eq!(reports.len(), COHORTS);
    for (report, expected) in reports.iter().zip(&serial) {
        assert_eq!(report.outcome.classification, expected.classification);
        assert_eq!(report.outcome.tests, expected.tests);
        assert_eq!(report.outcome.stages, expected.stages);
        for (a, b) in report.outcome.marginals.iter().zip(&expected.marginals) {
            assert_eq!(a.to_bits(), b.to_bits(), "marginal bits diverged");
        }
    }

    let stats = engine.metrics().service_stats();
    assert_eq!(stats.submitted as usize, COHORTS * BATCH);
    assert_eq!(stats.shed, 0, "nominal load must not shed");
    assert_eq!(stats.cohorts_opened as usize, COHORTS);
    assert_eq!(stats.cohorts_completed as usize, COHORTS);
    assert!(stats.queue_peak > 0);
}

#[test]
fn mid_run_suspend_resume_is_invisible() {
    let engine = engine();
    let cfg = config();
    let specimens = workload(7);
    let serial = serial_reference(&engine, &cfg, &specimens);

    let service = SurveillanceService::start(engine.clone(), cfg.clone()).unwrap();
    for s in &specimens {
        service.submit(*s).unwrap();
    }
    // Freeze mid-run: some cohorts done, many mid-session.
    thread::sleep(Duration::from_millis(10));
    let checkpoint = service.suspend();
    assert_eq!(
        checkpoint.completed.len() + checkpoint.cohorts.len(),
        COHORTS,
        "no cohort may leak at suspension"
    );

    // Evict to bytes and back, as cold storage would.
    let rehydrated = ServiceCheckpoint {
        completed: checkpoint.completed.clone(),
        cohorts: checkpoint
            .cohorts
            .iter()
            .map(|c| CohortCheckpoint::from_bytes(&c.to_bytes()).unwrap())
            .collect(),
        plans: checkpoint.plans.clone(),
    };

    let resumed = SurveillanceService::resume(engine.clone(), cfg, rehydrated).unwrap();
    let reports = resumed.drain();
    assert_eq!(reports.len(), COHORTS);
    for (report, expected) in reports.iter().zip(&serial) {
        assert_eq!(&report.outcome, expected);
        for (a, b) in report.outcome.marginals.iter().zip(&expected.marginals) {
            assert_eq!(a.to_bits(), b.to_bits(), "marginal bits diverged");
        }
    }
}
