//! Property tests: `SBGTCKPT` checkpoints carrying the approx cohort kinds
//! (BP, particle) round-trip bit-for-bit over multi-word truths and fail
//! closed under tampering — truncation, kind-byte rewrites, and arbitrary
//! byte flips are typed errors or restore-time rejections, never panics.

use proptest::prelude::*;

use sbgt::{ApproxKind, ApproxSnapshot, ParticleBlock, SbgtConfig, SessionSnapshot};
use sbgt_lattice::BigState;
use sbgt_response::BinaryDilutionModel;
use sbgt_service::{
    ApproxBackend, CohortActor, CohortCheckpoint, CohortKind, CohortSpec, SessionPolicy,
};

fn risks_from_seed(seed: u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            0.01 + (h >> 11) as f64 / (1u64 << 53) as f64 * 0.15
        })
        .collect()
}

/// A checkpoint for an approx cohort big enough that its truth spans
/// multiple `u64` words — the regime the v3 header exists for.
fn approx_checkpoint(kind: CohortKind, seed: u64, n: usize) -> CohortCheckpoint {
    assert!((66..=128).contains(&n), "two-word truth regime");
    let history: Vec<(Vec<u32>, bool)> = vec![
        ((0..n as u32 / 2).collect(), false),
        ((n as u32 / 2..n as u32).collect(), true),
    ];
    let particles = match kind {
        CohortKind::Particle => {
            let wpp = n.div_ceil(64);
            Some(ParticleBlock {
                words_per_particle: wpp,
                words: (0..3 * wpp as u64)
                    .map(|i| seed.wrapping_mul(31).wrapping_add(i))
                    .collect(),
                log_weights: vec![-0.5, -1.25, 0.0],
                rng: [seed | 1, 2, 3, 4],
            })
        }
        _ => None,
    };
    CohortCheckpoint {
        spec: CohortSpec {
            id: 7,
            seed,
            tenant: 2,
            risks: risks_from_seed(seed, n),
            truth: BigState::from_subjects([1, 64, n - 1]),
        },
        kind,
        recoveries: 1,
        snapshot: SessionSnapshot {
            n_subjects: n,
            shards: vec![],
            total: 1.0,
            history: vec![],
            stages: 2,
            marginals: vec![],
            pending_selection: None,
            sparse: None,
            approx: Some(ApproxSnapshot {
                kind: match kind {
                    CohortKind::Particle => ApproxKind::Particle,
                    _ => ApproxKind::Bp,
                },
                history,
                particles,
            }),
        },
    }
}

/// Byte offset of the cohort kind in the v3 wire layout: magic, version,
/// id, seed, tenant, risk count + risks, truth word count + words.
fn kind_offset(ckpt: &CohortCheckpoint) -> usize {
    8 + 4 + 8 + 8 + 4 + 8 + ckpt.spec.risks.len() * 8 + 4 + ckpt.spec.truth.words().len() * 8
}

fn policy(backend: ApproxBackend) -> SessionPolicy {
    SessionPolicy {
        dense_threshold: 12,
        parts: 4,
        sparse_epsilon: 0.0,
        sparse_threshold: 0,
        approx_threshold: 17,
        approx_backend: backend,
        approx_particles: 3,
        plan_risk_buckets: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Approx-kind checkpoints with two-word truths round-trip bit-for-bit
    /// and restore to an actor of the same kind; truncation anywhere is a
    /// typed error.
    #[test]
    fn approx_checkpoints_round_trip_and_reject_truncation(
        seed in proptest::arbitrary::any::<u64>(),
        n in 66usize..=120,
        cut_seed in proptest::arbitrary::any::<usize>(),
    ) {
        for (kind, backend) in [
            (CohortKind::Bp, ApproxBackend::Bp),
            (CohortKind::Particle, ApproxBackend::Particle),
        ] {
            let ckpt = approx_checkpoint(kind, seed, n);
            let bytes = ckpt.to_bytes();
            prop_assert_eq!(&CohortCheckpoint::from_bytes(&bytes).unwrap(), &ckpt);
            let cut = cut_seed % bytes.len();
            prop_assert!(CohortCheckpoint::from_bytes(&bytes[..cut]).is_err());
            let actor = CohortActor::restore(
                &ckpt,
                BinaryDilutionModel::pcr_like(),
                SbgtConfig::default(),
                policy(backend),
            ).unwrap();
            prop_assert_eq!(actor.checkpoint().kind, kind);
        }
    }

    /// Rewriting the cohort kind byte fails closed: bytes past the known
    /// range are a decode error, and every *valid-but-wrong* kind is caught
    /// at restore time because the embedded snapshot does not match it.
    #[test]
    fn kind_byte_rewrites_are_rejected(
        seed in proptest::arbitrary::any::<u64>(),
        n in 66usize..=120,
        junk in 5u8..=255,
    ) {
        for kind in [CohortKind::Bp, CohortKind::Particle] {
            let ckpt = approx_checkpoint(kind, seed, n);
            let bytes = ckpt.to_bytes();
            let at = kind_offset(&ckpt);
            prop_assert_eq!(bytes[at], kind.to_byte(), "kind offset drifted");

            let mut unknown = bytes.clone();
            unknown[at] = junk;
            let err = CohortCheckpoint::from_bytes(&unknown).unwrap_err();
            prop_assert!(err.to_string().contains("unknown cohort kind"));

            for wrong in [0u8, 1, 2, 3, 4] {
                if wrong == kind.to_byte() {
                    continue;
                }
                let mut flipped = bytes.clone();
                flipped[at] = wrong;
                // The checkpoint header decodes (the kind byte is valid),
                // but no session of the rewritten kind accepts the payload.
                let Ok(decoded) = CohortCheckpoint::from_bytes(&flipped) else {
                    continue;
                };
                for backend in [ApproxBackend::Bp, ApproxBackend::Particle] {
                    prop_assert!(CohortActor::restore(
                        &decoded,
                        BinaryDilutionModel::pcr_like(),
                        SbgtConfig::default(),
                        policy(backend),
                    ).is_err(), "kind {wrong} restored an approx {:?} payload", kind);
                }
            }
        }
    }

    /// Arbitrary single-byte flips never panic: decode either rejects with
    /// a typed error or yields a checkpoint the restore layer can vet.
    #[test]
    fn flipped_bytes_never_panic_the_checkpoint_codec(
        seed in proptest::arbitrary::any::<u64>(),
        n in 66usize..=100,
        at_seed in proptest::arbitrary::any::<usize>(),
        xor in 1u8..=255,
    ) {
        for (kind, backend) in [
            (CohortKind::Bp, ApproxBackend::Bp),
            (CohortKind::Particle, ApproxBackend::Particle),
        ] {
            let ckpt = approx_checkpoint(kind, seed, n);
            let mut bytes = ckpt.to_bytes();
            let at = at_seed % bytes.len();
            bytes[at] ^= xor;
            let Ok(decoded) = CohortCheckpoint::from_bytes(&bytes) else {
                continue;
            };
            let _ = CohortActor::restore(
                &decoded,
                BinaryDilutionModel::pcr_like(),
                SbgtConfig::default(),
                policy(backend),
            );
        }
    }
}
