//! Chaos at the service layer: a seeded fault campaign aggressive enough
//! to exhaust the engine's retry budget and kill cohort rounds mid-flight.
//! The service's rollback-and-replay recovery (pre-round snapshot +
//! deterministic virtual lab) must make every cohort's final report equal
//! the fault-free serial run — bit-for-bit — including across a mid-run
//! suspend/resume under the same campaign.

use std::thread;
use std::time::Duration;

use sbgt_engine::{ChaosConfig, EngineConfig, FaultPlan, RetryPolicy, SharedEngine};
use sbgt_service::{
    batch_specimens, run_cohort_serial, ServiceConfig, Specimen, SurveillanceService,
};
use sbgt_sim::traffic::{generate_arrivals, TrafficConfig};

fn clean_engine() -> SharedEngine {
    SharedEngine::new(EngineConfig::default().with_threads(2))
}

/// Fault-tolerant engine under a campaign that *can* kill a job: faults
/// may hit both attempt ordinals while the retry policy allows only two
/// attempts, so a task double-faulting fails its stage and the round dies
/// — exactly what the service's rollback recovery exists for.
fn chaotic_engine(campaign_seed: u64) -> SharedEngine {
    let engine = SharedEngine::new(
        EngineConfig::default()
            .with_threads(2)
            .with_retry(RetryPolicy::clamped(2)),
    );
    let mut chaos = ChaosConfig::new(campaign_seed)
        .with_panic_rate(0.12)
        .with_delay_rate(0.03, Duration::from_millis(1))
        .with_poison_rate(0.08);
    chaos.max_faulted_attempts = 2;
    engine.set_fault_plan(FaultPlan::seeded(chaos));
    engine
}

fn workload(specimens: usize, seed: u64) -> Vec<Specimen> {
    generate_arrivals(&TrafficConfig::mixed(500.0, specimens, seed))
        .into_iter()
        .map(|a| Specimen {
            risk: a.risk,
            infected: a.infected,
        })
        .collect()
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 3,
        queue_capacity: 512,
        batch_size: 7,
        batch_deadline: Duration::from_secs(30),
        // All cohorts sharded: dense sessions never touch the engine, so
        // they would dodge the campaign.
        dense_threshold: 0,
        parts: 4,
        base_seed: 0xC4A05,
        max_recoveries: 16,
        ..ServiceConfig::default()
    }
}

/// Fault-free serial reference for the same batches.
fn serial_reference(cfg: &ServiceConfig, specimens: &[Specimen]) -> Vec<sbgt::SessionOutcome> {
    let engine = clean_engine();
    batch_specimens(specimens, cfg.batch_size, cfg.base_seed)
        .iter()
        .map(|spec| run_cohort_serial(&engine, spec, cfg.model, cfg.session, cfg.policy()))
        .collect()
}

fn assert_reports_match(reports: &[sbgt_service::CohortReport], serial: &[sbgt::SessionOutcome]) {
    assert_eq!(reports.len(), serial.len());
    for (report, expected) in reports.iter().zip(serial) {
        assert_eq!(
            &report.outcome, expected,
            "cohort {} diverged under chaos",
            report.cohort
        );
        for (a, b) in report.outcome.marginals.iter().zip(&expected.marginals) {
            assert_eq!(a.to_bits(), b.to_bits(), "marginal bits diverged");
        }
    }
}

#[test]
fn seeded_campaign_cannot_change_any_report() {
    let cfg = config();
    let specimens = workload(84, 31);
    let serial = serial_reference(&cfg, &specimens);

    let engine = chaotic_engine(2024);
    let service = SurveillanceService::start(engine.clone(), cfg.clone()).unwrap();
    for s in &specimens {
        service.submit(*s).unwrap();
    }
    let reports = service.drain();
    assert_reports_match(&reports, &serial);

    // The campaign must actually have fired, and with these rates it is
    // overwhelmingly likely at least one round needed a rollback.
    let faults = engine.metrics().fault_totals();
    assert!(faults.injected_total() > 0, "campaign never fired");
    let stats = engine.metrics().service_stats();
    let recovered: u64 = reports.iter().map(|r| r.recovered_rounds).sum();
    assert_eq!(stats.recovered_rounds, recovered);
}

#[test]
fn rounds_killed_by_chaos_are_rolled_back_and_replayed() {
    // Hunt a campaign seed that provably kills at least one round, then
    // assert the run still matches the fault-free reference exactly.
    let cfg = config();
    let specimens = workload(49, 9);
    let serial = serial_reference(&cfg, &specimens);

    let mut any_recovered = false;
    for campaign_seed in 0..8u64 {
        let engine = chaotic_engine(campaign_seed);
        let service = SurveillanceService::start(engine.clone(), cfg.clone()).unwrap();
        for s in &specimens {
            service.submit(*s).unwrap();
        }
        let reports = service.drain();
        assert_reports_match(&reports, &serial);
        if engine.metrics().service_stats().recovered_rounds > 0 {
            any_recovered = true;
            break;
        }
    }
    assert!(
        any_recovered,
        "no campaign in the sweep killed a round; rates too low to test recovery"
    );
}

#[test]
fn sparse_rounds_killed_by_chaos_are_rolled_back_and_replayed() {
    // Route every cohort to the pruned sparse session (epsilon on, size
    // floor at zero, dense off) so the campaign targets the sparse engine
    // stages, then hunt a campaign seed that provably kills at least one
    // round and assert the run still matches the fault-free reference.
    let cfg = ServiceConfig {
        sparse_epsilon: 1e-9,
        sparse_threshold: 0,
        ..config()
    };
    let specimens = workload(49, 9);
    let serial = serial_reference(&cfg, &specimens);

    let mut any_recovered = false;
    for campaign_seed in 100..116u64 {
        let engine = chaotic_engine(campaign_seed);
        let service = SurveillanceService::start(engine.clone(), cfg.clone()).unwrap();
        for s in &specimens {
            service.submit(*s).unwrap();
        }
        let reports = service.drain();
        assert_reports_match(&reports, &serial);
        if engine.metrics().service_stats().recovered_rounds > 0 {
            any_recovered = true;
            break;
        }
    }
    assert!(
        any_recovered,
        "no campaign in the sweep killed a sparse round; rates too low to test recovery"
    );
}

#[test]
fn chaos_during_cache_extension_leaves_reports_and_tree_intact() {
    // Plan cache on, all cohorts sharded over one shared risk band: every
    // round's select step either replays the shared tree or extends it, so
    // round-killing faults land while extensions are in flight. Reports
    // must still match the fault-free serial reference (which quantizes
    // identically but selects live), and the tree must stay walkable —
    // a torn node would surface as a divergent replayed selection.
    let cfg = ServiceConfig {
        plan_cache_nodes: 512,
        plan_risk_buckets: 8,
        ..config()
    };
    let specimens: Vec<Specimen> = workload(84, 31)
        .into_iter()
        .map(|s| Specimen { risk: 0.06, ..s })
        .collect();
    let serial = serial_reference(&cfg, &specimens);

    let mut any_recovered = false;
    for campaign_seed in 300..308u64 {
        let engine = chaotic_engine(campaign_seed);
        let service = SurveillanceService::start(engine.clone(), cfg.clone()).unwrap();
        for s in &specimens {
            service.submit(*s).unwrap();
        }
        let reports = service.drain();
        assert_reports_match(&reports, &serial);
        let stats = engine.metrics().service_stats();
        assert!(stats.plan_extends > 0, "misses must extend the shared tree");
        assert!(
            stats.plan_hits > 0,
            "shared-key cohorts must replay memoized selections under chaos"
        );
        if stats.recovered_rounds > 0 {
            any_recovered = true;
            break;
        }
    }
    assert!(
        any_recovered,
        "no campaign in the sweep killed a round while the cache was live"
    );
}

#[test]
fn tampered_plan_blob_is_rejected_with_typed_error_not_panic() {
    // Warm a cache through a real run, suspend, then corrupt the SBGTPLAN
    // section every way a torn checkpoint could: truncation, bit flips in
    // the header, counts, and payload. Every corruption must surface as a
    // typed ServiceError::Restore from resume — never a panic or abort.
    let cfg = ServiceConfig {
        plan_cache_nodes: 512,
        plan_risk_buckets: 8,
        ..config()
    };
    let specimens: Vec<Specimen> = workload(21, 5)
        .into_iter()
        .map(|s| Specimen { risk: 0.06, ..s })
        .collect();
    let engine = clean_engine();
    let service = SurveillanceService::start(engine.clone(), cfg.clone()).unwrap();
    for s in &specimens {
        service.submit(*s).unwrap();
    }
    thread::sleep(Duration::from_millis(4));
    let checkpoint = service.suspend();
    assert!(
        !checkpoint.plans.is_empty(),
        "a cache-enabled run must checkpoint its plans"
    );

    let mut rejected = 0usize;
    for tamper in 0..checkpoint.plans.len().min(64) {
        let mut bad = checkpoint.clone();
        bad.plans[tamper] ^= 0xA5;
        match SurveillanceService::resume(engine.clone(), cfg.clone(), bad) {
            Err(sbgt_service::ServiceError::Restore(msg)) => {
                assert!(
                    msg.contains("SBGTPLAN") || msg.contains("plan"),
                    "error must name the plan codec: {msg}"
                );
                rejected += 1;
            }
            // Some single-byte flips (e.g. inside a float payload) decode
            // to a structurally valid tree; those must simply resume.
            Ok(service) => drop(service.drain()),
            Err(other) => panic!("tampered plans must be Restore errors, got {other}"),
        }
    }
    assert!(rejected > 0, "header corruption must be caught");

    // Truncations of the plan section are always structural corruption.
    for cut in [0, 1, 7, 11, checkpoint.plans.len() - 1] {
        let mut bad = checkpoint.clone();
        bad.plans.truncate(cut);
        if bad.plans.is_empty() {
            // An empty section means "no plans" by contract: resume works.
            let service = SurveillanceService::resume(engine.clone(), cfg.clone(), bad).unwrap();
            drop(service.drain());
            continue;
        }
        match SurveillanceService::resume(engine.clone(), cfg.clone(), bad) {
            Err(sbgt_service::ServiceError::Restore(_)) => {}
            Ok(_) => panic!("truncated plan blob (cut at {cut}) must be rejected"),
            Err(other) => panic!("truncated plans must be Restore errors, got {other}"),
        }
    }

    // The untampered checkpoint still resumes and finishes cleanly.
    let resumed = SurveillanceService::resume(engine, cfg, checkpoint).unwrap();
    let reports = resumed.drain();
    let classified: usize = reports.iter().map(|r| r.subjects).sum();
    assert_eq!(classified, specimens.len());
}

#[test]
fn chaos_with_mid_run_suspend_resume_still_matches() {
    let cfg = config();
    let specimens = workload(70, 77);
    let serial = serial_reference(&cfg, &specimens);

    let engine = chaotic_engine(404);
    let service = SurveillanceService::start(engine.clone(), cfg.clone()).unwrap();
    for s in &specimens {
        service.submit(*s).unwrap();
    }
    thread::sleep(Duration::from_millis(8));
    let checkpoint = service.suspend();
    let resumed = SurveillanceService::resume(engine.clone(), cfg, checkpoint).unwrap();
    let reports = resumed.drain();
    assert_reports_match(&reports, &serial);
}
