//! Service-level weighted-fair-queueing properties: under saturation a
//! weight-2 tenant receives ~2× the engine rounds of a weight-1 tenant,
//! and a declared-but-idle tenant (any weight) never blocks anyone.
//!
//! The exact 2:1 pop arithmetic is pinned deterministically in
//! `wfq::tests`; this test drives the whole service — batcherless
//! placement, one round worker, per-tenant round accounting — and checks
//! the ratio where it is observable without racing the scheduler: the
//! rounds each tenant had consumed at the moment the heavy tenant
//! finished its last cohort.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sbgt_engine::{EngineConfig, SharedEngine};
use sbgt_service::{CohortSpec, ServiceConfig, Specimen, SurveillanceService, TenantSpec};

fn specimens(n: usize, seed: u64) -> Vec<Specimen> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let risk = 0.01 + rng.random::<f64>() * 0.12;
            Specimen {
                risk,
                infected: rng.random_bool(risk),
            }
        })
        .collect()
}

#[test]
fn two_to_one_weights_give_two_to_one_rounds_under_saturation() {
    let engine = SharedEngine::new(EngineConfig::default().with_threads(2));
    const HEAVY: u32 = 1;
    const LIGHT: u32 = 2;
    const IDLE: u32 = 9;
    const COHORTS_PER_TENANT: usize = 12;
    const BATCH: usize = 10;
    let config = ServiceConfig {
        // One worker: rounds are dispensed strictly in scheduler order, so
        // the weighted shares are visible in the round counters.
        workers: 1,
        batch_size: BATCH,
        dense_threshold: BATCH + 1,
        base_seed: 1234,
        tenants: vec![
            TenantSpec::weighted(HEAVY, 2),
            TenantSpec::weighted(LIGHT, 1),
            // Declared with an enormous weight but never submits: WFQ only
            // arbitrates between backlogged lanes, so this tenant must not
            // slow anyone down or bank credit.
            TenantSpec::weighted(IDLE, 1_000_000),
        ],
        ..ServiceConfig::default()
    };
    let service = SurveillanceService::start(engine.clone(), config.clone()).unwrap();

    // Saturate both lanes with identical-size cohorts (ids interleaved so
    // neither tenant gets a head start from placement order).
    let sp = specimens(2 * COHORTS_PER_TENANT * BATCH, 7);
    for (i, chunk) in sp.chunks(BATCH).enumerate() {
        let tenant = if i % 2 == 0 { HEAVY } else { LIGHT };
        let spec =
            CohortSpec::from_specimens(i as u64, config.base_seed, chunk).with_tenant(tenant);
        service.place_cohort(spec).unwrap();
    }

    // Poll completions; snapshot per-tenant round counters the moment the
    // heavy tenant finishes its last cohort (while the light lane is still
    // backlogged — i.e. under saturation the whole time).
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut heavy_done = 0usize;
    let mut light_done = 0usize;
    let snapshot = loop {
        assert!(Instant::now() < deadline, "service stalled");
        for report in service.take_completed() {
            match report.tenant {
                HEAVY => heavy_done += 1,
                LIGHT => light_done += 1,
                other => panic!("unexpected tenant {other}"),
            }
        }
        if heavy_done == COHORTS_PER_TENANT {
            break engine.metrics().service_stats();
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    let heavy_rounds = snapshot.tenants()[&HEAVY].rounds as f64;
    let light_rounds = snapshot.tenants()[&LIGHT].rounds as f64;
    assert!(
        light_done < COHORTS_PER_TENANT,
        "light lane must still be backlogged when the heavy lane finishes"
    );
    let ratio = light_rounds / heavy_rounds;
    assert!(
        (0.30..=0.80).contains(&ratio),
        "light/heavy round ratio {ratio:.2} strays from the weighted ideal 0.5 \
         ({light_rounds} vs {heavy_rounds} rounds)"
    );

    // No starvation: the light lane finishes everything once drained, and
    // the idle heavy-weight tenant consumed nothing. (`take_completed`
    // above already harvested some reports; drain returns the rest.)
    let reports = service.drain();
    assert_eq!(
        heavy_done + light_done + reports.len(),
        2 * COHORTS_PER_TENANT
    );
    assert!(!snapshot.tenants().contains_key(&IDLE));
    let stats = engine.metrics().service_stats();
    assert_eq!(
        stats.tenants()[&HEAVY].rounds + stats.tenants()[&LIGHT].rounds,
        stats.rounds,
        "per-tenant lanes partition the global round counter"
    );
}

#[test]
fn unlisted_tenants_default_to_weight_one_lanes() {
    // Submitting on a tenant that was never declared must neither panic
    // nor starve: it gets an implicit weight-1 lane.
    let engine = SharedEngine::new(EngineConfig::default().with_threads(2));
    let config = ServiceConfig {
        workers: 2,
        batch_size: 6,
        batch_deadline: Duration::from_millis(5),
        dense_threshold: 7,
        base_seed: 5,
        ..ServiceConfig::default()
    };
    let service = SurveillanceService::start(engine.clone(), config).unwrap();
    for (i, s) in specimens(36, 3).into_iter().enumerate() {
        service.submit_tagged((i % 3) as u32, s).unwrap();
    }
    let reports = service.drain();
    let classified: usize = reports.iter().map(|r| r.subjects).sum();
    assert_eq!(classified, 36);
    let stats = engine.metrics().service_stats();
    assert_eq!(stats.tenants().len(), 3, "each tenant got its own lane");
}
