//! # sbgt-service — a multi-cohort surveillance service
//!
//! The SBGT paper scales one Bayesian group-testing session; a surveillance
//! *program* runs many of them at once against a shared compute budget.
//! This crate is that operational layer: a thread-based service (no async
//! runtime — crossbeam channels and plain workers) that
//!
//! * accepts specimen submissions on a **bounded ingress queue** with
//!   admission control — overload sheds with a typed
//!   [`ServiceError::Shed`] instead of unbounded buffering;
//! * groups specimens into per-cohort batches, closed by **size or
//!   deadline**, with a second admission stage capping live cohorts;
//! * drives every cohort's Bayesian session **round by round under
//!   weighted fair queueing** over per-lab tenant lanes ([`WfqScheduler`];
//!   uniform weights degenerate to the original round-robin) on one
//!   shared [`sbgt_engine`] executor, with optional per-tenant latency
//!   SLOs that shed at admission when breached;
//! * **checkpoints and restores** full session state bit-for-bit
//!   ([`CohortCheckpoint`], [`ServiceCheckpoint`]) for eviction, migration,
//!   and rollback-and-replay recovery when an engine fault kills a round;
//! * feeds service metrics (queue depth, shed count, round latency
//!   percentiles, throughput) into the engine's [`MetricsRegistry`] and
//!   ASCII timeline;
//! * shares one process-wide **plan cache** ([`PlanCache`]) of memoized
//!   BHA decision trees across cohorts whose quantized configuration maps
//!   to the same key, replaying selections instead of re-searching —
//!   enabled by [`ServiceConfig::plan_cache_nodes`] and warmed trees
//!   survive suspension via the `SBGTPLAN` section of
//!   [`ServiceCheckpoint`].
//!
//! The correctness contract, enforced by the test suite: a seeded workload
//! classified through the service — interleaved, under chaos faults, or
//! across a suspend/resume cycle — is **bit-for-bit identical** to each
//! cohort run serially ([`run_cohort_serial`]).
//!
//! ```
//! use sbgt_engine::{EngineConfig, SharedEngine};
//! use sbgt_service::{ServiceConfig, Specimen, SurveillanceService};
//!
//! let engine = SharedEngine::new(EngineConfig::default().with_threads(2));
//! let service = SurveillanceService::start(engine, ServiceConfig::default()).unwrap();
//! for i in 0..20 {
//!     service.submit(Specimen { risk: 0.03, infected: i % 7 == 0 }).unwrap();
//! }
//! let reports = service.drain();
//! assert_eq!(reports.iter().map(|r| r.subjects).sum::<usize>(), 20);
//! ```
//!
//! [`MetricsRegistry`]: sbgt_engine::MetricsRegistry

pub mod checkpoint;
pub mod cohort;
pub mod config;
pub mod error;
pub mod service;
pub mod slo;
pub mod wfq;

pub use checkpoint::{CohortCheckpoint, CohortKind};
pub use cohort::{
    batch_specimens, lab_outcome, lab_outcome_big, run_cohort_serial, CohortActor, CohortSpec,
    Specimen,
};
pub use config::{ApproxBackend, ServiceConfig, SessionPolicy, TenantSpec};
pub use error::{ServiceError, ShedReason};
pub use service::{CohortReport, ServiceCheckpoint, SurveillanceService};
pub use slo::{BurnRateAlert, BURN_ALERT_MARK};
pub use wfq::WfqScheduler;

// Plan-cache types a service embedder needs to own a shared cache.
pub use sbgt::{PlanCache, PlanCacheStats, PlanCodecError, RiskQuantizer};
