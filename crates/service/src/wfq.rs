//! Weighted fair queueing over per-tenant lanes — the service's ready
//! queue since PR 8 (it replaced a plain FIFO crossbeam channel, which
//! gave round-robin over cohorts but no isolation between labs).
//!
//! The discipline is start-time fair queueing with unit-cost packets: one
//! queue entry = one engine round. Each tenant lane carries a virtual
//! *finish tag*; the scheduler always serves the backlogged lane with the
//! smallest tag and advances that lane's tag by `1/weight`. Under
//! saturation a weight-2 lane therefore receives exactly twice the rounds
//! of a weight-1 lane, and any backlogged lane is served within a bounded
//! number of pops of its tag becoming minimal — the no-starvation
//! property the old FIFO provided, now weight-aware (pinned by the unit
//! tests below and `tests/wfq_fairness.rs`).
//!
//! Two degeneracies matter for compatibility:
//!
//! * **One tenant** (or uniform weights, one cohort per lane): tags
//!   interleave lanes exactly round-robin, so the scheduler reproduces
//!   the FIFO's pickup order — which is why the pre-QoS equivalence
//!   suite runs unchanged.
//! * **Idle lanes get nothing and block nothing**: only backlogged lanes
//!   compete, and an arrival into an idle lane restarts its tag at the
//!   current virtual time (`max(vtime, tag)`), so a tenant cannot bank
//!   credit by staying quiet.
//!
//! Like the channel it replaced, the scheduler only decides *when* a
//! cohort's next round runs, never *what* it computes — reports stay
//! bit-for-bit identical under any weight assignment.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// One tenant's lane: its weight, virtual finish tag, and FIFO backlog
/// (cohorts within a lane still round-robin among themselves).
struct Lane<T> {
    weight: u32,
    finish: f64,
    items: VecDeque<T>,
}

struct WfqState<T> {
    lanes: BTreeMap<u32, Lane<T>>,
    /// Virtual time: the finish tag of the last served entry.
    vtime: f64,
    /// Entries queued across all lanes.
    queued: usize,
    closed: bool,
}

/// A blocking weighted-fair ready queue, shared by the batcher (producer)
/// and the round workers (consumers).
pub struct WfqScheduler<T> {
    state: Mutex<WfqState<T>>,
    available: Condvar,
}

impl<T> WfqScheduler<T> {
    /// Build the scheduler with pre-declared `(tenant, weight)` lanes.
    /// Tenants pushed later without a declared lane get weight 1.
    pub fn new(weights: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let lanes = weights
            .into_iter()
            .map(|(tenant, weight)| {
                (
                    tenant,
                    Lane {
                        weight: weight.max(1),
                        finish: 0.0,
                        items: VecDeque::new(),
                    },
                )
            })
            .collect();
        WfqScheduler {
            state: Mutex::new(WfqState {
                lanes,
                vtime: 0.0,
                queued: 0,
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueue one round of work for `tenant`. An arrival into an idle
    /// lane restarts the lane's tag at the current virtual time, so idle
    /// periods earn no credit.
    pub fn push(&self, tenant: u32, item: T) {
        let mut state = self.state.lock().expect("wfq lock");
        let vtime = state.vtime;
        let lane = state.lanes.entry(tenant).or_insert_with(|| Lane {
            weight: 1,
            finish: 0.0,
            items: VecDeque::new(),
        });
        if lane.items.is_empty() {
            lane.finish = lane.finish.max(vtime) + 1.0 / f64::from(lane.weight);
        }
        lane.items.push_back(item);
        state.queued += 1;
        drop(state);
        self.available.notify_one();
    }

    /// Dequeue the next round: blocks while empty, returns `None` once the
    /// scheduler is closed. Ties on the finish tag break toward the
    /// smaller tenant id (BTreeMap order), so the pick is deterministic.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("wfq lock");
        loop {
            if state.closed {
                return None;
            }
            if state.queued > 0 {
                break;
            }
            state = self.available.wait(state).expect("wfq wait");
        }
        let (&tenant, _) = state
            .lanes
            .iter()
            .filter(|(_, lane)| !lane.items.is_empty())
            .min_by(|(ia, a), (ib, b)| {
                a.finish
                    .partial_cmp(&b.finish)
                    .expect("finish tags are finite")
                    .then(ia.cmp(ib))
            })
            .expect("queued > 0 implies a backlogged lane");
        let lane = state.lanes.get_mut(&tenant).expect("lane exists");
        let item = lane.items.pop_front().expect("lane is backlogged");
        let finish = lane.finish;
        if !lane.items.is_empty() {
            lane.finish += 1.0 / f64::from(lane.weight);
        }
        state.vtime = finish;
        state.queued -= 1;
        Some(item)
    }

    /// Entries currently queued across all lanes.
    pub fn len(&self) -> usize {
        self.state.lock().expect("wfq lock").queued
    }

    /// Per-tenant backlog depths, for lane-level observability: one
    /// `(tenant, queued_rounds)` pair per declared-or-seen lane, in
    /// tenant-id order. Idle lanes report 0 rather than vanishing, so a
    /// scrape can tell "declared but quiet" from "never seen".
    pub fn lane_depths(&self) -> Vec<(u32, usize)> {
        let state = self.state.lock().expect("wfq lock");
        state
            .lanes
            .iter()
            .map(|(&tenant, lane)| (tenant, lane.items.len()))
            .collect()
    }

    /// One tenant's queued backlog (0 for unknown or idle lanes).
    pub fn lane_depth(&self, tenant: u32) -> usize {
        let state = self.state.lock().expect("wfq lock");
        state
            .lanes
            .get(&tenant)
            .map(|lane| lane.items.len())
            .unwrap_or(0)
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the queue: every blocked and future [`WfqScheduler::pop`]
    /// returns `None`. Queued items are dropped with the scheduler (by
    /// close time the service has already drained or parked them).
    pub fn close(&self) {
        self.state.lock().expect("wfq lock").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Drain `n` pops and count how many went to each tenant, pushing the
    /// popped marker back to keep the lane saturated.
    fn serve_saturated(sched: &WfqScheduler<u32>, n: usize) -> BTreeMap<u32, usize> {
        let mut counts = BTreeMap::new();
        for _ in 0..n {
            let tenant = sched.pop().unwrap();
            *counts.entry(tenant).or_insert(0) += 1;
            sched.push(tenant, tenant);
        }
        counts
    }

    #[test]
    fn weights_two_to_one_share_rounds_two_to_one() {
        let sched = WfqScheduler::new([(1, 2), (2, 1)]);
        for _ in 0..4 {
            sched.push(1, 1);
            sched.push(2, 2);
        }
        let counts = serve_saturated(&sched, 300);
        assert_eq!(counts[&1], 200, "weight-2 lane gets 2/3 of the rounds");
        assert_eq!(counts[&2], 100, "weight-1 lane gets 1/3 of the rounds");
    }

    #[test]
    fn uniform_weights_round_robin() {
        let sched = WfqScheduler::new([]);
        for t in [1u32, 2, 3] {
            sched.push(t, t);
            sched.push(t, t);
        }
        let counts = serve_saturated(&sched, 99);
        for t in [1u32, 2, 3] {
            assert_eq!(counts[&t], 33, "uniform lanes share equally");
        }
    }

    #[test]
    fn idle_tenant_neither_blocks_nor_banks_credit() {
        // Tenant 9 is declared with a huge weight but never submits:
        // tenant 1's work must flow unimpeded.
        let sched = WfqScheduler::new([(9, 1000), (1, 1)]);
        for i in 0..5 {
            sched.push(1, i);
        }
        for i in 0..5 {
            assert_eq!(sched.pop(), Some(i));
        }
        // Now tenant 9 wakes up. Its tag restarts at the current virtual
        // time, so it gets its weighted share *from now on* — not a burst
        // of banked rounds followed by tenant-1 starvation.
        sched.push(9, 100);
        sched.push(1, 200);
        let first = sched.pop().unwrap();
        let second = sched.pop().unwrap();
        assert_eq!(
            (first, second),
            (100, 200),
            "woken heavy lane is served promptly but tenant 1 follows immediately"
        );
    }

    #[test]
    fn no_starvation_every_backlogged_lane_is_served_within_a_window() {
        // Worst case for the light lane: weight 1 vs weight 8. Within any
        // window of 9 consecutive pops, the light lane must appear.
        let sched = WfqScheduler::new([(1, 8), (2, 1)]);
        sched.push(1, 1);
        sched.push(2, 2);
        let mut since_light = 0usize;
        for _ in 0..500 {
            let t = sched.pop().unwrap();
            if t == 2 {
                since_light = 0;
            } else {
                since_light += 1;
                assert!(since_light <= 8, "light lane starved past its bound");
            }
            sched.push(t, t);
        }
    }

    #[test]
    fn lane_depths_track_backlogs_without_dropping_idle_lanes() {
        let sched = WfqScheduler::new([(1, 2), (5, 1)]);
        assert_eq!(sched.lane_depths(), vec![(1, 0), (5, 0)]);
        sched.push(1, 10);
        sched.push(1, 11);
        sched.push(9, 90); // undeclared lane materializes on first push
        assert_eq!(sched.lane_depths(), vec![(1, 2), (5, 0), (9, 1)]);
        assert_eq!(sched.lane_depth(1), 2);
        assert_eq!(sched.lane_depth(5), 0);
        assert_eq!(sched.lane_depth(404), 0, "unknown lanes read as empty");
        sched.pop().unwrap();
        assert_eq!(sched.len(), 2);
        assert_eq!(
            sched.lane_depths().iter().map(|(_, d)| d).sum::<usize>(),
            2,
            "depths agree with the global count"
        );
    }

    #[test]
    fn close_unblocks_poppers() {
        let sched = Arc::new(WfqScheduler::<u32>::new([]));
        let waiter = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || sched.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.close();
        assert_eq!(waiter.join().unwrap(), None);
        assert_eq!(sched.pop(), None, "closed stays closed");
    }
}
