//! Typed service errors — every refusal the service can hand a caller.

/// Why a submission was shed instead of accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded ingress queue is at capacity; the caller should back
    /// off or route the specimen elsewhere.
    QueueFull,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "ingress queue full"),
        }
    }
}

/// Error surface of the surveillance service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The service configuration is inconsistent; the message says how.
    InvalidConfig(String),
    /// The submission was rejected by admission control (typed load shed,
    /// not a failure: the service is protecting its latency).
    Shed(ShedReason),
    /// The service has stopped accepting submissions (drained or
    /// suspended).
    Closed,
    /// A checkpoint could not be restored.
    Restore(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InvalidConfig(msg) => {
                write!(f, "invalid service configuration: {msg}")
            }
            ServiceError::Shed(reason) => write!(f, "submission shed: {reason}"),
            ServiceError::Closed => write!(f, "service is closed to submissions"),
            ServiceError::Restore(msg) => write!(f, "checkpoint restore failed: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        assert!(ServiceError::Shed(ShedReason::QueueFull)
            .to_string()
            .contains("queue full"));
        assert!(ServiceError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid"));
    }
}
