//! Typed service errors — every refusal the service can hand a caller.

/// Why a submission was shed instead of accepted.
///
/// Marked `#[non_exhaustive]`: shedding is the service's pressure-relief
/// valve and new causes will keep appearing (the enum started life with
/// only [`ShedReason::QueueFull`]), so downstream matches must carry a
/// wildcard arm and a new variant is not a breaking change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShedReason {
    /// The bounded ingress queue is at capacity; the caller should back
    /// off or route the specimen elsewhere.
    QueueFull,
    /// The tenant's latency SLO is currently breached; its traffic is shed
    /// until the lane's round latency drops back under the target, so one
    /// overloaded lab cannot silently degrade every other tenant.
    SloExceeded,
    /// The service is draining for shard handoff and no longer opens
    /// cohorts; route the specimen to another shard.
    Draining,
}

impl ShedReason {
    /// Stable wire byte for the reason (the `sbgt-net` protocol ships shed
    /// reasons to remote clients). Room is left for future variants; the
    /// decoder treats unknown bytes as a typed error, not a panic.
    pub fn to_byte(self) -> u8 {
        match self {
            ShedReason::QueueFull => 0,
            ShedReason::SloExceeded => 1,
            ShedReason::Draining => 2,
        }
    }

    /// Inverse of [`ShedReason::to_byte`].
    pub fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(ShedReason::QueueFull),
            1 => Some(ShedReason::SloExceeded),
            2 => Some(ShedReason::Draining),
            _ => None,
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "ingress queue full"),
            ShedReason::SloExceeded => write!(f, "tenant latency SLO exceeded"),
            ShedReason::Draining => write!(f, "service draining for handoff"),
        }
    }
}

/// Error surface of the surveillance service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The service configuration is inconsistent; the message says how.
    InvalidConfig(String),
    /// The submission was rejected by admission control (typed load shed,
    /// not a failure: the service is protecting its latency).
    Shed(ShedReason),
    /// The service has stopped accepting submissions (drained or
    /// suspended).
    Closed,
    /// A checkpoint could not be restored.
    Restore(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InvalidConfig(msg) => {
                write!(f, "invalid service configuration: {msg}")
            }
            ServiceError::Shed(reason) => write!(f, "submission shed: {reason}"),
            ServiceError::Closed => write!(f, "service is closed to submissions"),
            ServiceError::Restore(msg) => write!(f, "checkpoint restore failed: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        assert!(ServiceError::Shed(ShedReason::QueueFull)
            .to_string()
            .contains("queue full"));
        assert!(ServiceError::Shed(ShedReason::SloExceeded)
            .to_string()
            .contains("SLO"));
        assert!(ServiceError::Shed(ShedReason::Draining)
            .to_string()
            .contains("draining"));
        assert!(ServiceError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn shed_reason_wire_bytes_round_trip() {
        for reason in [
            ShedReason::QueueFull,
            ShedReason::SloExceeded,
            ShedReason::Draining,
        ] {
            assert_eq!(ShedReason::from_byte(reason.to_byte()), Some(reason));
        }
        assert_eq!(ShedReason::from_byte(250), None);
    }
}
