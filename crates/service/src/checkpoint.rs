//! Cohort checkpoint format: the session snapshot plus the cohort's
//! static identity, with a versioned byte codec so a cohort can be evicted
//! to disk (or shipped between service instances) and resumed bit-for-bit.

use serde::{Deserialize, Serialize};

use sbgt::{SessionSnapshot, SnapshotError};
use sbgt_lattice::State;

use crate::cohort::CohortSpec;

const MAGIC: &[u8; 8] = b"SBGTCKPT";
/// Current write version. v2 added the tenant id after the cohort seed;
/// v1 checkpoints (pre-tenant) still decode, landing on tenant 0 — the
/// same lane untagged traffic uses, so a pre-QoS checkpoint resumes with
/// identical scheduling semantics.
const VERSION: u32 = 2;

/// Which session kind the cohort was running when frozen. A checkpoint
/// restores to the **same** kind regardless of the live placement policy,
/// keeping the arithmetic path (and hence the bit-exact trajectory)
/// identical across the freeze.
///
/// The wire encoding is one byte: `Sharded = 0`, `Dense = 1` — exactly the
/// `u8::from(dense)` flag older checkpoints wrote, so they decode
/// unchanged — and `Sparse = 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CohortKind {
    /// Engine-sharded dense session.
    Sharded,
    /// Dense in-memory session.
    Dense,
    /// Pruned sparse session.
    Sparse,
}

impl CohortKind {
    fn to_byte(self) -> u8 {
        match self {
            CohortKind::Sharded => 0,
            CohortKind::Dense => 1,
            CohortKind::Sparse => 2,
        }
    }

    fn from_byte(byte: u8) -> Result<Self, SnapshotError> {
        match byte {
            0 => Ok(CohortKind::Sharded),
            1 => Ok(CohortKind::Dense),
            2 => Ok(CohortKind::Sparse),
            other => Err(SnapshotError::Corrupt(format!(
                "unknown cohort kind byte {other}"
            ))),
        }
    }
}

/// A frozen cohort: everything needed to rebuild its actor and continue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortCheckpoint {
    /// The cohort's static identity (id, seed, risks, ground truth).
    pub spec: CohortSpec,
    /// The session kind the cohort ran (restores to the same kind).
    pub kind: CohortKind,
    /// Rollback-and-replay cycles consumed before the checkpoint.
    pub recoveries: u64,
    /// Full session state.
    pub snapshot: SessionSnapshot,
}

impl CohortCheckpoint {
    /// Serialize: header, spec, flags, then the embedded session snapshot
    /// (length-prefixed, delegating to its own versioned codec).
    pub fn to_bytes(&self) -> Vec<u8> {
        let snapshot = self.snapshot.to_bytes();
        let mut out = Vec::with_capacity(64 + self.spec.risks.len() * 8 + snapshot.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.spec.id.to_le_bytes());
        out.extend_from_slice(&self.spec.seed.to_le_bytes());
        out.extend_from_slice(&self.spec.tenant.to_le_bytes());
        out.extend_from_slice(&(self.spec.risks.len() as u64).to_le_bytes());
        for r in &self.spec.risks {
            out.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&self.spec.truth.bits().to_le_bytes());
        out.push(self.kind.to_byte());
        out.extend_from_slice(&self.recoveries.to_le_bytes());
        out.extend_from_slice(&(snapshot.len() as u64).to_le_bytes());
        out.extend_from_slice(&snapshot);
        out
    }

    /// Decode; every structural violation (including one inside the
    /// embedded snapshot) is a typed [`SnapshotError::Corrupt`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(8)? != MAGIC {
            return Err(SnapshotError::Corrupt("bad checkpoint magic".into()));
        }
        let version = u32::from_le_bytes(r.take(4)?.try_into().unwrap());
        if version == 0 || version > VERSION {
            return Err(SnapshotError::Corrupt(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let id = r.u64()?;
        let seed = r.u64()?;
        let tenant = if version >= 2 {
            u32::from_le_bytes(r.take(4)?.try_into().unwrap())
        } else {
            0
        };
        let n_risks = r.u64()? as usize;
        if n_risks > bytes.len() / 8 {
            return Err(SnapshotError::Corrupt("risk count exceeds payload".into()));
        }
        let mut risks = Vec::with_capacity(n_risks);
        for _ in 0..n_risks {
            risks.push(f64::from_bits(r.u64()?));
        }
        let truth = State(r.u64()?);
        let kind = CohortKind::from_byte(r.take(1)?[0])?;
        let recoveries = r.u64()?;
        let snap_len = r.u64()? as usize;
        if snap_len > bytes.len() - r.at {
            return Err(SnapshotError::Corrupt(
                "snapshot length exceeds payload".into(),
            ));
        }
        let snapshot = SessionSnapshot::from_bytes(r.take(snap_len)?)?;
        if r.at != bytes.len() {
            return Err(SnapshotError::Corrupt(
                "trailing bytes after checkpoint".into(),
            ));
        }
        if snapshot.n_subjects != risks.len() {
            return Err(SnapshotError::Corrupt(format!(
                "spec holds {} risks but snapshot covers {} subjects",
                risks.len(),
                snapshot.n_subjects
            )));
        }
        Ok(CohortCheckpoint {
            spec: CohortSpec {
                id,
                seed,
                tenant,
                risks,
                truth,
            },
            kind,
            recoveries,
            snapshot,
        })
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.at + n > self.bytes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "checkpoint truncated at byte {} (wanted {n} more)",
                self.at
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CohortCheckpoint {
        CohortCheckpoint {
            spec: CohortSpec {
                id: 12,
                seed: 0xDEAD_BEEF,
                tenant: 3,
                risks: vec![0.02, 0.05, 0.11],
                truth: State::from_subjects([1]),
            },
            kind: CohortKind::Dense,
            recoveries: 2,
            snapshot: SessionSnapshot {
                n_subjects: 3,
                shards: vec![vec![0.1; 8]],
                total: 0.8,
                history: vec![(State(3), false)],
                stages: 1,
                marginals: vec![],
                pending_selection: None,
                sparse: None,
            },
        }
    }

    #[test]
    fn codec_round_trips() {
        let ckpt = sample();
        let back = CohortCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
        for (a, b) in ckpt.spec.risks.iter().zip(&back.spec.risks) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_and_tampering_are_typed_errors() {
        let bytes = sample().to_bytes();
        for cut in [0, 5, 13, 30, bytes.len() - 1] {
            assert!(CohortCheckpoint::from_bytes(&bytes[..cut]).is_err());
        }
        let mut bad = bytes.clone();
        bad[0] = b'Z';
        assert!(CohortCheckpoint::from_bytes(&bad).is_err());
        let mut long = bytes;
        long.push(7);
        assert!(CohortCheckpoint::from_bytes(&long).is_err());
    }

    #[test]
    fn subject_count_mismatch_is_rejected() {
        let mut ckpt = sample();
        ckpt.spec.risks.push(0.2);
        assert!(CohortCheckpoint::from_bytes(&ckpt.to_bytes()).is_err());
    }

    /// Byte offset of the kind flag: header + spec fields (id, seed,
    /// tenant, risk count) + risks + truth.
    fn kind_offset(ckpt: &CohortCheckpoint) -> usize {
        8 + 4 + 8 + 8 + 4 + 8 + ckpt.spec.risks.len() * 8 + 8
    }

    /// Hand-encode the v1 layout (no tenant field) for a sample and check
    /// it still decodes, with the tenant defaulting to lane 0.
    #[test]
    fn v1_checkpoints_decode_with_tenant_zero() {
        let ckpt = sample();
        let snapshot = ckpt.snapshot.to_bytes();
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&ckpt.spec.id.to_le_bytes());
        v1.extend_from_slice(&ckpt.spec.seed.to_le_bytes());
        v1.extend_from_slice(&(ckpt.spec.risks.len() as u64).to_le_bytes());
        for r in &ckpt.spec.risks {
            v1.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        v1.extend_from_slice(&ckpt.spec.truth.bits().to_le_bytes());
        v1.push(ckpt.kind.to_byte());
        v1.extend_from_slice(&ckpt.recoveries.to_le_bytes());
        v1.extend_from_slice(&(snapshot.len() as u64).to_le_bytes());
        v1.extend_from_slice(&snapshot);

        let back = CohortCheckpoint::from_bytes(&v1).unwrap();
        assert_eq!(back.spec.tenant, 0, "v1 lands on the default lane");
        assert_eq!(back.spec.id, ckpt.spec.id);
        assert_eq!(back.snapshot, ckpt.snapshot);
        for (a, b) in ckpt.spec.risks.iter().zip(&back.spec.risks) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn kind_byte_is_wire_compatible_with_the_old_dense_flag() {
        // Sharded/Dense encode to the exact bytes the old `bool` wrote;
        // Sparse claims the next value; anything else is typed corruption.
        for (kind, byte) in [
            (CohortKind::Sharded, 0u8),
            (CohortKind::Dense, 1),
            (CohortKind::Sparse, 2),
        ] {
            let mut ckpt = sample();
            ckpt.kind = kind;
            let bytes = ckpt.to_bytes();
            assert_eq!(bytes[kind_offset(&ckpt)], byte);
            assert_eq!(CohortCheckpoint::from_bytes(&bytes).unwrap().kind, kind);
        }
        let ckpt = sample();
        let mut bad = ckpt.to_bytes();
        bad[kind_offset(&ckpt)] = 3;
        assert!(matches!(
            CohortCheckpoint::from_bytes(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn sparse_checkpoint_round_trips_bit_for_bit() {
        use sbgt::SparseSnapshot;
        let mut ckpt = sample();
        ckpt.kind = CohortKind::Sparse;
        ckpt.snapshot.shards = vec![];
        ckpt.snapshot.total = 0.75;
        ckpt.snapshot.sparse = Some(SparseSnapshot {
            entries: vec![(State(1), 0.5), (State(5), 0.25)],
            pruned_mass: 0.25,
        });
        let back = CohortCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
        let (a, b) = (
            ckpt.snapshot.sparse.as_ref().unwrap(),
            back.snapshot.sparse.as_ref().unwrap(),
        );
        assert_eq!(a.pruned_mass.to_bits(), b.pruned_mass.to_bits());
        for ((sa, pa), (sb, pb)) in a.entries.iter().zip(&b.entries) {
            assert_eq!(sa, sb);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
    }
}
