//! Cohort checkpoint format: the session snapshot plus the cohort's
//! static identity, with a versioned byte codec so a cohort can be evicted
//! to disk (or shipped between service instances) and resumed bit-for-bit.

use serde::{Deserialize, Serialize};

use sbgt::{SessionSnapshot, SnapshotError};
use sbgt_lattice::BigState;

use crate::cohort::CohortSpec;

const MAGIC: &[u8; 8] = b"SBGTCKPT";
/// Current write version. v3 widened the ground truth from one u64 to a
/// length-prefixed word list, since approximate cohorts hold more than 64
/// subjects; v1/v2 checkpoints decode their single truth word into word 0.
/// v2 added the tenant id after the cohort seed; v1 checkpoints
/// (pre-tenant) still decode, landing on tenant 0 — the same lane untagged
/// traffic uses, so a pre-QoS checkpoint resumes with identical scheduling
/// semantics.
const VERSION: u32 = 3;

/// Which session kind the cohort was running when frozen. A checkpoint
/// restores to the **same** kind regardless of the live placement policy,
/// keeping the arithmetic path (and hence the bit-exact trajectory)
/// identical across the freeze.
///
/// The wire encoding is one byte: `Sharded = 0`, `Dense = 1` — exactly the
/// `u8::from(dense)` flag older checkpoints wrote, so they decode
/// unchanged — `Sparse = 2`, and the approximate backends `Bp = 3`,
/// `Particle = 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CohortKind {
    /// Engine-sharded dense session.
    Sharded,
    /// Dense in-memory session.
    Dense,
    /// Pruned sparse session.
    Sparse,
    /// Loopy-BP approximate session.
    Bp,
    /// SMC particle approximate session.
    Particle,
}

impl CohortKind {
    /// Stable wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            CohortKind::Sharded => 0,
            CohortKind::Dense => 1,
            CohortKind::Sparse => 2,
            CohortKind::Bp => 3,
            CohortKind::Particle => 4,
        }
    }

    fn from_byte(byte: u8) -> Result<Self, SnapshotError> {
        match byte {
            0 => Ok(CohortKind::Sharded),
            1 => Ok(CohortKind::Dense),
            2 => Ok(CohortKind::Sparse),
            3 => Ok(CohortKind::Bp),
            4 => Ok(CohortKind::Particle),
            other => Err(SnapshotError::Corrupt(format!(
                "unknown cohort kind byte {other}"
            ))),
        }
    }
}

/// A frozen cohort: everything needed to rebuild its actor and continue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortCheckpoint {
    /// The cohort's static identity (id, seed, risks, ground truth).
    pub spec: CohortSpec,
    /// The session kind the cohort ran (restores to the same kind).
    pub kind: CohortKind,
    /// Rollback-and-replay cycles consumed before the checkpoint.
    pub recoveries: u64,
    /// Full session state.
    pub snapshot: SessionSnapshot,
}

impl CohortCheckpoint {
    /// Serialize: header, spec, flags, then the embedded session snapshot
    /// (length-prefixed, delegating to its own versioned codec).
    pub fn to_bytes(&self) -> Vec<u8> {
        let snapshot = self.snapshot.to_bytes();
        let mut out = Vec::with_capacity(64 + self.spec.risks.len() * 8 + snapshot.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.spec.id.to_le_bytes());
        out.extend_from_slice(&self.spec.seed.to_le_bytes());
        out.extend_from_slice(&self.spec.tenant.to_le_bytes());
        out.extend_from_slice(&(self.spec.risks.len() as u64).to_le_bytes());
        for r in &self.spec.risks {
            out.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        let truth_words = self.spec.truth.words();
        out.extend_from_slice(&(truth_words.len() as u32).to_le_bytes());
        for w in truth_words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.push(self.kind.to_byte());
        out.extend_from_slice(&self.recoveries.to_le_bytes());
        out.extend_from_slice(&(snapshot.len() as u64).to_le_bytes());
        out.extend_from_slice(&snapshot);
        out
    }

    /// Decode; every structural violation (including one inside the
    /// embedded snapshot) is a typed [`SnapshotError::Corrupt`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(8)? != MAGIC {
            return Err(SnapshotError::Corrupt("bad checkpoint magic".into()));
        }
        let version = u32::from_le_bytes(r.take(4)?.try_into().unwrap());
        if version == 0 || version > VERSION {
            return Err(SnapshotError::Corrupt(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let id = r.u64()?;
        let seed = r.u64()?;
        let tenant = if version >= 2 {
            u32::from_le_bytes(r.take(4)?.try_into().unwrap())
        } else {
            0
        };
        let n_risks = r.u64()? as usize;
        if n_risks > bytes.len() / 8 {
            return Err(SnapshotError::Corrupt("risk count exceeds payload".into()));
        }
        let mut risks = Vec::with_capacity(n_risks);
        for _ in 0..n_risks {
            risks.push(f64::from_bits(r.u64()?));
        }
        let truth = if version >= 3 {
            let n_words = u32::from_le_bytes(r.take(4)?.try_into().unwrap()) as usize;
            if n_words > bytes.len() / 8 {
                return Err(SnapshotError::Corrupt(
                    "truth word count exceeds payload".into(),
                ));
            }
            let mut words = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                words.push(r.u64()?);
            }
            BigState::from_words(words)
        } else {
            // v1/v2 wrote the 16-subject lattice state as one word.
            BigState::from_words(vec![r.u64()?])
        };
        let kind = CohortKind::from_byte(r.take(1)?[0])?;
        let recoveries = r.u64()?;
        let snap_len = r.u64()? as usize;
        if snap_len > bytes.len() - r.at {
            return Err(SnapshotError::Corrupt(
                "snapshot length exceeds payload".into(),
            ));
        }
        let snapshot = SessionSnapshot::from_bytes(r.take(snap_len)?)?;
        if r.at != bytes.len() {
            return Err(SnapshotError::Corrupt(
                "trailing bytes after checkpoint".into(),
            ));
        }
        if snapshot.n_subjects != risks.len() {
            return Err(SnapshotError::Corrupt(format!(
                "spec holds {} risks but snapshot covers {} subjects",
                risks.len(),
                snapshot.n_subjects
            )));
        }
        Ok(CohortCheckpoint {
            spec: CohortSpec {
                id,
                seed,
                tenant,
                risks,
                truth,
            },
            kind,
            recoveries,
            snapshot,
        })
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.at + n > self.bytes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "checkpoint truncated at byte {} (wanted {n} more)",
                self.at
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_lattice::State;

    fn sample() -> CohortCheckpoint {
        CohortCheckpoint {
            spec: CohortSpec {
                id: 12,
                seed: 0xDEAD_BEEF,
                tenant: 3,
                risks: vec![0.02, 0.05, 0.11],
                truth: BigState::from_subjects([1]),
            },
            kind: CohortKind::Dense,
            recoveries: 2,
            snapshot: SessionSnapshot {
                n_subjects: 3,
                shards: vec![vec![0.1; 8]],
                total: 0.8,
                history: vec![(State(3), false)],
                stages: 1,
                marginals: vec![],
                pending_selection: None,
                sparse: None,
                approx: None,
            },
        }
    }

    #[test]
    fn codec_round_trips() {
        let ckpt = sample();
        let back = CohortCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
        for (a, b) in ckpt.spec.risks.iter().zip(&back.spec.risks) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_and_tampering_are_typed_errors() {
        let bytes = sample().to_bytes();
        for cut in [0, 5, 13, 30, bytes.len() - 1] {
            assert!(CohortCheckpoint::from_bytes(&bytes[..cut]).is_err());
        }
        let mut bad = bytes.clone();
        bad[0] = b'Z';
        assert!(CohortCheckpoint::from_bytes(&bad).is_err());
        let mut long = bytes;
        long.push(7);
        assert!(CohortCheckpoint::from_bytes(&long).is_err());
    }

    #[test]
    fn subject_count_mismatch_is_rejected() {
        let mut ckpt = sample();
        ckpt.spec.risks.push(0.2);
        assert!(CohortCheckpoint::from_bytes(&ckpt.to_bytes()).is_err());
    }

    /// Byte offset of the kind flag: header + spec fields (id, seed,
    /// tenant, risk count) + risks + truth word count + truth words.
    fn kind_offset(ckpt: &CohortCheckpoint) -> usize {
        8 + 4 + 8 + 8 + 4 + 8 + ckpt.spec.risks.len() * 8 + 4 + ckpt.spec.truth.words().len() * 8
    }

    /// Hand-encode the v1 layout (no tenant field, one-word truth) for a
    /// sample and check it still decodes, with the tenant defaulting to
    /// lane 0.
    #[test]
    fn v1_checkpoints_decode_with_tenant_zero() {
        let ckpt = sample();
        let snapshot = ckpt.snapshot.to_bytes();
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&ckpt.spec.id.to_le_bytes());
        v1.extend_from_slice(&ckpt.spec.seed.to_le_bytes());
        v1.extend_from_slice(&(ckpt.spec.risks.len() as u64).to_le_bytes());
        for r in &ckpt.spec.risks {
            v1.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        let truth_word = ckpt.spec.truth.words().first().copied().unwrap_or(0);
        v1.extend_from_slice(&truth_word.to_le_bytes());
        v1.push(ckpt.kind.to_byte());
        v1.extend_from_slice(&ckpt.recoveries.to_le_bytes());
        v1.extend_from_slice(&(snapshot.len() as u64).to_le_bytes());
        v1.extend_from_slice(&snapshot);

        let back = CohortCheckpoint::from_bytes(&v1).unwrap();
        assert_eq!(back.spec.tenant, 0, "v1 lands on the default lane");
        assert_eq!(back.spec.id, ckpt.spec.id);
        assert_eq!(back.spec.truth, ckpt.spec.truth);
        assert_eq!(back.snapshot, ckpt.snapshot);
        for (a, b) in ckpt.spec.risks.iter().zip(&back.spec.risks) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Hand-encode the v2 layout (tenant present, truth still one word)
    /// and check the decoder widens it into the same `BigState`.
    #[test]
    fn v2_checkpoints_decode_their_single_truth_word() {
        let ckpt = sample();
        let snapshot = ckpt.snapshot.to_bytes();
        let mut v2 = Vec::new();
        v2.extend_from_slice(MAGIC);
        v2.extend_from_slice(&2u32.to_le_bytes());
        v2.extend_from_slice(&ckpt.spec.id.to_le_bytes());
        v2.extend_from_slice(&ckpt.spec.seed.to_le_bytes());
        v2.extend_from_slice(&ckpt.spec.tenant.to_le_bytes());
        v2.extend_from_slice(&(ckpt.spec.risks.len() as u64).to_le_bytes());
        for r in &ckpt.spec.risks {
            v2.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        let truth_word = ckpt.spec.truth.words().first().copied().unwrap_or(0);
        v2.extend_from_slice(&truth_word.to_le_bytes());
        v2.push(ckpt.kind.to_byte());
        v2.extend_from_slice(&ckpt.recoveries.to_le_bytes());
        v2.extend_from_slice(&(snapshot.len() as u64).to_le_bytes());
        v2.extend_from_slice(&snapshot);

        let back = CohortCheckpoint::from_bytes(&v2).unwrap();
        assert_eq!(back.spec, ckpt.spec);
        assert_eq!(back.snapshot, ckpt.snapshot);
    }

    #[test]
    fn kind_byte_is_wire_compatible_with_the_old_dense_flag() {
        // Sharded/Dense encode to the exact bytes the old `bool` wrote;
        // Sparse and the approximate backends claim the next values;
        // anything else is typed corruption.
        for (kind, byte) in [
            (CohortKind::Sharded, 0u8),
            (CohortKind::Dense, 1),
            (CohortKind::Sparse, 2),
        ] {
            let mut ckpt = sample();
            ckpt.kind = kind;
            let bytes = ckpt.to_bytes();
            assert_eq!(bytes[kind_offset(&ckpt)], byte);
            assert_eq!(CohortCheckpoint::from_bytes(&bytes).unwrap().kind, kind);
        }
        for (kind, byte) in [(CohortKind::Bp, 3u8), (CohortKind::Particle, 4)] {
            let mut ckpt = approx_sample(kind);
            ckpt.kind = kind;
            let bytes = ckpt.to_bytes();
            assert_eq!(bytes[kind_offset(&ckpt)], byte);
            assert_eq!(CohortCheckpoint::from_bytes(&bytes).unwrap().kind, kind);
        }
        let ckpt = sample();
        let mut bad = ckpt.to_bytes();
        bad[kind_offset(&ckpt)] = 5;
        assert!(matches!(
            CohortCheckpoint::from_bytes(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    /// A checkpoint holding an approximate-session snapshot of `kind`.
    fn approx_sample(kind: CohortKind) -> CohortCheckpoint {
        use sbgt::{ApproxKind, ApproxSnapshot, ParticleBlock};
        let approx_kind = match kind {
            CohortKind::Bp => ApproxKind::Bp,
            CohortKind::Particle => ApproxKind::Particle,
            other => panic!("not an approx kind: {other:?}"),
        };
        let particles = (approx_kind == ApproxKind::Particle).then(|| ParticleBlock {
            words_per_particle: 2,
            words: vec![0b1, 0b10, 0b11, 0],
            log_weights: vec![-0.5, -1.5],
            rng: [1, 2, 3, 4],
        });
        CohortCheckpoint {
            spec: CohortSpec {
                id: 9,
                seed: 77,
                tenant: 1,
                risks: vec![0.05; 70],
                truth: BigState::from_subjects([3, 69]),
            },
            kind,
            recoveries: 0,
            snapshot: SessionSnapshot {
                n_subjects: 70,
                shards: vec![],
                total: 1.0,
                history: vec![],
                stages: 1,
                marginals: vec![],
                pending_selection: None,
                sparse: None,
                approx: Some(ApproxSnapshot {
                    kind: approx_kind,
                    history: vec![(vec![0, 3, 69], true)],
                    particles,
                }),
            },
        }
    }

    #[test]
    fn approx_checkpoints_round_trip_multi_word_truth() {
        for kind in [CohortKind::Bp, CohortKind::Particle] {
            let ckpt = approx_sample(kind);
            assert!(ckpt.spec.truth.words().len() > 1, "truth spans words");
            let back = CohortCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
            assert_eq!(back, ckpt);
        }
        // A corrupt truth word count is a typed error, not a huge alloc.
        let ckpt = approx_sample(CohortKind::Bp);
        let mut bad = ckpt.to_bytes();
        let count_at = 8 + 4 + 8 + 8 + 4 + 8 + ckpt.spec.risks.len() * 8;
        bad[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            CohortCheckpoint::from_bytes(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn sparse_checkpoint_round_trips_bit_for_bit() {
        use sbgt::SparseSnapshot;
        let mut ckpt = sample();
        ckpt.kind = CohortKind::Sparse;
        ckpt.snapshot.shards = vec![];
        ckpt.snapshot.total = 0.75;
        ckpt.snapshot.sparse = Some(SparseSnapshot {
            entries: vec![(State(1), 0.5), (State(5), 0.25)],
            pruned_mass: 0.25,
        });
        let back = CohortCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
        let (a, b) = (
            ckpt.snapshot.sparse.as_ref().unwrap(),
            back.snapshot.sparse.as_ref().unwrap(),
        );
        assert_eq!(a.pruned_mass.to_bits(), b.pruned_mass.to_bits());
        for ((sa, pa), (sb, pb)) in a.entries.iter().zip(&b.entries) {
            assert_eq!(sa, sb);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
    }
}
