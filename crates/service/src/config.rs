//! Service configuration and validation.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use sbgt::SbgtConfig;
use sbgt_response::BinaryDilutionModel;

use crate::error::ServiceError;

/// Configuration of a [`crate::SurveillanceService`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Worker threads driving cohort rounds (the engine has its own pool;
    /// workers only orchestrate, so a small number suffices).
    pub workers: usize,
    /// Capacity of the bounded ingress queue — the admission-control knob:
    /// [`crate::SurveillanceService::try_submit`] sheds when it is full.
    pub queue_capacity: usize,
    /// Cohort size: a batch closes when it holds this many specimens. The
    /// `2^N` lattice bounds this at 16 for the exact backends (the sharded
    /// sessions keep memory linear in `2^N / parts` but the service targets
    /// interactive cohorts); larger batches are accepted only when
    /// [`Self::approx_threshold`] routes every oversized cohort to an
    /// approximate backend, which scales in specimens and pools instead.
    pub batch_size: usize,
    /// A partially-filled batch closes this long after its first specimen
    /// arrives, so low-traffic cohorts are not starved.
    pub batch_deadline: Duration,
    /// Cap on live (opened, not yet classified) cohorts; the batcher holds
    /// new cohorts while at the cap, back-pressuring the ingress queue.
    pub max_live_cohorts: usize,
    /// Cohorts smaller than this run a dense in-memory session; larger ones
    /// run the engine-sharded session.
    pub dense_threshold: usize,
    /// Partition count for sharded cohort sessions.
    pub parts: usize,
    /// Per-update prune threshold for sparse cohort sessions, in `[0, 1)`.
    /// `0.0` (the default) disables the sparse mode entirely; a positive
    /// value routes cohorts of at least [`Self::sparse_threshold`] subjects
    /// to a pruned [`sbgt::SparseSession`] instead of the sharded one.
    pub sparse_epsilon: f64,
    /// Minimum cohort size for the sparse session (only consulted when
    /// [`Self::sparse_epsilon`] is positive). Cohorts between
    /// `dense_threshold` and this size stay sharded.
    pub sparse_threshold: usize,
    /// Cohorts of at least this many subjects run an approximate posterior
    /// backend ([`Self::approx_backend`]) instead of any exact `2^N`
    /// session. `0` (the default) disables approximate placement; when
    /// [`Self::batch_size`] exceeds 16 this must be set (and at most 17)
    /// so every cohort past the exact wall lands on the approximate path.
    /// Takes precedence over the dense/sparse/sharded thresholds.
    pub approx_threshold: usize,
    /// Which approximate backend oversized cohorts run.
    pub approx_backend: ApproxBackend,
    /// Particle count for [`ApproxBackend::Particle`] cohorts (ignored by
    /// the BP backend). Must be positive when approximate placement is
    /// enabled with the particle backend.
    pub approx_particles: usize,
    /// Per-tree node budget of the process-wide plan cache: memoized BHA
    /// decision trees shared by every cohort whose quantized configuration
    /// maps to the same `PlanKey`. `0` (the default) disables the cache;
    /// a positive value must be at least 8 (smaller trees thrash their LRU
    /// budget on the very first session).
    pub plan_cache_nodes: usize,
    /// Risk-quantization resolution for plan-cache keys: cohort risks are
    /// snapped to `1/buckets`-wide cells **before** the prior is built, so
    /// cohorts in the same risk band share one decision tree. `0` (the
    /// default) keeps exact risks — cache sharing then requires identical
    /// risk vectors. Requires [`Self::plan_cache_nodes`] > 0 when set.
    pub plan_risk_buckets: u32,
    /// Per-lab tenant lanes for the weighted-fair scheduler. Empty (the
    /// default) means every tenant id seen in traffic shares one implicit
    /// lane of weight 1 — which makes WFQ degenerate to the original
    /// round-robin, so pre-tenant deployments behave identically. A tenant
    /// submitting under an id not listed here also gets weight 1 and no
    /// SLO.
    pub tenants: Vec<TenantSpec>,
    /// Per-cohort session parameters (halving vs look-ahead, pool caps...).
    pub session: SbgtConfig,
    /// Assay model shared by all cohorts.
    pub model: BinaryDilutionModel,
    /// Base RNG seed; per-cohort seeds derive from it and the cohort id.
    pub base_seed: u64,
    /// How many times a cohort round may be rolled back and replayed after
    /// an engine failure before the fault is considered fatal.
    pub max_recoveries: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 256,
            batch_size: 10,
            batch_deadline: Duration::from_millis(50),
            max_live_cohorts: 64,
            dense_threshold: 9,
            parts: 4,
            sparse_epsilon: 0.0,
            sparse_threshold: 12,
            approx_threshold: 0,
            approx_backend: ApproxBackend::Bp,
            approx_particles: 2048,
            plan_cache_nodes: 0,
            plan_risk_buckets: 0,
            tenants: Vec::new(),
            session: SbgtConfig::default(),
            model: BinaryDilutionModel::pcr_like(),
            base_seed: 0,
            max_recoveries: 4,
        }
    }
}

impl ServiceConfig {
    /// Check the configuration, mirroring [`SbgtConfig::validate`]: every
    /// inconsistency is a typed [`ServiceError::InvalidConfig`], never a
    /// panic inside the service.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.workers == 0 {
            return Err(ServiceError::InvalidConfig(
                "worker count must be at least 1".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ServiceError::InvalidConfig(
                "ingress queue capacity must be at least 1".into(),
            ));
        }
        if self.batch_size == 0 {
            return Err(ServiceError::InvalidConfig(
                "batch size must be at least 1".into(),
            ));
        }
        if self.batch_size > 16 && self.approx_threshold == 0 {
            return Err(ServiceError::InvalidConfig(format!(
                "batch size {} outside 1..=16 (the 2^N lattice bounds exact \
                 cohort size); set approx_threshold to route oversized \
                 cohorts to an approximate backend",
                self.batch_size
            )));
        }
        if self.batch_size > 16 && self.approx_threshold > 17 {
            return Err(ServiceError::InvalidConfig(format!(
                "approx_threshold {} leaves cohorts of 17..{} subjects with \
                 no session able to hold them (exact backends stop at 16); \
                 it must be at most 17 when batch size exceeds 16",
                self.approx_threshold, self.approx_threshold
            )));
        }
        if self.approx_threshold > 0
            && self.approx_backend == ApproxBackend::Particle
            && self.approx_particles == 0
        {
            return Err(ServiceError::InvalidConfig(
                "particle backend enabled with zero particles; a weightless \
                 cloud cannot represent any posterior"
                    .into(),
            ));
        }
        if self.max_live_cohorts == 0 {
            return Err(ServiceError::InvalidConfig(
                "live-cohort cap must be at least 1".into(),
            ));
        }
        if self.parts == 0 {
            return Err(ServiceError::InvalidConfig(
                "sharded sessions need at least 1 partition".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.sparse_epsilon) {
            return Err(ServiceError::InvalidConfig(format!(
                "sparse epsilon {} outside [0, 1)",
                self.sparse_epsilon
            )));
        }
        if self.plan_cache_nodes > 0 && self.plan_cache_nodes < 8 {
            return Err(ServiceError::InvalidConfig(format!(
                "plan cache node budget {} must be 0 (disabled) or at least 8",
                self.plan_cache_nodes
            )));
        }
        if self.plan_risk_buckets > 0 && self.plan_cache_nodes == 0 {
            return Err(ServiceError::InvalidConfig(
                "risk quantization (plan_risk_buckets > 0) without a plan cache \
                 perturbs priors for no benefit; set plan_cache_nodes too"
                    .into(),
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for t in &self.tenants {
            if t.weight == 0 {
                return Err(ServiceError::InvalidConfig(format!(
                    "tenant {} has weight 0; a weightless lane would starve \
                     (omit the tenant instead)",
                    t.tenant
                )));
            }
            if let Some(slo) = t.slo {
                if slo.is_zero() {
                    return Err(ServiceError::InvalidConfig(format!(
                        "tenant {} has a zero latency SLO, which sheds all \
                         its traffic unconditionally",
                        t.tenant
                    )));
                }
            }
            if !seen.insert(t.tenant) {
                return Err(ServiceError::InvalidConfig(format!(
                    "tenant {} configured twice",
                    t.tenant
                )));
            }
        }
        self.session
            .validate()
            .map_err(|e| ServiceError::InvalidConfig(e.to_string()))?;
        Ok(())
    }

    /// Scheduler weight of a tenant: its configured lane weight, or 1 for
    /// any tenant id not explicitly listed.
    pub fn tenant_weight(&self, tenant: u32) -> u32 {
        self.tenants
            .iter()
            .find(|t| t.tenant == tenant)
            .map(|t| t.weight)
            .unwrap_or(1)
    }

    /// Latency SLO of a tenant, if one is configured.
    pub fn tenant_slo(&self, tenant: u32) -> Option<Duration> {
        self.tenants
            .iter()
            .find(|t| t.tenant == tenant)
            .and_then(|t| t.slo)
    }

    /// The session-placement slice of the configuration: everything a
    /// cohort actor needs to pick and build its session kind, as one value
    /// instead of a trail of positional scalars.
    pub fn policy(&self) -> SessionPolicy {
        SessionPolicy {
            dense_threshold: self.dense_threshold,
            parts: self.parts,
            sparse_epsilon: self.sparse_epsilon,
            sparse_threshold: self.sparse_threshold,
            approx_threshold: self.approx_threshold,
            approx_backend: self.approx_backend,
            approx_particles: self.approx_particles,
            plan_risk_buckets: self.plan_risk_buckets,
        }
    }
}

/// Which approximate posterior backend oversized cohorts run. Both scale
/// in specimens, pools, and (for SMC) particles — never `2^N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApproxBackend {
    /// Loopy belief propagation on the specimen↔pool factor graph:
    /// deterministic, fast, and exact on cycle-free observation sets.
    Bp,
    /// Sequential Monte Carlo particle posterior: seeded, snapshotable,
    /// bit-for-bit reproducible sampling that keeps subject correlations.
    Particle,
}

/// One lab tenant's QoS lane: its share of the engine under contention
/// and an optional latency target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant id carried by tagged submissions.
    pub tenant: u32,
    /// Weighted-fair-queueing weight (must be ≥ 1): under saturation, a
    /// weight-2 tenant receives twice the engine rounds of a weight-1 one.
    pub weight: u32,
    /// Optional p99 round-latency SLO. While the tenant's observed p99
    /// exceeds it, new submissions for this tenant shed with
    /// [`crate::ShedReason::SloExceeded`].
    pub slo: Option<Duration>,
}

impl TenantSpec {
    /// A weight-only lane with no SLO.
    pub fn weighted(tenant: u32, weight: u32) -> Self {
        TenantSpec {
            tenant,
            weight,
            slo: None,
        }
    }
}

/// How a cohort of a given size maps onto a session kind: dense in-memory
/// below `dense_threshold`, pruned-sparse at or above `sparse_threshold`
/// when `sparse_epsilon` enables it, engine-sharded otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionPolicy {
    /// Cohorts smaller than this run the dense in-memory session.
    pub dense_threshold: usize,
    /// Partition count for sharded sessions.
    pub parts: usize,
    /// Prune threshold for sparse sessions; `0.0` disables the sparse mode.
    pub sparse_epsilon: f64,
    /// Minimum cohort size for the sparse session.
    pub sparse_threshold: usize,
    /// Minimum cohort size for an approximate backend (`0` disables;
    /// takes precedence over every exact placement rule).
    pub approx_threshold: usize,
    /// Which approximate backend oversized cohorts run.
    pub approx_backend: ApproxBackend,
    /// Particle count for particle-backend cohorts.
    pub approx_particles: usize,
    /// Risk-quantization resolution for plan-cache keys (`0` = exact
    /// risks). Applied to cohort risks before the prior is built, so the
    /// quantized risks are what the session — and its `PlanKey` — see.
    pub plan_risk_buckets: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServiceConfig::default().validate().is_ok());
    }

    #[test]
    fn every_knob_is_checked() {
        let base = ServiceConfig::default();
        for (label, cfg) in [
            (
                "workers",
                ServiceConfig {
                    workers: 0,
                    ..base.clone()
                },
            ),
            (
                "queue",
                ServiceConfig {
                    queue_capacity: 0,
                    ..base.clone()
                },
            ),
            (
                "batch",
                ServiceConfig {
                    batch_size: 0,
                    ..base.clone()
                },
            ),
            (
                "batch-cap",
                ServiceConfig {
                    batch_size: 17,
                    ..base.clone()
                },
            ),
            (
                "batch-cap-approx-gap",
                ServiceConfig {
                    batch_size: 64,
                    approx_threshold: 18,
                    ..base.clone()
                },
            ),
            (
                "particles-zero",
                ServiceConfig {
                    approx_threshold: 12,
                    approx_backend: ApproxBackend::Particle,
                    approx_particles: 0,
                    ..base.clone()
                },
            ),
            (
                "live-cap",
                ServiceConfig {
                    max_live_cohorts: 0,
                    ..base.clone()
                },
            ),
            (
                "parts",
                ServiceConfig {
                    parts: 0,
                    ..base.clone()
                },
            ),
            (
                "sparse-eps-high",
                ServiceConfig {
                    sparse_epsilon: 1.0,
                    ..base.clone()
                },
            ),
            (
                "sparse-eps-negative",
                ServiceConfig {
                    sparse_epsilon: -0.25,
                    ..base.clone()
                },
            ),
            (
                "plan-nodes-tiny",
                ServiceConfig {
                    plan_cache_nodes: 7,
                    ..base.clone()
                },
            ),
            (
                "plan-buckets-without-cache",
                ServiceConfig {
                    plan_risk_buckets: 32,
                    plan_cache_nodes: 0,
                    ..base.clone()
                },
            ),
            (
                "tenant-weight-zero",
                ServiceConfig {
                    tenants: vec![TenantSpec::weighted(1, 0)],
                    ..base.clone()
                },
            ),
            (
                "tenant-duplicate",
                ServiceConfig {
                    tenants: vec![TenantSpec::weighted(1, 2), TenantSpec::weighted(1, 3)],
                    ..base.clone()
                },
            ),
            (
                "tenant-zero-slo",
                ServiceConfig {
                    tenants: vec![TenantSpec {
                        tenant: 1,
                        weight: 1,
                        slo: Some(Duration::ZERO),
                    }],
                    ..base
                },
            ),
        ] {
            assert!(
                matches!(cfg.validate(), Err(ServiceError::InvalidConfig(_))),
                "{label} should be rejected"
            );
        }
    }

    #[test]
    fn tenant_lookup_defaults_to_weight_one_no_slo() {
        let cfg = ServiceConfig {
            tenants: vec![
                TenantSpec::weighted(7, 3),
                TenantSpec {
                    tenant: 9,
                    weight: 1,
                    slo: Some(Duration::from_millis(20)),
                },
            ],
            ..ServiceConfig::default()
        };
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.tenant_weight(7), 3);
        assert_eq!(cfg.tenant_weight(42), 1, "unlisted tenants get weight 1");
        assert_eq!(cfg.tenant_slo(9), Some(Duration::from_millis(20)));
        assert_eq!(cfg.tenant_slo(7), None);
        assert_eq!(cfg.tenant_slo(42), None);
    }

    #[test]
    fn policy_mirrors_the_placement_knobs() {
        let cfg = ServiceConfig {
            dense_threshold: 3,
            parts: 5,
            sparse_epsilon: 1e-6,
            sparse_threshold: 7,
            approx_threshold: 17,
            approx_backend: ApproxBackend::Particle,
            approx_particles: 1024,
            plan_cache_nodes: 64,
            plan_risk_buckets: 16,
            ..ServiceConfig::default()
        };
        assert!(cfg.validate().is_ok());
        assert_eq!(
            cfg.policy(),
            SessionPolicy {
                dense_threshold: 3,
                parts: 5,
                sparse_epsilon: 1e-6,
                sparse_threshold: 7,
                approx_threshold: 17,
                approx_backend: ApproxBackend::Particle,
                approx_particles: 1024,
                plan_risk_buckets: 16,
            }
        );
    }

    #[test]
    fn oversized_batches_need_an_approximate_backstop() {
        // A 256-specimen batch is exactly the regime the approximate
        // backends exist for — valid once approx_threshold guarantees no
        // cohort past the 2^N wall lands on an exact session.
        let cfg = ServiceConfig {
            batch_size: 256,
            approx_threshold: 17,
            ..ServiceConfig::default()
        };
        assert!(cfg.validate().is_ok());
        // Routing every cohort approx (threshold 1) is also coherent.
        let all_approx = ServiceConfig {
            batch_size: 256,
            approx_threshold: 1,
            ..ServiceConfig::default()
        };
        assert!(all_approx.validate().is_ok());
    }
}
