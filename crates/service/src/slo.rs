//! Per-tenant SLO burn-rate accounting — the alerting layer above the
//! raw latency percentiles.
//!
//! The engine's [`MetricsRegistry`] keeps, per tenant lane, a rolling
//! two-window error budget ([`sbgt_engine::BURN_WINDOW_ROUNDS`] rounds
//! per window, budget [`sbgt_engine::BURN_BUDGET`] = 1% of rounds over
//! SLO). The *burn rate* is the observed violation fraction divided by
//! the budget: `1.0x` means the tenant is consuming its error budget
//! exactly as provisioned; `10x` means the budget will be exhausted in a
//! tenth of the window.
//!
//! This module turns that gauge into a typed event: when an
//! SLO-breaching submission is about to shed with
//! [`crate::ShedReason::SloExceeded`] and the lane's burn rate is at or
//! past budget, the service records a [`BurnRateAlert`] as a
//! [`BURN_ALERT_MARK`] obs mark *before* the shed — so a fleet trace
//! shows the budget exhaustion leading the admission-control response,
//! not just the sheds themselves. Burn rates also surface as `slo:`
//! lines in the ASCII timeline and as gauges on the Prometheus page.

use sbgt_engine::MetricsRegistry;

/// Obs mark name recorded when a burn-rate alert fires. The mark's
/// payload (`SpanEvent::value`) is the burn rate in milli-x
/// ([`BurnRateAlert::burn_milli`]) and its `meta.task` is the tenant id.
pub const BURN_ALERT_MARK: &str = "service:burn-alert";

/// A tenant's SLO error budget is being consumed at or above the
/// provisioned rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurnRateAlert {
    /// Tenant whose lane is burning budget.
    pub tenant: u32,
    /// Burn rate in thousandths of "x budget": `1000` = burning exactly
    /// at budget, `12_500` = 12.5x. Kept integral so the alert rides in
    /// a mark's `u64` payload without float re-encoding.
    pub burn_milli: u64,
}

impl BurnRateAlert {
    /// Evaluate a tenant's lane: `Some` when the lane has observed
    /// SLO-checked rounds and its burn rate is at or above `1.0x`
    /// (budget being consumed as fast as provisioned, or faster).
    pub fn evaluate(metrics: &MetricsRegistry, tenant: u32) -> Option<Self> {
        let burn = metrics.tenant_burn_rate(tenant)?;
        (burn >= 1.0).then(|| BurnRateAlert {
            tenant,
            burn_milli: burn_to_milli(burn),
        })
    }

    /// The burn rate as a float multiple of budget.
    pub fn burn(&self) -> f64 {
        self.burn_milli as f64 / 1000.0
    }
}

/// Quantize a burn rate to milli-x for the mark payload. Negative and
/// NaN inputs clamp to 0 (a lane cannot un-burn its budget).
pub fn burn_to_milli(burn: f64) -> u64 {
    if burn.is_nan() || burn <= 0.0 {
        return 0;
    }
    let milli = (burn * 1000.0).round();
    if milli >= u64::MAX as f64 {
        u64::MAX
    } else {
        milli as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn quantization_clamps_and_rounds() {
        assert_eq!(burn_to_milli(0.0), 0);
        assert_eq!(burn_to_milli(-3.0), 0);
        assert_eq!(burn_to_milli(f64::NAN), 0);
        assert_eq!(burn_to_milli(1.0), 1000);
        assert_eq!(burn_to_milli(12.4999), 12_500);
        assert_eq!(burn_to_milli(f64::INFINITY), u64::MAX);
    }

    #[test]
    fn alert_fires_only_at_or_past_budget() {
        let metrics = MetricsRegistry::new();
        let slo = Some(ms(10));
        // 100 rounds, 1 over SLO: exactly the 1% budget → burn 1.0x.
        metrics.update_service(|s| {
            s.record_tenant_round(7, ms(50), slo);
            for _ in 0..99 {
                s.record_tenant_round(7, ms(1), slo);
            }
        });
        let alert = BurnRateAlert::evaluate(&metrics, 7).expect("at-budget lane alerts");
        assert_eq!(alert.tenant, 7);
        assert_eq!(alert.burn_milli, 1000);
        assert_eq!(alert.burn(), 1.0);

        // A lane comfortably under budget stays quiet: 1 breach in 200.
        let quiet = MetricsRegistry::new();
        quiet.update_service(|s| {
            s.record_tenant_round(3, ms(50), slo);
            for _ in 0..199 {
                s.record_tenant_round(3, ms(1), slo);
            }
        });
        assert_eq!(BurnRateAlert::evaluate(&quiet, 3), None);

        // No SLO-checked rounds at all → no burn rate → no alert.
        assert_eq!(BurnRateAlert::evaluate(&metrics, 99), None);
    }

    #[test]
    fn all_breaching_lane_saturates_the_alert() {
        let metrics = MetricsRegistry::new();
        metrics.update_service(|s| {
            for _ in 0..32 {
                s.record_tenant_round(1, ms(80), Some(ms(10)));
            }
        });
        let alert = BurnRateAlert::evaluate(&metrics, 1).expect("fully-breaching lane alerts");
        assert_eq!(alert.burn(), 100.0, "1.0 over a 1% budget caps at 100x");
    }
}
