//! Cohort actors: one Bayesian session per batch of specimens, driven
//! round-by-round so a scheduler can interleave many cohorts fairly on one
//! shared engine.
//!
//! Determinism is the backbone of the service's correctness story: the
//! virtual lab outcome is a pure function of `(cohort seed, test index,
//! pool, ground truth, model)`, and each session round is a pure function
//! of session state. A cohort therefore classifies **bit-for-bit**
//! identically whether it runs serially, interleaved with 63 other cohorts,
//! after a checkpoint/restore cycle, or replayed from a pre-round snapshot
//! when a chaos fault kills the round.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use std::sync::Arc;

use sbgt::{
    ExecMode, PlanCache, PlanKey, PlanLineage, RiskQuantizer, RoundStep, SbgtConfig, SbgtSession,
    SessionOutcome, SessionSnapshot, ShardedSession, SparseSession,
};
use sbgt_approx::{BpConfig, BpSession, ParticleConfig, ParticleSession};
use sbgt_bayes::Prior;
use sbgt_engine::Engine;
use sbgt_lattice::{BigState, State};
use sbgt_response::{BinaryDilutionModel, BinaryOutcomeModel};

use crate::checkpoint::CohortKind;
use crate::config::{ApproxBackend, SessionPolicy};

/// One submitted specimen: its prior risk and (for the virtual lab) its
/// ground-truth infection status.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Specimen {
    /// Prior infection risk used to build the cohort prior.
    pub risk: f64,
    /// Ground truth consumed only by the deterministic virtual lab.
    pub infected: bool,
}

/// Static identity of a cohort: everything needed to (re)build its session
/// and replay its lab outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortSpec {
    /// Service-assigned cohort id (batch sequence number).
    pub id: u64,
    /// Per-cohort seed derived from the service base seed and the id.
    pub seed: u64,
    /// Lab tenant the cohort belongs to (QoS lane). Scheduling metadata
    /// only: the tenant never enters the seed or any session arithmetic,
    /// so re-tagging a cohort cannot change its report.
    pub tenant: u32,
    /// Prior risk per subject, in submission order.
    pub risks: Vec<f64>,
    /// Ground-truth infected set (subject indices within the cohort).
    /// A [`BigState`] so approximate cohorts can exceed the exact
    /// backends' one-word subject ceiling.
    pub truth: BigState,
}

impl CohortSpec {
    /// Build the spec for batch `id` from its specimens, in arrival order,
    /// for the default tenant 0.
    pub fn from_specimens(id: u64, base_seed: u64, specimens: &[Specimen]) -> Self {
        let seed = base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id);
        let risks = specimens.iter().map(|s| s.risk).collect();
        let truth = BigState::from_subjects(
            specimens
                .iter()
                .enumerate()
                .filter(|(_, s)| s.infected)
                .map(|(i, _)| i),
        );
        CohortSpec {
            id,
            seed,
            tenant: 0,
            risks,
            truth,
        }
    }

    /// Tag the cohort with a tenant id (builder-style; scheduling only).
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        self.risks.len()
    }
}

/// Deterministic virtual lab: the outcome of test number `test_index` on
/// `pool` is a pure function of the cohort seed and the query — no shared
/// RNG stream — so replaying a round after a rollback, or resuming from a
/// checkpoint, reproduces the exact same assay results.
pub fn lab_outcome(
    spec: &CohortSpec,
    test_index: usize,
    pool: State,
    model: &BinaryDilutionModel,
) -> bool {
    lab_draw(
        spec,
        test_index,
        spec.truth.positives_in(&BigState::from_state(pool)),
        pool.rank(),
        model,
    )
}

/// [`lab_outcome`] for pools beyond the one-word ceiling (approximate
/// cohorts). One-word pools produce bit-identical outcomes through either
/// entry point: both reduce the query to `(positives, rank)` before the
/// draw.
pub fn lab_outcome_big(
    spec: &CohortSpec,
    test_index: usize,
    pool: &BigState,
    model: &BinaryDilutionModel,
) -> bool {
    lab_draw(
        spec,
        test_index,
        spec.truth.positives_in(pool),
        pool.rank(),
        model,
    )
}

fn lab_draw(
    spec: &CohortSpec,
    test_index: usize,
    positives: u32,
    rank: u32,
    model: &BinaryDilutionModel,
) -> bool {
    let mut rng = StdRng::seed_from_u64(
        spec.seed ^ (test_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let u: f64 = rng.random();
    u < model.positive_prob(positives, rank)
}

/// Chunk specimens into cohorts in arrival order — the same rule the
/// service batcher applies when every specimen is already queued (no
/// deadline fires), so a serial reference run can reconstruct the exact
/// cohorts a service run forms.
pub fn batch_specimens(
    specimens: &[Specimen],
    batch_size: usize,
    base_seed: u64,
) -> Vec<CohortSpec> {
    specimens
        .chunks(batch_size.max(1))
        .enumerate()
        .map(|(id, chunk)| CohortSpec::from_specimens(id as u64, base_seed, chunk))
        .collect()
}

/// The particle tuning a policy implies for one cohort: the cloud size
/// from the policy, the stream seed from the cohort's own seed — so the
/// sampled posterior is a deterministic function of `(spec, policy)` and
/// two cohorts never share a sample path.
fn particle_config(policy: &SessionPolicy, spec: &CohortSpec) -> ParticleConfig {
    ParticleConfig {
        particles: policy.approx_particles,
        seed: spec.seed,
        ..ParticleConfig::default()
    }
}

/// The session behind a cohort, picked by the [`SessionPolicy`]:
/// approximate (BP or particle) at or above the approx threshold — the
/// only kinds with no `2^N` footprint — dense in-memory below the dense
/// threshold, pruned-sparse at or above the sparse threshold when the
/// policy enables it, engine-sharded otherwise.
enum SessionKind {
    Dense(SbgtSession<BinaryDilutionModel>),
    Sharded(ShardedSession<BinaryDilutionModel>),
    Sparse(SparseSession<BinaryDilutionModel>),
    Bp(BpSession<BinaryDilutionModel>),
    Particle(ParticleSession<BinaryDilutionModel>),
}

impl SessionKind {
    fn kind(&self) -> CohortKind {
        match self {
            SessionKind::Dense(_) => CohortKind::Dense,
            SessionKind::Sharded(_) => CohortKind::Sharded,
            SessionKind::Sparse(_) => CohortKind::Sparse,
            SessionKind::Bp(_) => CohortKind::Bp,
            SessionKind::Particle(_) => CohortKind::Particle,
        }
    }
}

/// Outcome of one recovering round.
pub(crate) struct RoundRun {
    pub step: RoundStep,
    /// Rollback-and-replay cycles this round consumed.
    pub recovered: u64,
}

/// A live cohort: spec + session + test cursor, advanced one round at a
/// time by the service workers.
pub struct CohortActor {
    spec: CohortSpec,
    model: BinaryDilutionModel,
    session_config: SbgtConfig,
    policy: SessionPolicy,
    kind: SessionKind,
    tests_done: usize,
    recoveries: u64,
    /// The shared plan cache, kept so rollback-and-replay recovery can
    /// re-attach the plan to the rebuilt session.
    plan_cache: Option<Arc<PlanCache>>,
}

impl CohortActor {
    /// Open a cohort per the placement policy: approximate backend when
    /// the approx threshold is enabled and `n >= approx_threshold` (checked
    /// first — no exact structure is ever built for those cohorts); dense
    /// session when `n < dense_threshold`; pruned-sparse when the policy's
    /// epsilon is positive and `n >= sparse_threshold`; sharded otherwise.
    pub fn new(
        engine: &Engine,
        spec: CohortSpec,
        model: BinaryDilutionModel,
        session_config: SbgtConfig,
        policy: SessionPolicy,
    ) -> Self {
        // Quantization runs before the prior is built, so the session's
        // arithmetic — and the plan key derived from the same risks —
        // agree on the exact prior bits. Identity when buckets == 0.
        let risks = RiskQuantizer::new(policy.plan_risk_buckets).snap_all(&spec.risks);
        let n = spec.n_subjects();
        let kind = if policy.approx_threshold > 0 && n >= policy.approx_threshold {
            match policy.approx_backend {
                ApproxBackend::Bp => SessionKind::Bp(
                    BpSession::new(&risks, model, session_config, BpConfig::default())
                        .expect("risks and config validated by ServiceConfig"),
                ),
                ApproxBackend::Particle => SessionKind::Particle(
                    ParticleSession::new(
                        &risks,
                        model,
                        session_config,
                        particle_config(&policy, &spec),
                    )
                    .expect("risks and config validated by ServiceConfig"),
                ),
            }
        } else if n < policy.dense_threshold {
            let prior = Prior::from_risks(&risks);
            SessionKind::Dense(SbgtSession::new(prior, model, session_config))
        } else if policy.sparse_epsilon > 0.0 && n >= policy.sparse_threshold {
            let prior = Prior::from_risks(&risks);
            SessionKind::Sparse(
                SparseSession::new(prior, model, session_config, policy.sparse_epsilon)
                    .expect("policy epsilon validated by ServiceConfig"),
            )
        } else {
            let prior = Prior::from_risks(&risks);
            SessionKind::Sharded(ShardedSession::new(
                engine,
                prior,
                model,
                session_config,
                policy.parts,
            ))
        };
        CohortActor {
            spec,
            model,
            session_config,
            policy,
            kind,
            tests_done: 0,
            recoveries: 0,
            plan_cache: None,
        }
    }

    /// Open a cohort with the same rollback-and-replay recovery as a
    /// round: the initial posterior scatter runs engine stages, so a chaos
    /// fault can kill creation too. Creation is a pure function of the
    /// spec, so a replay just rebuilds from scratch — under a fresh stage
    /// sequence, hence a fresh fault schedule.
    pub(crate) fn new_recovering(
        engine: &Engine,
        spec: CohortSpec,
        model: BinaryDilutionModel,
        session_config: SbgtConfig,
        policy: SessionPolicy,
        max_recoveries: u64,
    ) -> Self {
        let mut recovered = 0;
        loop {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                CohortActor::new(engine, spec.clone(), model, session_config, policy)
            }));
            match attempt {
                Ok(mut actor) => {
                    actor.recoveries = recovered;
                    return actor;
                }
                Err(payload) => {
                    if recovered >= max_recoveries || !engine.fault_tolerance_active() {
                        std::panic::resume_unwind(payload);
                    }
                    recovered += 1;
                }
            }
        }
    }

    /// The cohort's static identity.
    pub fn spec(&self) -> &CohortSpec {
        &self.spec
    }

    /// Whether the cohort runs the dense session.
    pub fn is_dense(&self) -> bool {
        matches!(self.kind, SessionKind::Dense(_))
    }

    /// The session kind the cohort is running.
    pub fn kind(&self) -> CohortKind {
        self.kind.kind()
    }

    /// Total rollback-and-replay cycles over the cohort's lifetime.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Attach the process-wide plan cache: derive this cohort's [`PlanKey`]
    /// — the quantized risks the session actually runs on, the exact model
    /// and rule bits, and a lineage tag for the session kind's summation
    /// order — and hand the session its memoized decision tree. Cohorts
    /// sharing a key replay each other's selections; a cohort without a
    /// cache selects live every round.
    pub fn attach_plan_cache(&mut self, cache: &Arc<PlanCache>) {
        self.plan_cache = Some(Arc::clone(cache));
        let risks = RiskQuantizer::new(self.policy.plan_risk_buckets).snap_all(&self.spec.risks);
        let cfg = &self.session_config;
        let sparse_switch = cfg
            .sparse_switch
            .map(|s| (s.max_support_fraction, s.prune_epsilon));
        let lineage = match &self.kind {
            SessionKind::Dense(_) => match cfg.exec {
                ExecMode::Serial => PlanLineage::DenseSerial,
                ExecMode::Parallel(p) => PlanLineage::DenseParallel {
                    chunk_len: p.chunk_len as u64,
                    threshold: p.threshold as u64,
                },
            },
            SessionKind::Sharded(_) => PlanLineage::Sharded {
                parts: self.policy.parts as u32,
            },
            SessionKind::Sparse(_) => PlanLineage::Sparse {
                epsilon_bits: self.policy.sparse_epsilon.to_bits(),
            },
            SessionKind::Bp(s) => PlanLineage::Bp {
                max_iters: s.bp_config().max_iters,
                damping_bits: s.bp_config().damping.to_bits(),
            },
            SessionKind::Particle(s) => PlanLineage::Particle {
                particles: s.particle_config().particles as u32,
                ess_bits: s.particle_config().ess_frac.to_bits(),
            },
        };
        let key = PlanKey::new(
            &risks,
            &self.model,
            &cfg.rule,
            cfg.stage_width,
            cfg.max_pool_size,
            sparse_switch,
            lineage,
        );
        let handle = cache.handle(key);
        match &mut self.kind {
            SessionKind::Dense(s) => s.attach_plan(handle),
            SessionKind::Sharded(s) => s.attach_plan(handle),
            SessionKind::Sparse(s) => s.attach_plan(handle),
            // Approximate sessions select from live marginals, not a
            // memoized decision tree. The lineage-distinct key is still
            // derived (and the cache entry claimed) so an exact cohort can
            // never replay an approximate trajectory, or vice versa, if a
            // future backend starts recording plans under these tags.
            SessionKind::Bp(_) | SessionKind::Particle(_) => drop(handle),
        }
    }

    fn history_len(&self) -> usize {
        match &self.kind {
            SessionKind::Dense(s) => s.history().len(),
            SessionKind::Sharded(s) => s.history().len(),
            SessionKind::Sparse(s) => s.history().len(),
            SessionKind::Bp(s) => s.tests_performed(),
            SessionKind::Particle(s) => s.tests_performed(),
        }
    }

    /// Advance the session by exactly one round against the deterministic
    /// virtual lab.
    pub fn run_round(&mut self, engine: &Engine) -> RoundStep {
        self.attach_obs(engine);
        let spec = &self.spec;
        let model = self.model;
        let mut idx = self.tests_done;
        // Each arm builds its own lab closure (the exact sessions query by
        // one-word `State`, the approximate ones by `BigState`) over the
        // same pure outcome function and shared test cursor.
        let step = match &mut self.kind {
            SessionKind::Dense(s) => s.run_round(|pool: State| {
                let outcome = lab_outcome(spec, idx, pool, &model);
                idx += 1;
                outcome
            }),
            SessionKind::Sharded(s) => s.run_round(engine, |pool: State| {
                let outcome = lab_outcome(spec, idx, pool, &model);
                idx += 1;
                outcome
            }),
            // The sparse update runs as a fault-injectable engine stage,
            // so chaos campaigns cover sparse cohorts like sharded ones.
            SessionKind::Sparse(s) => s.run_round_on(engine, |pool: State| {
                let outcome = lab_outcome(spec, idx, pool, &model);
                idx += 1;
                outcome
            }),
            // The BP relaxation likewise runs as an engine stage; a retry
            // recomputes the identical fixed point.
            SessionKind::Bp(s) => s.run_round_on(engine, |pool: &BigState| {
                let outcome = lab_outcome_big(spec, idx, pool, &model);
                idx += 1;
                outcome
            }),
            // The particle update mutates the RNG stream, which does not
            // fit the engine's pure-retry contract; recovery for particle
            // cohorts rides entirely on snapshot rollback.
            SessionKind::Particle(s) => s.run_round(|pool: &BigState| {
                let outcome = lab_outcome_big(spec, idx, pool, &model);
                idx += 1;
                outcome
            }),
        };
        self.tests_done = self.history_len();
        step
    }

    /// Advance one round with rollback-and-replay recovery: when the engine
    /// exhausts its retry budget mid-round (a chaos fault), the session
    /// state is rolled back to the pre-round snapshot and the round
    /// replayed — the engine's stage sequence has moved on, so the replay
    /// draws a fresh fault schedule. After `max_recoveries` rollbacks the
    /// original failure is re-raised.
    ///
    /// Snapshots are only taken while the engine has fault tolerance
    /// enabled; a fault-free service pays nothing for this path.
    pub(crate) fn run_round_recovering(
        &mut self,
        engine: &Engine,
        max_recoveries: u64,
    ) -> RoundRun {
        if !engine.fault_tolerance_active() {
            return RoundRun {
                step: self.run_round(engine),
                recovered: 0,
            };
        }
        let mut recovered = 0;
        loop {
            let snapshot = self.snapshot_session();
            let attempt =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_round(engine)));
            match attempt {
                Ok(step) => return RoundRun { step, recovered },
                Err(payload) => {
                    if recovered >= max_recoveries {
                        std::panic::resume_unwind(payload);
                    }
                    recovered += 1;
                    self.recoveries += 1;
                    self.restore_session(&snapshot);
                    let rec = engine.obs();
                    if rec.enabled_at(sbgt_engine::obs::TraceLevel::Spans) {
                        rec.mark(
                            rec.intern("service:recovery"),
                            sbgt_engine::obs::SpanMeta::for_cohort(self.spec.id),
                        );
                    }
                }
            }
        }
    }

    /// Lazily wire the session's telemetry to the engine's recorder,
    /// tagging every span with this cohort's id. Lazy (per round, not at
    /// construction) because restore paths build sessions without an
    /// engine in reach; a no-op when tracing is off or already attached.
    fn attach_obs(&mut self, engine: &Engine) {
        use sbgt_engine::obs::TraceLevel;
        if !engine.obs().enabled_at(TraceLevel::Spans) {
            return;
        }
        match &mut self.kind {
            SessionKind::Dense(s) => {
                if !s.has_obs() {
                    s.attach_obs(std::sync::Arc::clone(engine.obs()), self.spec.id);
                }
            }
            SessionKind::Sharded(s) => {
                if s.cohort().is_none() {
                    s.set_cohort(self.spec.id);
                }
            }
            SessionKind::Sparse(s) => {
                if !s.has_obs() {
                    s.attach_obs(std::sync::Arc::clone(engine.obs()), self.spec.id);
                }
            }
            SessionKind::Bp(s) => {
                if !s.has_obs() {
                    s.attach_obs(std::sync::Arc::clone(engine.obs()), self.spec.id);
                }
            }
            SessionKind::Particle(s) => {
                if !s.has_obs() {
                    s.attach_obs(std::sync::Arc::clone(engine.obs()), self.spec.id);
                }
            }
        }
    }

    /// Snapshot the underlying session state.
    pub fn snapshot_session(&self) -> SessionSnapshot {
        match &self.kind {
            SessionKind::Dense(s) => s.snapshot(),
            SessionKind::Sharded(s) => s.snapshot(),
            SessionKind::Sparse(s) => s.snapshot(),
            SessionKind::Bp(s) => s.snapshot(),
            SessionKind::Particle(s) => s.snapshot(),
        }
    }

    fn restore_session(&mut self, snapshot: &SessionSnapshot) {
        self.kind = match &self.kind {
            SessionKind::Dense(_) => SessionKind::Dense(
                SbgtSession::restore(snapshot, self.model, self.session_config)
                    .expect("own snapshot restores"),
            ),
            SessionKind::Sharded(_) => SessionKind::Sharded(
                ShardedSession::restore(snapshot, self.model, self.session_config)
                    .expect("own snapshot restores"),
            ),
            SessionKind::Sparse(_) => SessionKind::Sparse(
                SparseSession::restore(
                    snapshot,
                    self.model,
                    self.session_config,
                    self.policy.sparse_epsilon,
                )
                .expect("own snapshot restores"),
            ),
            // Approximate restores need the (quantized) risks back — they
            // are the session's prior, not part of the snapshot.
            SessionKind::Bp(_) => SessionKind::Bp(
                BpSession::restore(
                    snapshot,
                    &RiskQuantizer::new(self.policy.plan_risk_buckets).snap_all(&self.spec.risks),
                    self.model,
                    self.session_config,
                    BpConfig::default(),
                )
                .expect("own snapshot restores"),
            ),
            SessionKind::Particle(_) => SessionKind::Particle(
                ParticleSession::restore(
                    snapshot,
                    &RiskQuantizer::new(self.policy.plan_risk_buckets).snap_all(&self.spec.risks),
                    self.model,
                    self.session_config,
                    particle_config(&self.policy, &self.spec),
                )
                .expect("own snapshot restores"),
            ),
        };
        self.tests_done = self.history_len();
        // The rebuilt session lost its plan handle; re-derive it so
        // recovered cohorts keep replaying (and extending) the tree.
        if let Some(cache) = self.plan_cache.clone() {
            self.attach_plan_cache(&cache);
        }
    }

    /// Freeze the cohort into a checkpoint (eviction / suspend format).
    pub fn checkpoint(&self) -> crate::checkpoint::CohortCheckpoint {
        crate::checkpoint::CohortCheckpoint {
            spec: self.spec.clone(),
            kind: self.kind(),
            recoveries: self.recoveries,
            snapshot: self.snapshot_session(),
        }
    }

    /// Rehydrate a cohort from a checkpoint, to the **recorded** kind (not
    /// the policy rule), so the arithmetic path stays identical across the
    /// freeze. The sharded restore rebuilds the exact partition boundaries
    /// recorded in the snapshot, so no engine is needed here; the sparse
    /// restore takes its prune epsilon from the policy.
    pub fn restore(
        checkpoint: &crate::checkpoint::CohortCheckpoint,
        model: BinaryDilutionModel,
        session_config: SbgtConfig,
        policy: SessionPolicy,
    ) -> Result<Self, sbgt::SnapshotError> {
        let kind = match checkpoint.kind {
            CohortKind::Dense => SessionKind::Dense(SbgtSession::restore(
                &checkpoint.snapshot,
                model,
                session_config,
            )?),
            CohortKind::Sharded => SessionKind::Sharded(ShardedSession::restore(
                &checkpoint.snapshot,
                model,
                session_config,
            )?),
            CohortKind::Sparse => SessionKind::Sparse(SparseSession::restore(
                &checkpoint.snapshot,
                model,
                session_config,
                policy.sparse_epsilon,
            )?),
            CohortKind::Bp => SessionKind::Bp(BpSession::restore(
                &checkpoint.snapshot,
                &RiskQuantizer::new(policy.plan_risk_buckets).snap_all(&checkpoint.spec.risks),
                model,
                session_config,
                BpConfig::default(),
            )?),
            CohortKind::Particle => SessionKind::Particle(ParticleSession::restore(
                &checkpoint.snapshot,
                &RiskQuantizer::new(policy.plan_risk_buckets).snap_all(&checkpoint.spec.risks),
                model,
                session_config,
                particle_config(&policy, &checkpoint.spec),
            )?),
        };
        let mut actor = CohortActor {
            spec: checkpoint.spec.clone(),
            model,
            session_config,
            policy,
            kind,
            tests_done: 0,
            recoveries: checkpoint.recoveries,
            plan_cache: None,
        };
        actor.tests_done = actor.history_len();
        Ok(actor)
    }
}

/// Run one cohort to classification, serially, with the same deterministic
/// lab the service uses — the ground-truth reference every service run is
/// compared against.
pub fn run_cohort_serial(
    engine: &Engine,
    spec: &CohortSpec,
    model: BinaryDilutionModel,
    session_config: SbgtConfig,
    policy: SessionPolicy,
) -> SessionOutcome {
    let mut actor = CohortActor::new(engine, spec.clone(), model, session_config, policy);
    loop {
        if let RoundStep::Finished(outcome) = actor.run_round(engine) {
            return outcome;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_engine::EngineConfig;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default().with_threads(2))
    }

    fn specimens(n: usize, seed: u64) -> Vec<Specimen> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let risk = 0.02 + rng.random::<f64>() * 0.1;
                Specimen {
                    risk,
                    infected: rng.random_bool(risk),
                }
            })
            .collect()
    }

    #[test]
    fn lab_is_a_pure_function() {
        let spec = CohortSpec {
            id: 3,
            seed: 42,
            tenant: 0,
            risks: vec![0.05; 8],
            truth: BigState::from_subjects([0]),
        };
        let model = BinaryDilutionModel::pcr_like();
        // One positive diluted across the full cohort: the positive
        // probability is strictly between 0 and 1, so outcomes vary with
        // the test index while staying a pure function of it.
        let pool = State::from_subjects(0..8);
        assert_eq!(
            lab_outcome(&spec, 4, pool, &model),
            lab_outcome(&spec, 4, pool, &model)
        );
        let hits = (0..400)
            .filter(|&i| lab_outcome(&spec, i, pool, &model))
            .count();
        assert!(
            hits > 0 && hits < 400,
            "diluted assay must produce both outcomes ({hits}/400 positive)"
        );
        let p = model.positive_prob(1, 8);
        let freq = hits as f64 / 400.0;
        assert!(
            (freq - p).abs() < 0.1,
            "empirical rate {freq} should track model probability {p}"
        );
    }

    #[test]
    fn batching_is_deterministic_and_ordered() {
        let sp = specimens(23, 9);
        let batches = batch_specimens(&sp, 10, 7);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].n_subjects(), 10);
        assert_eq!(batches[2].n_subjects(), 3, "final partial batch flushes");
        assert_eq!(batches[1].id, 1);
        assert_ne!(batches[0].seed, batches[1].seed);
        assert_eq!(batches, batch_specimens(&sp, 10, 7));
    }

    fn policy(dense_threshold: usize, parts: usize) -> SessionPolicy {
        SessionPolicy {
            dense_threshold,
            parts,
            sparse_epsilon: 0.0,
            sparse_threshold: 0,
            approx_threshold: 0,
            approx_backend: ApproxBackend::Bp,
            approx_particles: 512,
            plan_risk_buckets: 0,
        }
    }

    #[test]
    fn policy_picks_the_session_kind() {
        let e = engine();
        let spec = CohortSpec::from_specimens(0, 5, &specimens(8, 3));
        let model = BinaryDilutionModel::perfect();
        let cfg = SbgtConfig::default();
        let dense_actor = CohortActor::new(&e, spec.clone(), model, cfg, policy(100, 3));
        let sharded_actor = CohortActor::new(&e, spec.clone(), model, cfg, policy(0, 3));
        let sparse_policy = SessionPolicy {
            sparse_epsilon: 1e-9,
            ..policy(0, 3)
        };
        let sparse_actor = CohortActor::new(&e, spec.clone(), model, cfg, sparse_policy);
        assert_eq!(dense_actor.kind(), CohortKind::Dense);
        assert!(dense_actor.is_dense());
        assert_eq!(sharded_actor.kind(), CohortKind::Sharded);
        assert_eq!(sparse_actor.kind(), CohortKind::Sparse);
        // Below the sparse size floor the cohort stays sharded even with a
        // positive epsilon.
        let undersized = SessionPolicy {
            sparse_threshold: spec.n_subjects() + 1,
            ..sparse_policy
        };
        assert_eq!(
            CohortActor::new(&e, spec.clone(), model, cfg, undersized).kind(),
            CohortKind::Sharded
        );
        // With a perfect assay every kind must recover the exact ground
        // truth, even though their float trajectories may differ in the
        // last ulp (dense renormalizes each round; sharded does not).
        for (label, p) in [
            ("dense", policy(100, 3)),
            ("sharded", policy(0, 3)),
            ("sparse", sparse_policy),
        ] {
            let outcome = run_cohort_serial(&e, &spec, model, cfg, p);
            assert!(outcome.classification.is_terminal());
            let positives = BigState::from_subjects(
                outcome
                    .classification
                    .statuses
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| **s == sbgt_bayes::SubjectStatus::Positive)
                    .map(|(i, _)| i),
            );
            assert_eq!(positives, spec.truth, "{label}");
        }
    }

    #[test]
    fn approx_placement_takes_precedence() {
        let e = engine();
        let spec = CohortSpec::from_specimens(0, 5, &specimens(8, 3));
        let model = BinaryDilutionModel::perfect();
        let cfg = SbgtConfig::default();
        // The approx threshold wins over dense/sparse/sharded rules.
        let bp_policy = SessionPolicy {
            approx_threshold: 4,
            sparse_epsilon: 1e-9,
            ..policy(100, 3)
        };
        assert_eq!(
            CohortActor::new(&e, spec.clone(), model, cfg, bp_policy).kind(),
            CohortKind::Bp
        );
        let particle_policy = SessionPolicy {
            approx_backend: ApproxBackend::Particle,
            ..bp_policy
        };
        assert_eq!(
            CohortActor::new(&e, spec.clone(), model, cfg, particle_policy).kind(),
            CohortKind::Particle
        );
        // Below the threshold the exact rules apply untouched.
        let undersized = SessionPolicy {
            approx_threshold: spec.n_subjects() + 1,
            ..policy(100, 3)
        };
        assert_eq!(
            CohortActor::new(&e, spec, model, cfg, undersized).kind(),
            CohortKind::Dense
        );
    }

    /// An approximate cohort past the one-word truth ceiling classifies
    /// end-to-end and its checkpoint resumes bit-for-bit — the service-side
    /// half of the 2^N-wall story.
    #[test]
    fn approx_checkpoint_restore_resumes_bit_for_bit() {
        let e = engine();
        // 70 subjects: truth spans two words; an exact session cannot even
        // represent this cohort.
        let sp = specimens(70, 21);
        assert!(sp.iter().any(|s| s.infected), "seed must infect someone");
        let spec = CohortSpec::from_specimens(3, 13, &sp);
        let model = BinaryDilutionModel::new(0.99, 0.995, sbgt_response::Dilution::None);
        let cfg = SbgtConfig::default();
        for backend in [ApproxBackend::Bp, ApproxBackend::Particle] {
            let p = SessionPolicy {
                approx_threshold: 17,
                approx_backend: backend,
                ..policy(0, 4)
            };
            let expected = run_cohort_serial(&e, &spec, model, cfg, p);
            assert!(
                expected.classification.is_terminal(),
                "{backend:?} must classify"
            );

            let mut actor = CohortActor::new(&e, spec.clone(), model, cfg, p);
            for _ in 0..2 {
                assert!(matches!(actor.run_round(&e), RoundStep::Progressed));
            }
            let bytes = actor.checkpoint().to_bytes();
            drop(actor);
            let checkpoint = crate::checkpoint::CohortCheckpoint::from_bytes(&bytes).unwrap();
            assert_eq!(checkpoint.spec.truth, spec.truth);
            let mut restored = CohortActor::restore(&checkpoint, model, cfg, p).unwrap();
            let outcome = loop {
                if let RoundStep::Finished(o) = restored.run_round(&e) {
                    break o;
                }
            };
            assert_eq!(outcome, expected, "{backend:?}");
            for (a, b) in outcome.marginals.iter().zip(&expected.marginals) {
                assert_eq!(a.to_bits(), b.to_bits(), "{backend:?}");
            }
        }
    }

    #[test]
    fn checkpoint_restore_resumes_bit_for_bit() {
        let e = engine();
        let spec = CohortSpec::from_specimens(1, 11, &specimens(9, 4));
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default();
        let expected = run_cohort_serial(&e, &spec, model, cfg, policy(0, 4));

        let mut actor = CohortActor::new(&e, spec, model, cfg, policy(0, 4));
        for _ in 0..2 {
            assert!(matches!(actor.run_round(&e), RoundStep::Progressed));
        }
        let bytes = actor.checkpoint().to_bytes();
        drop(actor);
        let checkpoint = crate::checkpoint::CohortCheckpoint::from_bytes(&bytes).unwrap();
        let mut restored = CohortActor::restore(&checkpoint, model, cfg, policy(0, 4)).unwrap();
        let outcome = loop {
            if let RoundStep::Finished(o) = restored.run_round(&e) {
                break o;
            }
        };
        assert_eq!(outcome, expected);
        for (a, b) in outcome.marginals.iter().zip(&expected.marginals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sparse_checkpoint_restore_resumes_bit_for_bit() {
        let e = engine();
        let spec = CohortSpec::from_specimens(2, 19, &specimens(8, 6));
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default();
        let p = SessionPolicy {
            sparse_epsilon: 1e-9,
            ..policy(0, 4)
        };
        let expected = run_cohort_serial(&e, &spec, model, cfg, p);

        let mut actor = CohortActor::new(&e, spec, model, cfg, p);
        assert_eq!(actor.kind(), CohortKind::Sparse);
        for _ in 0..2 {
            assert!(matches!(actor.run_round(&e), RoundStep::Progressed));
        }
        let bytes = actor.checkpoint().to_bytes();
        drop(actor);
        let checkpoint = crate::checkpoint::CohortCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(checkpoint.kind, CohortKind::Sparse);
        assert!(checkpoint.snapshot.sparse.is_some());
        let mut restored = CohortActor::restore(&checkpoint, model, cfg, p).unwrap();
        assert_eq!(restored.kind(), CohortKind::Sparse);
        let outcome = loop {
            if let RoundStep::Finished(o) = restored.run_round(&e) {
                break o;
            }
        };
        assert_eq!(outcome, expected);
        for (a, b) in outcome.marginals.iter().zip(&expected.marginals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
