//! The surveillance service: bounded ingestion → deadline/size batching →
//! fair round-robin round scheduling on one shared engine.
//!
//! Threading model (no async runtime; plain threads and channels):
//!
//! ```text
//!  submit/try_submit ──► bounded ingress ──► batcher thread
//!                        (admission ctl)       │ size or deadline trigger
//!                                              ▼
//!                                    ready queue (FIFO = round-robin)
//!                                      │               ▲
//!                                      ▼               │ re-enqueue
//!                                  worker × N ── one round per pickup
//!                                      │
//!                   finished ──► completed reports (parking_lot mutex)
//!                   suspended ─► parked channel ──► checkpoints
//! ```
//!
//! One pickup = one session round, and a progressed cohort goes to the
//! *back* of the FIFO, so cohorts share the engine fairly regardless of
//! how many rounds each needs. All correctness-relevant state advances in
//! deterministic per-cohort steps; the scheduler only decides *when* a
//! round runs, never *what* it computes — which is why a service run is
//! bit-for-bit identical to a serial one.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use sbgt::{PlanCache, PlanCacheStats, RoundStep, SessionOutcome};
use sbgt_engine::obs::{SpanKind, SpanMeta, TraceLevel};
use sbgt_engine::SharedEngine;

use crate::checkpoint::CohortCheckpoint;
use crate::cohort::{CohortActor, CohortSpec, Specimen};
use crate::config::ServiceConfig;
use crate::error::{ServiceError, ShedReason};

/// Final classification of one cohort, as emitted by the service.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortReport {
    /// Cohort id (batch sequence number).
    pub cohort: u64,
    /// Cohort size.
    pub subjects: usize,
    /// Rollback-and-replay cycles the cohort consumed (0 on a clean run).
    pub recovered_rounds: u64,
    /// The session's terminal outcome.
    pub outcome: SessionOutcome,
}

/// Everything a suspended service hands back: completed work plus one
/// checkpoint per still-live cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCheckpoint {
    /// Cohorts classified before the suspension.
    pub completed: Vec<CohortReport>,
    /// Frozen live cohorts, restorable bit-for-bit.
    pub cohorts: Vec<CohortCheckpoint>,
    /// The warmed plan cache in the `SBGTPLAN` byte format (empty when the
    /// service ran without a cache). [`SurveillanceService::resume`] merges
    /// it back, so memoized decision trees survive the freeze.
    pub plans: Vec<u8>,
}

enum WorkItem {
    Round(Box<CohortActor>),
    Stop,
}

/// Shared counters the batcher, workers, and control plane coordinate on.
struct Shared {
    /// Set during suspension: workers park actors instead of running them.
    suspended: AtomicBool,
    /// Cohorts opened (batch sequence counter).
    opened: AtomicU64,
    /// Reports of classified cohorts.
    reports: Mutex<Vec<CohortReport>>,
}

impl Shared {
    fn completed(&self) -> u64 {
        self.reports.lock().len() as u64
    }
}

/// A running multi-cohort surveillance service.
pub struct SurveillanceService {
    engine: SharedEngine,
    config: ServiceConfig,
    ingress_tx: Option<Sender<Specimen>>,
    ready_tx: Sender<WorkItem>,
    parked_rx: Receiver<CohortActor>,
    shared: Arc<Shared>,
    batcher: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    /// Shared memoized-selection cache (`None` when disabled by config).
    plan_cache: Option<Arc<PlanCache>>,
    /// Cache counters at service start: the cache may be shared across
    /// service incarnations, so this incarnation's contribution to
    /// `ServiceStats` is the delta against this baseline.
    plan_baseline: PlanCacheStats,
}

impl SurveillanceService {
    /// Start the service: spawns the batcher and `config.workers` round
    /// workers against the shared engine. A positive
    /// `config.plan_cache_nodes` opens a fresh process-wide plan cache.
    pub fn start(engine: SharedEngine, config: ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let cache = (config.plan_cache_nodes > 0).then(|| PlanCache::new(config.plan_cache_nodes));
        SurveillanceService::start_with_cache(engine, config, cache)
    }

    /// [`SurveillanceService::start`] against a caller-owned plan cache —
    /// how successive service incarnations (or a warm/cold benchmark)
    /// share one set of memoized decision trees. `None` disables the cache
    /// regardless of `config.plan_cache_nodes`.
    pub fn start_with_cache(
        engine: SharedEngine,
        config: ServiceConfig,
        cache: Option<Arc<PlanCache>>,
    ) -> Result<Self, ServiceError> {
        config.validate()?;
        let (ingress_tx, ingress_rx) = bounded::<Specimen>(config.queue_capacity);
        let (ready_tx, ready_rx) = unbounded::<WorkItem>();
        let (parked_tx, parked_rx) = unbounded::<CohortActor>();
        let shared = Arc::new(Shared {
            suspended: AtomicBool::new(false),
            opened: AtomicU64::new(0),
            reports: Mutex::new(Vec::new()),
        });

        // Threads are named so each telemetry lane (and its Chrome-trace
        // row) identifies its role without cross-referencing thread ids.
        let batcher = {
            let engine = engine.clone();
            let config = config.clone();
            let ready_tx = ready_tx.clone();
            let shared = Arc::clone(&shared);
            let cache = cache.clone();
            thread::Builder::new()
                .name("svc-batcher".to_string())
                .spawn(move || batcher_loop(engine, config, ingress_rx, ready_tx, shared, cache))
                .expect("spawn batcher thread")
        };

        let workers = (0..config.workers)
            .map(|i| {
                let engine = engine.clone();
                let config = config.clone();
                let ready_rx = ready_rx.clone();
                let ready_tx = ready_tx.clone();
                let parked_tx = parked_tx.clone();
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("svc-worker-{i}"))
                    .spawn(move || {
                        worker_loop(engine, config, ready_rx, ready_tx, parked_tx, shared)
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        let plan_baseline = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        Ok(SurveillanceService {
            engine,
            config,
            ingress_tx: Some(ingress_tx),
            ready_tx,
            parked_rx,
            shared,
            batcher: Some(batcher),
            workers,
            plan_cache: cache,
            plan_baseline,
        })
    }

    /// Start a service and rehydrate the cohorts of a [`ServiceCheckpoint`]:
    /// completed reports are carried over and live cohorts re-enter the
    /// round-robin exactly where they stopped.
    pub fn resume(
        engine: SharedEngine,
        config: ServiceConfig,
        checkpoint: ServiceCheckpoint,
    ) -> Result<Self, ServiceError> {
        let service = SurveillanceService::start(engine, config)?;
        // A tampered plan blob is a typed restore error, never a panic;
        // without a cache the warmed trees are simply dropped.
        if let Some(cache) = &service.plan_cache {
            if !checkpoint.plans.is_empty() {
                cache
                    .import(&checkpoint.plans)
                    .map_err(|e| ServiceError::Restore(e.to_string()))?;
            }
        }
        let restored = checkpoint.cohorts.len() as u64;
        let rec = service.engine.obs();
        let obs_start = rec
            .enabled_at(TraceLevel::Spans)
            .then(|| (rec.intern("service:restore"), rec.now_ns()));
        for ckpt in &checkpoint.cohorts {
            let mut actor = CohortActor::restore(
                ckpt,
                service.config.model,
                service.config.session,
                service.config.policy(),
            )
            .map_err(|e| ServiceError::Restore(e.to_string()))?;
            if let Some(cache) = &service.plan_cache {
                actor.attach_plan_cache(cache);
            }
            service.shared.opened.fetch_add(1, Ordering::SeqCst);
            assert!(
                service
                    .ready_tx
                    .send(WorkItem::Round(Box::new(actor)))
                    .is_ok(),
                "workers hold the ready receiver"
            );
        }
        {
            let mut reports = service.shared.reports.lock();
            let carried = checkpoint.completed.len() as u64;
            reports.extend(checkpoint.completed);
            // Carried reports count as opened too, so drain's ledger of
            // opened == reported stays balanced.
            service.shared.opened.fetch_add(carried, Ordering::SeqCst);
        }
        service.engine.metrics().update_service(|s| {
            s.restores += restored;
        });
        if let Some((name, start)) = obs_start {
            let rec = service.engine.obs();
            rec.record_span_ending_now(SpanKind::Service, name, start, SpanMeta::default());
        }
        Ok(service)
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Non-blocking submission with admission control: a full ingress
    /// queue sheds the specimen with a typed reason instead of stalling
    /// the caller or buffering without bound.
    pub fn try_submit(&self, specimen: Specimen) -> Result<(), ServiceError> {
        let Some(tx) = &self.ingress_tx else {
            return Err(ServiceError::Closed);
        };
        match tx.try_send(specimen) {
            Ok(()) => {
                let depth = tx.len();
                self.engine.metrics().update_service(|s| {
                    s.submitted += 1;
                    s.observe_queue_depth(depth);
                });
                self.obs_queue_depth(depth);
                Ok(())
            }
            Err(e) if e.is_full() => {
                self.engine.metrics().update_service(|s| s.shed += 1);
                let rec = self.engine.obs();
                if rec.enabled_at(TraceLevel::Full) {
                    rec.mark(rec.intern("service:shed"), SpanMeta::default());
                }
                Err(ServiceError::Shed(ShedReason::QueueFull))
            }
            Err(_) => Err(ServiceError::Closed),
        }
    }

    /// Emit the ingress depth as a counter track ([`TraceLevel::Full`]):
    /// the Chrome trace then plots queue pressure against the round lanes.
    fn obs_queue_depth(&self, depth: usize) {
        let rec = self.engine.obs();
        if rec.enabled_at(TraceLevel::Full) {
            rec.counter(rec.intern("queue_depth"), depth as u64);
        }
    }

    /// Blocking submission: waits for queue space instead of shedding.
    pub fn submit(&self, specimen: Specimen) -> Result<(), ServiceError> {
        let Some(tx) = &self.ingress_tx else {
            return Err(ServiceError::Closed);
        };
        tx.send(specimen).map_err(|_| ServiceError::Closed)?;
        let depth = tx.len();
        self.engine.metrics().update_service(|s| {
            s.submitted += 1;
            s.observe_queue_depth(depth);
        });
        self.obs_queue_depth(depth);
        Ok(())
    }

    /// Close ingress, flush the batcher, run every cohort to
    /// classification, stop the workers, and return all reports sorted by
    /// cohort id.
    pub fn drain(mut self) -> Vec<CohortReport> {
        self.close_ingress_and_flush();
        let expected = self.shared.opened.load(Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(120);
        while self.shared.completed() < expected {
            assert!(
                Instant::now() < deadline,
                "drain stalled: {}/{expected} cohorts classified",
                self.shared.completed()
            );
            thread::sleep(Duration::from_millis(1));
        }
        self.stop_workers();
        self.flush_plan_stats();
        let mut reports = std::mem::take(&mut *self.shared.reports.lock());
        reports.sort_by_key(|r| r.cohort);
        // Counter-consistency ledger: with ingress closed and the wait
        // above done, live == 0, so completed must equal opened — every
        // admitted specimen is in exactly one report.
        debug_assert_eq!(
            reports.len() as u64,
            expected,
            "drain ledger: completed + live != opened"
        );
        reports
    }

    /// Stop at the next round boundary: flush ingress into cohorts, park
    /// every live cohort, and freeze each into a checkpoint. The result
    /// (with the already-completed reports) restores via
    /// [`SurveillanceService::resume`] with bit-for-bit continuation.
    pub fn suspend(mut self) -> ServiceCheckpoint {
        let rec = Arc::clone(self.engine.obs());
        let obs_start = rec
            .enabled_at(TraceLevel::Spans)
            .then(|| (rec.intern("service:checkpoint"), rec.now_ns()));
        self.close_ingress_and_flush();
        self.shared.suspended.store(true, Ordering::SeqCst);
        let expected = self.shared.opened.load(Ordering::SeqCst);
        let mut parked: Vec<CohortActor> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(120);
        while self.shared.completed() + (parked.len() as u64) < expected {
            assert!(
                Instant::now() < deadline,
                "suspend stalled: {} done + {} parked of {expected}",
                self.shared.completed(),
                parked.len()
            );
            match self.parked_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(actor) => parked.push(actor),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.stop_workers();
        self.flush_plan_stats();
        parked.sort_by_key(|a| a.spec().id);
        let cohorts: Vec<CohortCheckpoint> = parked.iter().map(CohortActor::checkpoint).collect();
        self.engine.metrics().update_service(|s| {
            s.checkpoints += cohorts.len() as u64;
        });
        let plans = self
            .plan_cache
            .as_ref()
            .map(|c| c.export())
            .unwrap_or_default();
        let mut completed = std::mem::take(&mut *self.shared.reports.lock());
        completed.sort_by_key(|r| r.cohort);
        if let Some((name, start)) = obs_start {
            rec.record_span_ending_now(SpanKind::Service, name, start, SpanMeta::default());
        }
        ServiceCheckpoint {
            completed,
            cohorts,
            plans,
        }
    }

    /// Fold this incarnation's plan-cache activity (delta against the
    /// start-time baseline; the cache may be shared) into `ServiceStats`.
    fn flush_plan_stats(&self) {
        let Some(cache) = &self.plan_cache else {
            return;
        };
        let now = cache.stats();
        let base = self.plan_baseline;
        self.engine.metrics().update_service(|s| {
            s.plan_hits += now.hits - base.hits;
            s.plan_misses += now.misses - base.misses;
            s.plan_extends += now.extends - base.extends;
            s.plan_evictions += now.evictions - base.evictions;
        });
    }

    fn close_ingress_and_flush(&mut self) {
        drop(self.ingress_tx.take());
        if let Some(batcher) = self.batcher.take() {
            batcher.join().expect("batcher thread panicked");
        }
    }

    fn stop_workers(&mut self) {
        for _ in 0..self.workers.len() {
            let _ = self.ready_tx.send(WorkItem::Stop);
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread panicked");
        }
    }
}

impl Drop for SurveillanceService {
    fn drop(&mut self) {
        // Abandoned without drain/suspend (e.g. a test assertion failed):
        // shut the threads down instead of leaking them.
        drop(self.ingress_tx.take());
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        if !self.workers.is_empty() {
            self.shared.suspended.store(true, Ordering::SeqCst);
            for _ in 0..self.workers.len() {
                let _ = self.ready_tx.send(WorkItem::Stop);
            }
            for worker in self.workers.drain(..) {
                let _ = worker.join();
            }
        }
    }
}

/// Batcher: group ingress specimens into cohorts, closing a batch on size
/// or on `batch_deadline` after its first specimen. Holds new cohorts
/// while the live count is at `max_live_cohorts`, back-pressuring the
/// bounded ingress queue (which then sheds at `try_submit`).
fn batcher_loop(
    engine: SharedEngine,
    config: ServiceConfig,
    ingress_rx: Receiver<Specimen>,
    ready_tx: Sender<WorkItem>,
    shared: Arc<Shared>,
    cache: Option<Arc<PlanCache>>,
) {
    let mut batch: Vec<Specimen> = Vec::new();
    let mut deadline: Option<Instant> = None;
    loop {
        let message = match deadline {
            None => ingress_rx
                .recv()
                .map_err(|_| RecvTimeoutError::Disconnected),
            Some(d) => ingress_rx.recv_timeout(d.saturating_duration_since(Instant::now())),
        };
        match message {
            Ok(specimen) => {
                if batch.is_empty() {
                    deadline = Some(Instant::now() + config.batch_deadline);
                }
                batch.push(specimen);
                if batch.len() >= config.batch_size {
                    flush_batch(&engine, &config, &mut batch, &ready_tx, &shared, &cache);
                    deadline = None;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                flush_batch(&engine, &config, &mut batch, &ready_tx, &shared, &cache);
                deadline = None;
            }
            Err(RecvTimeoutError::Disconnected) => {
                flush_batch(&engine, &config, &mut batch, &ready_tx, &shared, &cache);
                return;
            }
        }
    }
}

fn flush_batch(
    engine: &SharedEngine,
    config: &ServiceConfig,
    batch: &mut Vec<Specimen>,
    ready_tx: &Sender<WorkItem>,
    shared: &Shared,
    cache: &Option<Arc<PlanCache>>,
) {
    if batch.is_empty() {
        return;
    }
    // Admission control, stage two: cap concurrently-live cohorts so the
    // engine's working set stays bounded; ingress backs up (and sheds)
    // while we wait. A suspension lifts the wait — the cohort opens and is
    // immediately parked, so its specimens survive in the checkpoint.
    while shared.opened.load(Ordering::SeqCst) - shared.completed()
        >= config.max_live_cohorts as u64
        && !shared.suspended.load(Ordering::SeqCst)
    {
        thread::sleep(Duration::from_millis(1));
    }
    let id = shared.opened.fetch_add(1, Ordering::SeqCst);
    let rec = engine.obs();
    let obs_start = rec
        .enabled_at(TraceLevel::Spans)
        .then(|| (rec.intern("service:batch-seal"), rec.now_ns()));
    let spec = CohortSpec::from_specimens(id, config.base_seed, batch);
    batch.clear();
    let mut actor = CohortActor::new_recovering(
        engine,
        spec,
        config.model,
        config.session,
        config.policy(),
        config.max_recoveries,
    );
    if let Some(cache) = cache {
        actor.attach_plan_cache(cache);
    }
    let creation_recoveries = actor.recoveries();
    engine.metrics().update_service(|s| {
        s.batches += 1;
        s.cohorts_opened += 1;
        s.recovered_rounds += creation_recoveries;
    });
    // The seal span covers prior construction too (it may itself run
    // engine stages), so cohort startup cost is visible per cohort.
    if let Some((name, start)) = obs_start {
        rec.record_span_ending_now(SpanKind::Service, name, start, SpanMeta::for_cohort(id));
    }
    if rec.enabled_at(TraceLevel::Full) {
        let live = shared.opened.load(Ordering::SeqCst) - shared.completed();
        rec.counter(rec.intern("live_cohorts"), live);
    }
    assert!(
        ready_tx.send(WorkItem::Round(Box::new(actor))).is_ok(),
        "workers hold the ready receiver"
    );
}

/// Worker: pull one cohort, run one round, requeue or report. FIFO order
/// makes this fair round-robin across all live cohorts.
fn worker_loop(
    engine: SharedEngine,
    config: ServiceConfig,
    ready_rx: Receiver<WorkItem>,
    ready_tx: Sender<WorkItem>,
    parked_tx: Sender<CohortActor>,
    shared: Arc<Shared>,
) {
    loop {
        match ready_rx.recv() {
            Err(_) | Ok(WorkItem::Stop) => return,
            Ok(WorkItem::Round(mut actor)) => {
                if shared.suspended.load(Ordering::SeqCst) {
                    let _ = parked_tx.send(*actor);
                    continue;
                }
                let rec = engine.obs();
                let obs_start = rec
                    .enabled_at(TraceLevel::Spans)
                    .then(|| (rec.intern("service:round"), rec.now_ns()));
                let start = Instant::now();
                let run = actor.run_round_recovering(&engine, config.max_recoveries);
                let elapsed = start.elapsed();
                if let Some((name, start_ns)) = obs_start {
                    rec.record_span_ending_now(
                        SpanKind::Service,
                        name,
                        start_ns,
                        SpanMeta::for_cohort(actor.spec().id),
                    );
                }
                engine.metrics().update_service(|s| {
                    s.record_round(elapsed);
                    s.recovered_rounds += run.recovered;
                });
                match run.step {
                    RoundStep::Finished(outcome) => {
                        engine
                            .metrics()
                            .update_service(|s| s.cohorts_completed += 1);
                        if rec.enabled_at(TraceLevel::Full) {
                            let live =
                                shared.opened.load(Ordering::SeqCst) - shared.completed() - 1;
                            rec.counter(rec.intern("live_cohorts"), live);
                        }
                        shared.reports.lock().push(CohortReport {
                            cohort: actor.spec().id,
                            subjects: actor.spec().n_subjects(),
                            recovered_rounds: actor.recoveries(),
                            outcome,
                        });
                    }
                    RoundStep::Progressed => {
                        let _ = ready_tx.send(WorkItem::Round(actor));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::{batch_specimens, run_cohort_serial};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sbgt_engine::EngineConfig;

    fn shared_engine() -> SharedEngine {
        SharedEngine::new(EngineConfig::default().with_threads(2))
    }

    fn specimens(n: usize, seed: u64) -> Vec<Specimen> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let risk = 0.01 + rng.random::<f64>() * 0.12;
                Specimen {
                    risk,
                    infected: rng.random_bool(risk),
                }
            })
            .collect()
    }

    fn quick_config() -> ServiceConfig {
        ServiceConfig {
            workers: 3,
            batch_size: 6,
            // Long deadline: only the size trigger and the close-time
            // flush form batches, so boundaries match `batch_specimens`
            // regardless of scheduler timing.
            batch_deadline: Duration::from_secs(5),
            dense_threshold: 5,
            parts: 3,
            base_seed: 77,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn service_matches_serial_reference_bit_for_bit() {
        let engine = shared_engine();
        let config = quick_config();
        let sp = specimens(64, 5);

        let service = SurveillanceService::start(engine.clone(), config.clone()).unwrap();
        for s in &sp {
            service.submit(*s).unwrap();
        }
        let reports = service.drain();

        let specs = batch_specimens(&sp, config.batch_size, config.base_seed);
        assert_eq!(reports.len(), specs.len());
        for (report, spec) in reports.iter().zip(&specs) {
            let serial =
                run_cohort_serial(&engine, spec, config.model, config.session, config.policy());
            assert_eq!(report.cohort, spec.id);
            assert_eq!(report.outcome, serial);
            for (a, b) in report.outcome.marginals.iter().zip(&serial.marginals) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let stats = engine.metrics().service_stats();
        assert_eq!(stats.submitted, 64);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.cohorts_completed, stats.cohorts_opened);
        assert!(stats.rounds > 0);
    }

    #[test]
    fn full_queue_sheds_with_typed_reason() {
        let engine = shared_engine();
        // One worker, tiny queue, and a live-cohort cap of one: the
        // batcher back-pressures, so the queue genuinely fills.
        let config = ServiceConfig {
            workers: 1,
            queue_capacity: 4,
            batch_size: 4,
            max_live_cohorts: 1,
            dense_threshold: 0,
            parts: 2,
            base_seed: 3,
            ..ServiceConfig::default()
        };
        let service = SurveillanceService::start(engine.clone(), config).unwrap();
        let sp = specimens(64, 8);
        let mut shed = 0usize;
        for s in &sp {
            match service.try_submit(*s) {
                Ok(()) => {}
                Err(ServiceError::Shed(ShedReason::QueueFull)) => shed += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        let reports = service.drain();
        let stats = engine.metrics().service_stats();
        assert_eq!(stats.shed as usize, shed);
        assert_eq!(stats.submitted as usize, 64 - shed);
        // Everything accepted was classified; nothing leaked.
        let classified: usize = reports.iter().map(|r| r.subjects).sum();
        assert_eq!(classified, 64 - shed);
        assert!(shed > 0, "tiny queue under burst load must shed");
    }

    #[test]
    fn deadline_flushes_partial_batches() {
        let engine = shared_engine();
        let config = ServiceConfig {
            batch_size: 16,
            batch_deadline: Duration::from_millis(10),
            dense_threshold: 32,
            base_seed: 1,
            ..ServiceConfig::default()
        };
        let service = SurveillanceService::start(engine.clone(), config).unwrap();
        for s in specimens(3, 2) {
            service.submit(s).unwrap();
        }
        // Far below batch_size: only the deadline can open this cohort.
        // Wait for the deadline flush *before* closing ingress, so drain's
        // own flush-on-close cannot be what formed the batch.
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.metrics().service_stats().cohorts_opened == 0 {
            assert!(Instant::now() < deadline, "deadline flush never fired");
            thread::sleep(Duration::from_millis(2));
        }
        let reports = service.drain();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].subjects, 3);
    }

    #[test]
    fn traced_service_run_exports_a_valid_chrome_trace() {
        use sbgt_engine::obs::{render_chrome_trace, validate_chrome_trace, ObsConfig};
        let engine = SharedEngine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_obs(ObsConfig::full()),
        );
        let config = quick_config();
        let service = SurveillanceService::start(engine.clone(), config).unwrap();
        for s in specimens(24, 13) {
            service.submit(s).unwrap();
        }
        let reports = service.drain();
        assert!(!reports.is_empty());

        let rec = engine.obs();
        let snap = rec.snapshot();
        let events: Vec<_> = snap.all_events().collect();
        // The whole service pipeline shows up: batch seals and rounds
        // (service layer), session rounds, and engine stage spans — all
        // tagged with real cohort ids where applicable.
        for name in ["service:batch-seal", "service:round", "session:round"] {
            assert!(
                events.iter().any(|e| rec.name_of(e.name) == name),
                "missing {name} span"
            );
        }
        let round_cohorts: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| rec.name_of(e.name) == "service:round")
            .map(|e| e.meta.cohort)
            .collect();
        assert_eq!(
            round_cohorts.len(),
            reports.len(),
            "every cohort's rounds are tagged with its id"
        );
        assert!(
            events
                .iter()
                .any(|e| rec.name_of(e.name) == "queue_depth" && e.kind == SpanKind::Counter),
            "Full level plots ingress depth"
        );
        // Lanes carry the service thread names into the trace.
        assert!(snap.lanes.iter().any(|l| l.name == "svc-batcher"));
        assert!(snap.lanes.iter().any(|l| l.name.starts_with("svc-worker-")));
        // And the export is a valid, loadable Chrome trace.
        let trace = render_chrome_trace(rec);
        let summary = validate_chrome_trace(&trace).expect("trace must validate");
        assert!(summary.spans > 0);
        assert!(summary.counters > 0);
    }

    #[test]
    fn shared_plan_cache_replays_across_cohorts_bit_for_bit() {
        let engine = shared_engine();
        // One shared risk band: every cohort quantizes to the same risk
        // vector, so all of them share a single memoized decision tree.
        let config = ServiceConfig {
            workers: 3,
            batch_size: 8,
            batch_deadline: Duration::from_secs(5),
            dense_threshold: 9,
            plan_cache_nodes: 512,
            plan_risk_buckets: 16,
            session: sbgt::SbgtConfig::default().with_stage_width(2),
            base_seed: 4242,
            ..ServiceConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(31);
        let sp: Vec<Specimen> = (0..64)
            .map(|_| Specimen {
                risk: 0.05,
                infected: rng.random_bool(0.05),
            })
            .collect();

        let service = SurveillanceService::start(engine.clone(), config.clone()).unwrap();
        assert!(service.plan_cache.is_some());
        for s in &sp {
            service.submit(*s).unwrap();
        }
        let reports = service.drain();

        // Replayed selections must be indistinguishable from live ones:
        // the serial reference runs the same policy (same quantized
        // priors) with no cache attached.
        let specs = batch_specimens(&sp, config.batch_size, config.base_seed);
        assert_eq!(reports.len(), specs.len());
        for (report, spec) in reports.iter().zip(&specs) {
            let serial =
                run_cohort_serial(&engine, spec, config.model, config.session, config.policy());
            assert_eq!(report.outcome, serial);
            for (a, b) in report.outcome.marginals.iter().zip(&serial.marginals) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let stats = engine.metrics().service_stats();
        assert!(
            stats.plan_hits > 0,
            "shared-key cohorts must replay memoized selections"
        );
        assert!(stats.plan_extends > 0, "misses must extend the tree");
    }

    #[test]
    fn suspend_resume_continues_bit_for_bit() {
        let engine = shared_engine();
        let config = quick_config();
        let sp = specimens(48, 21);

        // Reference: uninterrupted serial run over the same batches.
        let specs = batch_specimens(&sp, config.batch_size, config.base_seed);
        let serial: Vec<SessionOutcome> = specs
            .iter()
            .map(|spec| {
                run_cohort_serial(&engine, spec, config.model, config.session, config.policy())
            })
            .collect();

        let service = SurveillanceService::start(engine.clone(), config.clone()).unwrap();
        for s in &sp {
            service.submit(*s).unwrap();
        }
        // Let some rounds happen, then freeze mid-run.
        thread::sleep(Duration::from_millis(5));
        let checkpoint = service.suspend();
        assert_eq!(
            checkpoint.completed.len() + checkpoint.cohorts.len(),
            specs.len(),
            "every cohort is either completed or checkpointed"
        );

        // Round-trip each cohort checkpoint through its byte codec, as an
        // eviction to cold storage would.
        let rehydrated = ServiceCheckpoint {
            completed: checkpoint.completed.clone(),
            cohorts: checkpoint
                .cohorts
                .iter()
                .map(|c| CohortCheckpoint::from_bytes(&c.to_bytes()).unwrap())
                .collect(),
            plans: checkpoint.plans.clone(),
        };

        let resumed =
            SurveillanceService::resume(engine.clone(), config.clone(), rehydrated).unwrap();
        let reports = resumed.drain();
        assert_eq!(reports.len(), specs.len());
        for (report, expected) in reports.iter().zip(&serial) {
            assert_eq!(&report.outcome, expected);
            for (a, b) in report.outcome.marginals.iter().zip(&expected.marginals) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let stats = engine.metrics().service_stats();
        assert_eq!(stats.checkpoints, checkpoint.cohorts.len() as u64);
        assert_eq!(stats.restores, checkpoint.cohorts.len() as u64);
    }
}
