//! The surveillance service: bounded ingestion → deadline/size batching →
//! weighted-fair round scheduling on one shared engine.
//!
//! Threading model (no async runtime; plain threads and channels):
//!
//! ```text
//!  submit/try_submit ──► bounded ingress ──► batcher thread
//!  (tenant-tagged)        (admission ctl)      │ per-tenant size/deadline
//!                                              ▼
//!                                 WFQ ready queue (per-tenant lanes)
//!                                      │               ▲
//!                                      ▼               │ re-enqueue
//!                                  worker × N ── one round per pickup
//!                                      │
//!                   finished ──► completed reports (parking_lot mutex)
//!                   suspended ─► parked channel ──► checkpoints
//! ```
//!
//! One pickup = one session round, and a progressed cohort goes to the
//! back of its tenant's lane, so cohorts share the engine in proportion
//! to their tenant's weight regardless of how many rounds each needs
//! (uniform weights reproduce the original round-robin; see
//! [`crate::wfq`]). All correctness-relevant state advances in
//! deterministic per-cohort steps; the scheduler only decides *when* a
//! round runs, never *what* it computes — which is why a service run is
//! bit-for-bit identical to a serial one under any weight assignment.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use sbgt::{PlanCache, PlanCacheStats, RoundStep, SessionOutcome};
use sbgt_engine::obs::{SpanKind, SpanMeta, TraceLevel};
use sbgt_engine::SharedEngine;

use crate::checkpoint::CohortCheckpoint;
use crate::cohort::{CohortActor, CohortSpec, Specimen};
use crate::config::ServiceConfig;
use crate::error::{ServiceError, ShedReason};
use crate::slo::{BurnRateAlert, BURN_ALERT_MARK};
use crate::wfq::WfqScheduler;

/// Final classification of one cohort, as emitted by the service.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortReport {
    /// Cohort id (batch sequence number).
    pub cohort: u64,
    /// Lab tenant the cohort belonged to.
    pub tenant: u32,
    /// Cohort size.
    pub subjects: usize,
    /// Rollback-and-replay cycles the cohort consumed (0 on a clean run).
    pub recovered_rounds: u64,
    /// The session's terminal outcome.
    pub outcome: SessionOutcome,
}

/// Everything a suspended service hands back: completed work plus one
/// checkpoint per still-live cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCheckpoint {
    /// Cohorts classified before the suspension.
    pub completed: Vec<CohortReport>,
    /// Frozen live cohorts, restorable bit-for-bit.
    pub cohorts: Vec<CohortCheckpoint>,
    /// The warmed plan cache in the `SBGTPLAN` byte format (empty when the
    /// service ran without a cache). [`SurveillanceService::resume`] merges
    /// it back, so memoized decision trees survive the freeze.
    pub plans: Vec<u8>,
}

/// One tenant-tagged ingress entry.
struct Tagged {
    tenant: u32,
    specimen: Specimen,
}

/// Shared counters the batcher, workers, and control plane coordinate on.
struct Shared {
    /// Set during suspension: workers park actors instead of running them.
    suspended: AtomicBool,
    /// Set while draining for handoff: new submissions shed with
    /// [`ShedReason::Draining`]; queued work still runs to completion.
    draining: AtomicBool,
    /// Cohorts opened (batch sequence counter — also the id allocator for
    /// batcher-formed cohorts; fabric placement assigns ids externally).
    opened: AtomicU64,
    /// Cohorts classified. Kept as its own counter (not `reports.len()`)
    /// so [`SurveillanceService::take_completed`] can hand reports out
    /// incrementally without unbalancing the drain/suspend ledgers.
    completed: AtomicU64,
    /// Reports of classified cohorts not yet taken by the embedder.
    reports: Mutex<Vec<CohortReport>>,
}

impl Shared {
    fn completed(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }
}

/// A running multi-cohort surveillance service.
pub struct SurveillanceService {
    engine: SharedEngine,
    config: ServiceConfig,
    ingress_tx: Option<Sender<Tagged>>,
    sched: Arc<WfqScheduler<Box<CohortActor>>>,
    parked_rx: Receiver<CohortActor>,
    shared: Arc<Shared>,
    batcher: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    /// Shared memoized-selection cache (`None` when disabled by config).
    plan_cache: Option<Arc<PlanCache>>,
    /// Cache counters at service start: the cache may be shared across
    /// service incarnations, so this incarnation's contribution to
    /// `ServiceStats` is the delta against this baseline.
    plan_baseline: PlanCacheStats,
}

impl SurveillanceService {
    /// Start the service: spawns the batcher and `config.workers` round
    /// workers against the shared engine. A positive
    /// `config.plan_cache_nodes` opens a fresh process-wide plan cache.
    pub fn start(engine: SharedEngine, config: ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let cache = (config.plan_cache_nodes > 0).then(|| PlanCache::new(config.plan_cache_nodes));
        SurveillanceService::start_with_cache(engine, config, cache)
    }

    /// [`SurveillanceService::start`] against a caller-owned plan cache —
    /// how successive service incarnations (or a warm/cold benchmark)
    /// share one set of memoized decision trees. `None` disables the cache
    /// regardless of `config.plan_cache_nodes`.
    pub fn start_with_cache(
        engine: SharedEngine,
        config: ServiceConfig,
        cache: Option<Arc<PlanCache>>,
    ) -> Result<Self, ServiceError> {
        config.validate()?;
        let (ingress_tx, ingress_rx) = bounded::<Tagged>(config.queue_capacity);
        let sched = Arc::new(WfqScheduler::new(
            config.tenants.iter().map(|t| (t.tenant, t.weight)),
        ));
        let (parked_tx, parked_rx) = unbounded::<CohortActor>();
        let shared = Arc::new(Shared {
            suspended: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            opened: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            reports: Mutex::new(Vec::new()),
        });

        // Threads are named so each telemetry lane (and its Chrome-trace
        // row) identifies its role without cross-referencing thread ids.
        let batcher = {
            let engine = engine.clone();
            let config = config.clone();
            let sched = Arc::clone(&sched);
            let shared = Arc::clone(&shared);
            let cache = cache.clone();
            thread::Builder::new()
                .name("svc-batcher".to_string())
                .spawn(move || batcher_loop(engine, config, ingress_rx, sched, shared, cache))
                .expect("spawn batcher thread")
        };

        let workers = (0..config.workers)
            .map(|i| {
                let engine = engine.clone();
                let config = config.clone();
                let sched = Arc::clone(&sched);
                let parked_tx = parked_tx.clone();
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("svc-worker-{i}"))
                    .spawn(move || worker_loop(engine, config, sched, parked_tx, shared))
                    .expect("spawn worker thread")
            })
            .collect();

        let plan_baseline = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        Ok(SurveillanceService {
            engine,
            config,
            ingress_tx: Some(ingress_tx),
            sched,
            parked_rx,
            shared,
            batcher: Some(batcher),
            workers,
            plan_cache: cache,
            plan_baseline,
        })
    }

    /// Start a service and rehydrate the cohorts of a [`ServiceCheckpoint`]:
    /// completed reports are carried over and live cohorts re-enter the
    /// round-robin exactly where they stopped.
    pub fn resume(
        engine: SharedEngine,
        config: ServiceConfig,
        checkpoint: ServiceCheckpoint,
    ) -> Result<Self, ServiceError> {
        let service = SurveillanceService::start(engine, config)?;
        // A tampered plan blob is a typed restore error, never a panic;
        // without a cache the warmed trees are simply dropped.
        if let Some(cache) = &service.plan_cache {
            if !checkpoint.plans.is_empty() {
                cache
                    .import(&checkpoint.plans)
                    .map_err(|e| ServiceError::Restore(e.to_string()))?;
            }
        }
        let restored = checkpoint.cohorts.len() as u64;
        let rec = service.engine.obs();
        let obs_start = rec
            .enabled_at(TraceLevel::Spans)
            .then(|| (rec.intern("service:restore"), rec.now_ns()));
        for ckpt in &checkpoint.cohorts {
            service.adopt_cohort(ckpt)?;
        }
        {
            let mut reports = service.shared.reports.lock();
            let carried = checkpoint.completed.len() as u64;
            reports.extend(checkpoint.completed);
            // Carried reports count as opened (and completed) too, so
            // drain's ledger of opened == reported stays balanced.
            service.shared.opened.fetch_add(carried, Ordering::SeqCst);
            service
                .shared
                .completed
                .fetch_add(carried, Ordering::SeqCst);
        }
        debug_assert_eq!(restored, checkpoint.cohorts.len() as u64);
        if let Some((name, start)) = obs_start {
            let rec = service.engine.obs();
            rec.record_span_ending_now(SpanKind::Service, name, start, SpanMeta::default());
        }
        Ok(service)
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Non-blocking submission with admission control: a full ingress
    /// queue sheds the specimen with a typed reason instead of stalling
    /// the caller or buffering without bound. Submits on the default
    /// tenant lane (0); see [`SurveillanceService::try_submit_tagged`].
    pub fn try_submit(&self, specimen: Specimen) -> Result<(), ServiceError> {
        self.try_submit_tagged(0, specimen)
    }

    /// [`SurveillanceService::try_submit`] on a tenant's QoS lane.
    /// Admission control runs three gates, each a typed shed: the service
    /// is draining for handoff ([`ShedReason::Draining`]), the tenant's
    /// p99 round latency exceeds its configured SLO
    /// ([`ShedReason::SloExceeded`]), or the bounded ingress queue is full
    /// ([`ShedReason::QueueFull`]).
    pub fn try_submit_tagged(&self, tenant: u32, specimen: Specimen) -> Result<(), ServiceError> {
        let Some(tx) = &self.ingress_tx else {
            return Err(ServiceError::Closed);
        };
        if self.shared.draining.load(Ordering::SeqCst) {
            return Err(self.shed(ShedReason::Draining));
        }
        if let Some(slo) = self.config.tenant_slo(tenant) {
            let p99 = self
                .engine
                .metrics()
                .tenant_latency_percentile(tenant, 0.99);
            if p99.is_some_and(|p| p > slo) {
                // The budget-exhaustion event leads the admission-control
                // response in the trace: record the typed alert before the
                // shed so burn-rate spikes explain the SloExceeded wave.
                if let Some(alert) = BurnRateAlert::evaluate(self.engine.metrics(), tenant) {
                    let rec = self.engine.obs();
                    if rec.enabled_at(TraceLevel::Full) {
                        let meta = SpanMeta {
                            task: alert.tenant,
                            ..SpanMeta::default()
                        };
                        rec.mark_value(rec.intern(BURN_ALERT_MARK), alert.burn_milli, meta);
                    }
                }
                return Err(self.shed(ShedReason::SloExceeded));
            }
        }
        match tx.try_send(Tagged { tenant, specimen }) {
            Ok(()) => {
                let depth = tx.len();
                self.engine.metrics().update_service(|s| {
                    s.submitted += 1;
                    s.observe_queue_depth(depth);
                });
                self.obs_queue_depth(depth);
                Ok(())
            }
            Err(e) if e.is_full() => Err(self.shed(ShedReason::QueueFull)),
            Err(_) => Err(ServiceError::Closed),
        }
    }

    /// Count and mark a shed, returning the typed error to hand the
    /// caller.
    fn shed(&self, reason: ShedReason) -> ServiceError {
        self.engine.metrics().update_service(|s| {
            s.shed += 1;
            match reason {
                ShedReason::SloExceeded => s.shed_slo += 1,
                ShedReason::Draining => s.shed_draining += 1,
                _ => {}
            }
        });
        let rec = self.engine.obs();
        if rec.enabled_at(TraceLevel::Full) {
            rec.mark(rec.intern("service:shed"), SpanMeta::default());
        }
        ServiceError::Shed(reason)
    }

    /// Emit the ingress depth as a counter track ([`TraceLevel::Full`]):
    /// the Chrome trace then plots queue pressure against the round lanes.
    fn obs_queue_depth(&self, depth: usize) {
        let rec = self.engine.obs();
        if rec.enabled_at(TraceLevel::Full) {
            rec.counter(rec.intern("queue_depth"), depth as u64);
        }
    }

    /// Blocking submission: waits for queue space instead of shedding
    /// (draining still sheds — handoff must converge, so it is never
    /// waited out). Submits on the default tenant lane (0).
    pub fn submit(&self, specimen: Specimen) -> Result<(), ServiceError> {
        self.submit_tagged(0, specimen)
    }

    /// [`SurveillanceService::submit`] on a tenant's QoS lane.
    pub fn submit_tagged(&self, tenant: u32, specimen: Specimen) -> Result<(), ServiceError> {
        let Some(tx) = &self.ingress_tx else {
            return Err(ServiceError::Closed);
        };
        if self.shared.draining.load(Ordering::SeqCst) {
            return Err(self.shed(ShedReason::Draining));
        }
        tx.send(Tagged { tenant, specimen })
            .map_err(|_| ServiceError::Closed)?;
        let depth = tx.len();
        self.engine.metrics().update_service(|s| {
            s.submitted += 1;
            s.observe_queue_depth(depth);
        });
        self.obs_queue_depth(depth);
        Ok(())
    }

    /// Open a pre-batched cohort directly, bypassing the ingress batcher —
    /// the shard-fabric placement path, where a router assigns globally
    /// unique cohort ids and consistent-hashes them onto shards. Subject
    /// to the same admission control as batched traffic: sheds typed when
    /// draining or when the live-cohort cap is reached. Do not mix with
    /// specimen-level submission on the same service: the batcher
    /// allocates ids from its own sequence and they would collide.
    pub fn place_cohort(&self, spec: CohortSpec) -> Result<(), ServiceError> {
        if self.ingress_tx.is_none() {
            return Err(ServiceError::Closed);
        }
        if self.shared.draining.load(Ordering::SeqCst) {
            return Err(self.shed(ShedReason::Draining));
        }
        if self.shared.opened.load(Ordering::SeqCst) - self.shared.completed()
            >= self.config.max_live_cohorts as u64
        {
            return Err(self.shed(ShedReason::QueueFull));
        }
        let subjects = spec.n_subjects() as u64;
        let tenant = spec.tenant;
        let mut actor = CohortActor::new_recovering(
            &self.engine,
            spec,
            self.config.model,
            self.config.session,
            self.config.policy(),
            self.config.max_recoveries,
        );
        if let Some(cache) = &self.plan_cache {
            actor.attach_plan_cache(cache);
        }
        let creation_recoveries = actor.recoveries();
        self.shared.opened.fetch_add(1, Ordering::SeqCst);
        self.engine.metrics().update_service(|s| {
            s.submitted += subjects;
            s.batches += 1;
            s.cohorts_opened += 1;
            s.recovered_rounds += creation_recoveries;
        });
        self.sched.push(tenant, Box::new(actor));
        Ok(())
    }

    /// Adopt a frozen cohort from another shard (the receiving side of a
    /// drain/handoff): restore its actor bit-for-bit and enqueue it on its
    /// tenant's lane. The checkpoint codec guarantees the migrated cohort
    /// continues exactly where it stopped, so migration cannot change any
    /// report.
    pub fn adopt_cohort(&self, checkpoint: &CohortCheckpoint) -> Result<(), ServiceError> {
        let mut actor = CohortActor::restore(
            checkpoint,
            self.config.model,
            self.config.session,
            self.config.policy(),
        )
        .map_err(|e| ServiceError::Restore(e.to_string()))?;
        if let Some(cache) = &self.plan_cache {
            actor.attach_plan_cache(cache);
        }
        let tenant = actor.spec().tenant;
        self.shared.opened.fetch_add(1, Ordering::SeqCst);
        self.engine.metrics().update_service(|s| s.restores += 1);
        self.sched.push(tenant, Box::new(actor));
        Ok(())
    }

    /// Stop admitting traffic (subsequent submissions shed with
    /// [`ShedReason::Draining`]) while queued work keeps running — the
    /// first step of a shard handoff, ahead of
    /// [`SurveillanceService::suspend`].
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether [`SurveillanceService::begin_drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Hand out the reports completed so far and clear the buffer — the
    /// long-running server's poll path, where nobody ever calls
    /// [`SurveillanceService::drain`]. Reports are sorted by cohort id;
    /// the drain/suspend ledgers are unaffected.
    pub fn take_completed(&self) -> Vec<CohortReport> {
        let mut reports = std::mem::take(&mut *self.shared.reports.lock());
        reports.sort_by_key(|r| r.cohort);
        reports
    }

    /// Cohorts opened but not yet classified.
    pub fn live_cohorts(&self) -> u64 {
        self.shared.opened.load(Ordering::SeqCst) - self.shared.completed()
    }

    /// Close ingress, flush the batcher, run every cohort to
    /// classification, stop the workers, and return all reports sorted by
    /// cohort id.
    pub fn drain(mut self) -> Vec<CohortReport> {
        self.close_ingress_and_flush();
        let expected = self.shared.opened.load(Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(120);
        while self.shared.completed() < expected {
            assert!(
                Instant::now() < deadline,
                "drain stalled: {}/{expected} cohorts classified",
                self.shared.completed()
            );
            thread::sleep(Duration::from_millis(1));
        }
        self.stop_workers();
        self.flush_plan_stats();
        let mut reports = std::mem::take(&mut *self.shared.reports.lock());
        reports.sort_by_key(|r| r.cohort);
        // Counter-consistency ledger: with ingress closed and the wait
        // above done, live == 0, so completed must equal opened — every
        // admitted specimen is in exactly one report (some of which the
        // embedder may already hold via `take_completed`).
        debug_assert_eq!(
            self.shared.completed(),
            expected,
            "drain ledger: completed + live != opened"
        );
        reports
    }

    /// Stop at the next round boundary: flush ingress into cohorts, park
    /// every live cohort, and freeze each into a checkpoint. The result
    /// (with the already-completed reports) restores via
    /// [`SurveillanceService::resume`] with bit-for-bit continuation.
    pub fn suspend(mut self) -> ServiceCheckpoint {
        let rec = Arc::clone(self.engine.obs());
        let obs_start = rec
            .enabled_at(TraceLevel::Spans)
            .then(|| (rec.intern("service:checkpoint"), rec.now_ns()));
        self.close_ingress_and_flush();
        self.shared.suspended.store(true, Ordering::SeqCst);
        let expected = self.shared.opened.load(Ordering::SeqCst);
        let mut parked: Vec<CohortActor> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(120);
        while self.shared.completed() + (parked.len() as u64) < expected {
            assert!(
                Instant::now() < deadline,
                "suspend stalled: {} done + {} parked of {expected}",
                self.shared.completed(),
                parked.len()
            );
            match self.parked_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(actor) => parked.push(actor),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.stop_workers();
        self.flush_plan_stats();
        parked.sort_by_key(|a| a.spec().id);
        let cohorts: Vec<CohortCheckpoint> = parked.iter().map(CohortActor::checkpoint).collect();
        self.engine.metrics().update_service(|s| {
            s.checkpoints += cohorts.len() as u64;
        });
        let plans = self
            .plan_cache
            .as_ref()
            .map(|c| c.export())
            .unwrap_or_default();
        let mut completed = std::mem::take(&mut *self.shared.reports.lock());
        completed.sort_by_key(|r| r.cohort);
        if let Some((name, start)) = obs_start {
            rec.record_span_ending_now(SpanKind::Service, name, start, SpanMeta::default());
        }
        ServiceCheckpoint {
            completed,
            cohorts,
            plans,
        }
    }

    /// Fold this incarnation's plan-cache activity (delta against the
    /// start-time baseline; the cache may be shared) into `ServiceStats`.
    fn flush_plan_stats(&self) {
        let Some(cache) = &self.plan_cache else {
            return;
        };
        let now = cache.stats();
        let base = self.plan_baseline;
        self.engine.metrics().update_service(|s| {
            s.plan_hits += now.hits - base.hits;
            s.plan_misses += now.misses - base.misses;
            s.plan_extends += now.extends - base.extends;
            s.plan_evictions += now.evictions - base.evictions;
        });
    }

    fn close_ingress_and_flush(&mut self) {
        drop(self.ingress_tx.take());
        if let Some(batcher) = self.batcher.take() {
            batcher.join().expect("batcher thread panicked");
        }
    }

    fn stop_workers(&mut self) {
        self.sched.close();
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread panicked");
        }
    }
}

impl Drop for SurveillanceService {
    fn drop(&mut self) {
        // Abandoned without drain/suspend (e.g. a test assertion failed):
        // shut the threads down instead of leaking them.
        drop(self.ingress_tx.take());
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        if !self.workers.is_empty() {
            self.shared.suspended.store(true, Ordering::SeqCst);
            self.sched.close();
            for worker in self.workers.drain(..) {
                let _ = worker.join();
            }
        }
    }
}

/// One tenant's open (not yet sealed) batch in the batcher.
struct OpenBatch {
    specimens: Vec<Specimen>,
    /// Seal-by time: `batch_deadline` after the first specimen arrived.
    deadline: Instant,
}

/// Batcher: group ingress specimens into per-tenant cohorts, closing a
/// batch on size or on `batch_deadline` after its first specimen. Each
/// tenant accumulates independently — a trickle from lab A never delays
/// a burst from lab B, and a cohort only ever contains one tenant's
/// specimens (the unit the WFQ lanes schedule). Holds new cohorts while
/// the live count is at `max_live_cohorts`, back-pressuring the bounded
/// ingress queue (which then sheds at `try_submit`).
fn batcher_loop(
    engine: SharedEngine,
    config: ServiceConfig,
    ingress_rx: Receiver<Tagged>,
    sched: Arc<WfqScheduler<Box<CohortActor>>>,
    shared: Arc<Shared>,
    cache: Option<Arc<PlanCache>>,
) {
    let mut open: std::collections::BTreeMap<u32, OpenBatch> = std::collections::BTreeMap::new();
    loop {
        // Sleep until the next message or the earliest open deadline.
        let next_deadline = open.values().map(|b| b.deadline).min();
        let message = match next_deadline {
            None => ingress_rx
                .recv()
                .map_err(|_| RecvTimeoutError::Disconnected),
            Some(d) => ingress_rx.recv_timeout(d.saturating_duration_since(Instant::now())),
        };
        match message {
            Ok(Tagged { tenant, specimen }) => {
                let batch = open.entry(tenant).or_insert_with(|| OpenBatch {
                    specimens: Vec::new(),
                    deadline: Instant::now() + config.batch_deadline,
                });
                batch.specimens.push(specimen);
                if batch.specimens.len() >= config.batch_size {
                    let mut batch = open.remove(&tenant).expect("batch just inserted");
                    flush_batch(
                        &engine,
                        &config,
                        tenant,
                        &mut batch.specimens,
                        &sched,
                        &shared,
                        &cache,
                    );
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // Seal every batch whose deadline has passed (clock reads
                // can land slightly before the stored deadline).
                let now = Instant::now();
                let due: Vec<u32> = open
                    .iter()
                    .filter(|(_, b)| b.deadline <= now)
                    .map(|(&t, _)| t)
                    .collect();
                for tenant in due {
                    let mut batch = open.remove(&tenant).expect("due batch exists");
                    flush_batch(
                        &engine,
                        &config,
                        tenant,
                        &mut batch.specimens,
                        &sched,
                        &shared,
                        &cache,
                    );
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Ingress closed: seal everything still open and exit.
                for (tenant, mut batch) in std::mem::take(&mut open) {
                    flush_batch(
                        &engine,
                        &config,
                        tenant,
                        &mut batch.specimens,
                        &sched,
                        &shared,
                        &cache,
                    );
                }
                return;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn flush_batch(
    engine: &SharedEngine,
    config: &ServiceConfig,
    tenant: u32,
    batch: &mut Vec<Specimen>,
    sched: &WfqScheduler<Box<CohortActor>>,
    shared: &Shared,
    cache: &Option<Arc<PlanCache>>,
) {
    if batch.is_empty() {
        return;
    }
    // Admission control, stage two: cap concurrently-live cohorts so the
    // engine's working set stays bounded; ingress backs up (and sheds)
    // while we wait. A suspension lifts the wait — the cohort opens and is
    // immediately parked, so its specimens survive in the checkpoint.
    while shared.opened.load(Ordering::SeqCst) - shared.completed()
        >= config.max_live_cohorts as u64
        && !shared.suspended.load(Ordering::SeqCst)
    {
        thread::sleep(Duration::from_millis(1));
    }
    let id = shared.opened.fetch_add(1, Ordering::SeqCst);
    let rec = engine.obs();
    let obs_start = rec
        .enabled_at(TraceLevel::Spans)
        .then(|| (rec.intern("service:batch-seal"), rec.now_ns()));
    let spec = CohortSpec::from_specimens(id, config.base_seed, batch).with_tenant(tenant);
    batch.clear();
    let mut actor = CohortActor::new_recovering(
        engine,
        spec,
        config.model,
        config.session,
        config.policy(),
        config.max_recoveries,
    );
    if let Some(cache) = cache {
        actor.attach_plan_cache(cache);
    }
    let creation_recoveries = actor.recoveries();
    engine.metrics().update_service(|s| {
        s.batches += 1;
        s.cohorts_opened += 1;
        s.recovered_rounds += creation_recoveries;
    });
    // The seal span covers prior construction too (it may itself run
    // engine stages), so cohort startup cost is visible per cohort.
    if let Some((name, start)) = obs_start {
        rec.record_span_ending_now(SpanKind::Service, name, start, SpanMeta::for_cohort(id));
    }
    if rec.enabled_at(TraceLevel::Full) {
        let live = shared.opened.load(Ordering::SeqCst) - shared.completed();
        rec.counter(rec.intern("live_cohorts"), live);
    }
    sched.push(tenant, Box::new(actor));
}

/// Worker: pull the next cohort from the weighted-fair ready queue, run
/// one round, requeue or report. The scheduler hands out rounds in
/// proportion to tenant weights; within a lane cohorts round-robin.
fn worker_loop(
    engine: SharedEngine,
    config: ServiceConfig,
    sched: Arc<WfqScheduler<Box<CohortActor>>>,
    parked_tx: Sender<CohortActor>,
    shared: Arc<Shared>,
) {
    while let Some(mut actor) = sched.pop() {
        if shared.suspended.load(Ordering::SeqCst) {
            let _ = parked_tx.send(*actor);
            continue;
        }
        let tenant = actor.spec().tenant;
        let slo = config.tenant_slo(tenant);
        let rec = engine.obs();
        let obs_start = rec
            .enabled_at(TraceLevel::Spans)
            .then(|| (rec.intern("service:round"), rec.now_ns()));
        let start = Instant::now();
        let run = actor.run_round_recovering(&engine, config.max_recoveries);
        let elapsed = start.elapsed();
        if let Some((name, start_ns)) = obs_start {
            rec.record_span_ending_now(
                SpanKind::Service,
                name,
                start_ns,
                SpanMeta::for_cohort(actor.spec().id),
            );
        }
        engine.metrics().update_service(|s| {
            s.record_round(elapsed);
            s.record_tenant_round(tenant, elapsed, slo);
            s.recovered_rounds += run.recovered;
        });
        match run.step {
            RoundStep::Finished(outcome) => {
                engine
                    .metrics()
                    .update_service(|s| s.cohorts_completed += 1);
                // Report before the counter bump: drain treats
                // `completed == opened` as "all reports present".
                shared.reports.lock().push(CohortReport {
                    cohort: actor.spec().id,
                    tenant,
                    subjects: actor.spec().n_subjects(),
                    recovered_rounds: actor.recoveries(),
                    outcome,
                });
                shared.completed.fetch_add(1, Ordering::SeqCst);
                if rec.enabled_at(TraceLevel::Full) {
                    let live = shared.opened.load(Ordering::SeqCst) - shared.completed();
                    rec.counter(rec.intern("live_cohorts"), live);
                }
            }
            RoundStep::Progressed => {
                sched.push(tenant, actor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::{batch_specimens, run_cohort_serial};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sbgt_engine::EngineConfig;

    fn shared_engine() -> SharedEngine {
        SharedEngine::new(EngineConfig::default().with_threads(2))
    }

    fn specimens(n: usize, seed: u64) -> Vec<Specimen> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let risk = 0.01 + rng.random::<f64>() * 0.12;
                Specimen {
                    risk,
                    infected: rng.random_bool(risk),
                }
            })
            .collect()
    }

    fn quick_config() -> ServiceConfig {
        ServiceConfig {
            workers: 3,
            batch_size: 6,
            // Long deadline: only the size trigger and the close-time
            // flush form batches, so boundaries match `batch_specimens`
            // regardless of scheduler timing.
            batch_deadline: Duration::from_secs(5),
            dense_threshold: 5,
            parts: 3,
            base_seed: 77,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn service_matches_serial_reference_bit_for_bit() {
        let engine = shared_engine();
        let config = quick_config();
        let sp = specimens(64, 5);

        let service = SurveillanceService::start(engine.clone(), config.clone()).unwrap();
        for s in &sp {
            service.submit(*s).unwrap();
        }
        let reports = service.drain();

        let specs = batch_specimens(&sp, config.batch_size, config.base_seed);
        assert_eq!(reports.len(), specs.len());
        for (report, spec) in reports.iter().zip(&specs) {
            let serial =
                run_cohort_serial(&engine, spec, config.model, config.session, config.policy());
            assert_eq!(report.cohort, spec.id);
            assert_eq!(report.outcome, serial);
            for (a, b) in report.outcome.marginals.iter().zip(&serial.marginals) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let stats = engine.metrics().service_stats();
        assert_eq!(stats.submitted, 64);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.cohorts_completed, stats.cohorts_opened);
        assert!(stats.rounds > 0);
    }

    #[test]
    fn full_queue_sheds_with_typed_reason() {
        let engine = shared_engine();
        // One worker, tiny queue, and a live-cohort cap of one: the
        // batcher back-pressures, so the queue genuinely fills.
        let config = ServiceConfig {
            workers: 1,
            queue_capacity: 4,
            batch_size: 4,
            max_live_cohorts: 1,
            dense_threshold: 0,
            parts: 2,
            base_seed: 3,
            ..ServiceConfig::default()
        };
        let service = SurveillanceService::start(engine.clone(), config).unwrap();
        let sp = specimens(64, 8);
        let mut shed = 0usize;
        for s in &sp {
            match service.try_submit(*s) {
                Ok(()) => {}
                Err(ServiceError::Shed(ShedReason::QueueFull)) => shed += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        let reports = service.drain();
        let stats = engine.metrics().service_stats();
        assert_eq!(stats.shed as usize, shed);
        assert_eq!(stats.submitted as usize, 64 - shed);
        // Everything accepted was classified; nothing leaked.
        let classified: usize = reports.iter().map(|r| r.subjects).sum();
        assert_eq!(classified, 64 - shed);
        assert!(shed > 0, "tiny queue under burst load must shed");
    }

    #[test]
    fn deadline_flushes_partial_batches() {
        let engine = shared_engine();
        let config = ServiceConfig {
            batch_size: 16,
            batch_deadline: Duration::from_millis(10),
            dense_threshold: 32,
            base_seed: 1,
            ..ServiceConfig::default()
        };
        let service = SurveillanceService::start(engine.clone(), config).unwrap();
        for s in specimens(3, 2) {
            service.submit(s).unwrap();
        }
        // Far below batch_size: only the deadline can open this cohort.
        // Wait for the deadline flush *before* closing ingress, so drain's
        // own flush-on-close cannot be what formed the batch.
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.metrics().service_stats().cohorts_opened == 0 {
            assert!(Instant::now() < deadline, "deadline flush never fired");
            thread::sleep(Duration::from_millis(2));
        }
        let reports = service.drain();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].subjects, 3);
    }

    #[test]
    fn traced_service_run_exports_a_valid_chrome_trace() {
        use sbgt_engine::obs::{render_chrome_trace, validate_chrome_trace, ObsConfig};
        let engine = SharedEngine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_obs(ObsConfig::full()),
        );
        let config = quick_config();
        let service = SurveillanceService::start(engine.clone(), config).unwrap();
        for s in specimens(24, 13) {
            service.submit(s).unwrap();
        }
        let reports = service.drain();
        assert!(!reports.is_empty());

        let rec = engine.obs();
        let snap = rec.snapshot();
        let events: Vec<_> = snap.all_events().collect();
        // The whole service pipeline shows up: batch seals and rounds
        // (service layer), session rounds, and engine stage spans — all
        // tagged with real cohort ids where applicable.
        for name in ["service:batch-seal", "service:round", "session:round"] {
            assert!(
                events.iter().any(|e| rec.name_of(e.name) == name),
                "missing {name} span"
            );
        }
        let round_cohorts: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| rec.name_of(e.name) == "service:round")
            .map(|e| e.meta.cohort)
            .collect();
        assert_eq!(
            round_cohorts.len(),
            reports.len(),
            "every cohort's rounds are tagged with its id"
        );
        assert!(
            events
                .iter()
                .any(|e| rec.name_of(e.name) == "queue_depth" && e.kind == SpanKind::Counter),
            "Full level plots ingress depth"
        );
        // Lanes carry the service thread names into the trace.
        assert!(snap.lanes.iter().any(|l| l.name == "svc-batcher"));
        assert!(snap.lanes.iter().any(|l| l.name.starts_with("svc-worker-")));
        // And the export is a valid, loadable Chrome trace.
        let trace = render_chrome_trace(rec);
        let summary = validate_chrome_trace(&trace).expect("trace must validate");
        assert!(summary.spans > 0);
        assert!(summary.counters > 0);
    }

    #[test]
    fn shared_plan_cache_replays_across_cohorts_bit_for_bit() {
        let engine = shared_engine();
        // One shared risk band: every cohort quantizes to the same risk
        // vector, so all of them share a single memoized decision tree.
        let config = ServiceConfig {
            workers: 3,
            batch_size: 8,
            batch_deadline: Duration::from_secs(5),
            dense_threshold: 9,
            plan_cache_nodes: 512,
            plan_risk_buckets: 16,
            session: sbgt::SbgtConfig::default().with_stage_width(2),
            base_seed: 4242,
            ..ServiceConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(31);
        let sp: Vec<Specimen> = (0..64)
            .map(|_| Specimen {
                risk: 0.05,
                infected: rng.random_bool(0.05),
            })
            .collect();

        let service = SurveillanceService::start(engine.clone(), config.clone()).unwrap();
        assert!(service.plan_cache.is_some());
        for s in &sp {
            service.submit(*s).unwrap();
        }
        let reports = service.drain();

        // Replayed selections must be indistinguishable from live ones:
        // the serial reference runs the same policy (same quantized
        // priors) with no cache attached.
        let specs = batch_specimens(&sp, config.batch_size, config.base_seed);
        assert_eq!(reports.len(), specs.len());
        for (report, spec) in reports.iter().zip(&specs) {
            let serial =
                run_cohort_serial(&engine, spec, config.model, config.session, config.policy());
            assert_eq!(report.outcome, serial);
            for (a, b) in report.outcome.marginals.iter().zip(&serial.marginals) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let stats = engine.metrics().service_stats();
        assert!(
            stats.plan_hits > 0,
            "shared-key cohorts must replay memoized selections"
        );
        assert!(stats.plan_extends > 0, "misses must extend the tree");
    }

    #[test]
    fn suspend_resume_continues_bit_for_bit() {
        let engine = shared_engine();
        let config = quick_config();
        let sp = specimens(48, 21);

        // Reference: uninterrupted serial run over the same batches.
        let specs = batch_specimens(&sp, config.batch_size, config.base_seed);
        let serial: Vec<SessionOutcome> = specs
            .iter()
            .map(|spec| {
                run_cohort_serial(&engine, spec, config.model, config.session, config.policy())
            })
            .collect();

        let service = SurveillanceService::start(engine.clone(), config.clone()).unwrap();
        for s in &sp {
            service.submit(*s).unwrap();
        }
        // Let some rounds happen, then freeze mid-run.
        thread::sleep(Duration::from_millis(5));
        let checkpoint = service.suspend();
        assert_eq!(
            checkpoint.completed.len() + checkpoint.cohorts.len(),
            specs.len(),
            "every cohort is either completed or checkpointed"
        );

        // Round-trip each cohort checkpoint through its byte codec, as an
        // eviction to cold storage would.
        let rehydrated = ServiceCheckpoint {
            completed: checkpoint.completed.clone(),
            cohorts: checkpoint
                .cohorts
                .iter()
                .map(|c| CohortCheckpoint::from_bytes(&c.to_bytes()).unwrap())
                .collect(),
            plans: checkpoint.plans.clone(),
        };

        let resumed =
            SurveillanceService::resume(engine.clone(), config.clone(), rehydrated).unwrap();
        let reports = resumed.drain();
        assert_eq!(reports.len(), specs.len());
        for (report, expected) in reports.iter().zip(&serial) {
            assert_eq!(&report.outcome, expected);
            for (a, b) in report.outcome.marginals.iter().zip(&expected.marginals) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let stats = engine.metrics().service_stats();
        assert_eq!(stats.checkpoints, checkpoint.cohorts.len() as u64);
        assert_eq!(stats.restores, checkpoint.cohorts.len() as u64);
    }
}
