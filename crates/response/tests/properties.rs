//! Property tests for the response models: probability axioms, dilution
//! monotonicity, and graded/Boolean consistency.

use proptest::prelude::*;

use sbgt_response::{
    BinaryDilutionModel, BinaryOutcomeModel, CtOutcome, CtValueModel, Dilution, GaussianResponse,
    GradedBinaryModel, ResponseModel,
};

fn dilution_strategy() -> impl Strategy<Value = Dilution> {
    prop_oneof![
        Just(Dilution::None),
        Just(Dilution::Linear),
        (0.5f64..10.0).prop_map(|alpha| Dilution::Exponential { alpha }),
        ((0.5f64..4.0), (0.05f64..1.0)).prop_map(|(gamma, kappa)| Dilution::Hill { gamma, kappa }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Attenuation curves are valid: bounded, monotone in positives,
    /// anchored at 0 and 1.
    #[test]
    fn attenuation_axioms(d in dilution_strategy(), n in 1u32..40) {
        prop_assert_eq!(d.attenuation(0, n), 0.0);
        let full = d.attenuation(n, n);
        prop_assert!((full - 1.0).abs() < 1e-9);
        let mut prev = 0.0;
        for k in 0..=n {
            let v = d.attenuation(k, n);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    /// Binary model likelihoods are a distribution over outcomes for every
    /// (k, n), and single-positive detection decays with pool size.
    #[test]
    fn binary_model_axioms(
        sens in 0.5f64..1.0,
        spec in 0.5f64..1.0,
        d in dilution_strategy(),
        n in 1u32..32,
    ) {
        let m = BinaryDilutionModel::new(sens, spec, d);
        for k in 0..=n {
            let s = m.likelihood(true, k, n) + m.likelihood(false, k, n);
            prop_assert!((s - 1.0).abs() < 1e-12);
        }
        if n >= 2 {
            prop_assert!(m.positive_prob(1, n) <= m.positive_prob(1, 1) + 1e-12);
        }
        prop_assert!((m.base_sensitivity() - sens).abs() < 1e-12);
        prop_assert!((m.specificity() - spec).abs() < 1e-12);
    }

    /// Graded model reduces to the Boolean model on 0/1 levels.
    #[test]
    fn graded_reduces_to_boolean(
        sens in 0.5f64..1.0,
        spec in 0.5f64..1.0,
        d in dilution_strategy(),
        n in 1u32..20,
    ) {
        let graded = GradedBinaryModel::new(sens, spec, d);
        let boolean = BinaryDilutionModel::new(sens, spec, d);
        for k in 0..=n {
            prop_assert!(
                (graded.positive_prob(k, n) - boolean.positive_prob(k, n)).abs() < 1e-12
            );
        }
    }

    /// Gaussian response density is positive, finite, and peaks at the
    /// conditional mean.
    #[test]
    fn gaussian_density_axioms(
        mu_pos in 1.0f64..30.0,
        slope in 0.0f64..3.0,
        sigma in 0.2f64..4.0,
        k in 1u32..8,
        n in 8u32..9,
    ) {
        let m = GaussianResponse::new(0.0, mu_pos, slope, sigma);
        let mean = m.mean(k, n);
        let at_mean = m.likelihood(mean, k, n);
        prop_assert!(at_mean.is_finite() && at_mean > 0.0);
        prop_assert!(at_mean >= m.likelihood(mean + sigma, k, n));
        prop_assert!(at_mean >= m.likelihood(mean - sigma, k, n));
    }

    /// Ct model outcome space integrates to one (mass + density) and the
    /// censored probability complements detection.
    #[test]
    fn ct_model_axioms(k in 0u32..6, n in 6u32..7) {
        let m = CtValueModel::pcr_like();
        let censored = m.likelihood(CtOutcome::NotDetected, k, n);
        prop_assert!((censored - (1.0 - m.detect_prob(k, n))).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&censored));
        // Detected densities are non-negative and finite.
        for ct in [10.0, 20.0, 30.0, 40.0] {
            let v = m.likelihood(CtOutcome::Detected(ct), k, n);
            prop_assert!(v.is_finite() && v >= 0.0);
        }
    }

    /// Likelihood tables always have pool_size + 1 entries matching the
    /// pointwise likelihoods.
    #[test]
    fn tables_match_pointwise(
        d in dilution_strategy(),
        n in 1u32..24,
        outcome in any::<bool>(),
    ) {
        let m = BinaryDilutionModel::new(0.9, 0.95, d);
        let t = m.likelihood_table(outcome, n);
        prop_assert_eq!(t.len(), n as usize + 1);
        for (k, &v) in t.iter().enumerate() {
            prop_assert_eq!(v, m.likelihood(outcome, k as u32, n));
        }
    }
}
