//! The response-model abstraction.

use rand::Rng;

/// A probabilistic model of a pooled test's outcome.
///
/// The outcome distribution may depend on the state hypothesis only through
/// `positives = |s ∩ A|` and `pool_size = |A|` — the conditional
/// independence assumption of the lattice framework. This is exactly what
/// makes the lattice update cheap: a single observed outcome induces a
/// likelihood **table** of `pool_size + 1` values, and the `2^N` update
/// indexes that table by popcount.
pub trait ResponseModel {
    /// The observable outcome type (e.g. `bool` for a binary assay, `f64`
    /// for a continuous signal).
    type Outcome: Copy + PartialEq + std::fmt::Debug;

    /// Likelihood (probability or density) of `outcome` given `positives`
    /// positive samples in a pool of `pool_size`.
    ///
    /// Must be finite and non-negative for `0 <= positives <= pool_size`,
    /// `pool_size >= 1`.
    fn likelihood(&self, outcome: Self::Outcome, positives: u32, pool_size: u32) -> f64;

    /// The likelihood table `[f(y|0,n), f(y|1,n), .., f(y|n,n)]` consumed by
    /// the lattice multiply kernels.
    fn likelihood_table(&self, outcome: Self::Outcome, pool_size: u32) -> Vec<f64> {
        (0..=pool_size)
            .map(|k| self.likelihood(outcome, k, pool_size))
            .collect()
    }

    /// Draw an outcome for a pool with `positives` of `pool_size` samples
    /// truly positive (used by the simulation substrate).
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, positives: u32, pool_size: u32)
        -> Self::Outcome;
}

/// Extra structure available when outcomes are binary: the full outcome
/// distribution is determined by one probability per `(k, n)`, which is what
/// the look-ahead selection rules branch on.
pub trait BinaryOutcomeModel: ResponseModel<Outcome = bool> {
    /// `P(test reads positive | k positives in a pool of n)`.
    fn positive_prob(&self, positives: u32, pool_size: u32) -> f64;

    /// Test sensitivity for a neat (undiluted) single sample.
    fn base_sensitivity(&self) -> f64 {
        self.positive_prob(1, 1)
    }

    /// Test specificity (one minus the false-positive probability).
    fn specificity(&self) -> f64 {
        1.0 - self.positive_prob(0, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A perfect test, for exercising the default methods.
    struct Perfect;

    impl ResponseModel for Perfect {
        type Outcome = bool;

        fn likelihood(&self, outcome: bool, positives: u32, _pool_size: u32) -> f64 {
            let positive_pool = positives > 0;
            if outcome == positive_pool {
                1.0
            } else {
                0.0
            }
        }

        fn sample<R: Rng + ?Sized>(&self, _rng: &mut R, positives: u32, _n: u32) -> bool {
            positives > 0
        }
    }

    impl BinaryOutcomeModel for Perfect {
        fn positive_prob(&self, positives: u32, _pool_size: u32) -> f64 {
            if positives > 0 {
                1.0
            } else {
                0.0
            }
        }
    }

    #[test]
    fn default_table_enumerates_k() {
        let t = Perfect.likelihood_table(true, 3);
        assert_eq!(t, vec![0.0, 1.0, 1.0, 1.0]);
        let t = Perfect.likelihood_table(false, 3);
        assert_eq!(t, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn default_sensitivity_specificity() {
        assert_eq!(Perfect.base_sensitivity(), 1.0);
        assert_eq!(Perfect.specificity(), 1.0);
    }

    #[test]
    fn sample_is_deterministic_for_perfect_test() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Perfect.sample(&mut rng, 2, 4));
        assert!(!Perfect.sample(&mut rng, 0, 4));
    }
}
