//! Continuous-outcome response models.
//!
//! qPCR assays report a cycle-threshold (Ct) value — effectively a noisy
//! log-concentration measurement — rather than a hard positive/negative
//! call. The Biostatistics paper's framework accepts such general response
//! distributions directly: the Bayesian update only needs densities
//! `f(y | k, n)`. We model the negated-and-shifted signal as Gaussian:
//!
//! * `k = 0`: `y ~ N(mu_neg, sigma²)` (background noise);
//! * `k ≥ 1`: `y ~ N(mu_pos + slope · log2(k/n), sigma²)` — each
//!   two-fold dilution of the positive fraction shifts the mean by `slope`
//!   (for real PCR, one cycle per two-fold dilution).

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::model::ResponseModel;

/// Gaussian continuous-response model with log2-dilution mean shift.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianResponse {
    /// Mean signal of a negative pool.
    pub mu_neg: f64,
    /// Mean signal of an undiluted fully-positive pool.
    pub mu_pos: f64,
    /// Signal shift per two-fold dilution (positive: dilution lowers the
    /// signal toward `mu_neg`).
    pub slope: f64,
    /// Common standard deviation, `> 0`.
    pub sigma: f64,
}

impl GaussianResponse {
    /// Construct with validation.
    ///
    /// # Panics
    /// Panics when `sigma <= 0`, the slope is negative, or the positive mean
    /// does not exceed the negative mean (the assay must have some signal).
    pub fn new(mu_neg: f64, mu_pos: f64, slope: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        assert!(slope >= 0.0, "slope must be non-negative");
        assert!(mu_pos > mu_neg, "positive mean must exceed negative mean");
        GaussianResponse {
            mu_neg,
            mu_pos,
            slope,
            sigma,
        }
    }

    /// A PCR-flavoured default: negatives at 0, neat positives at 12 units
    /// above background, one unit lost per two-fold dilution, unit noise.
    pub fn pcr_like() -> Self {
        GaussianResponse::new(0.0, 12.0, 1.0, 1.0)
    }

    /// Mean signal given `k` positives of `n`.
    pub fn mean(&self, positives: u32, pool_size: u32) -> f64 {
        if positives == 0 {
            self.mu_neg
        } else {
            let r = f64::from(positives) / f64::from(pool_size);
            self.mu_pos + self.slope * r.log2()
        }
    }

    fn density(&self, y: f64, mean: f64) -> f64 {
        let z = (y - mean) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }
}

impl ResponseModel for GaussianResponse {
    type Outcome = f64;

    fn likelihood(&self, outcome: f64, positives: u32, pool_size: u32) -> f64 {
        self.density(outcome, self.mean(positives, pool_size))
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, positives: u32, pool_size: u32) -> f64 {
        self.mean(positives, pool_size) + self.sigma * standard_normal(rng)
    }
}

/// Standard normal draw via Box–Muller (rand_distr is outside the allowed
/// dependency set; this keeps sampling self-contained).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn means_shift_with_dilution() {
        let m = GaussianResponse::pcr_like();
        assert_eq!(m.mean(0, 8), 0.0);
        assert_eq!(m.mean(8, 8), 12.0);
        // Half-positive pool: one slope unit below neat.
        assert!((m.mean(4, 8) - 11.0).abs() < 1e-12);
        // Single positive in 8: three two-fold dilutions.
        assert!((m.mean(1, 8) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn density_is_maximal_at_mean() {
        let m = GaussianResponse::pcr_like();
        let at_mean = m.likelihood(9.0, 1, 8);
        assert!(at_mean > m.likelihood(8.0, 1, 8));
        assert!(at_mean > m.likelihood(10.0, 1, 8));
    }

    #[test]
    fn density_integrates_to_one_numerically() {
        let m = GaussianResponse::pcr_like();
        let dx = 0.01;
        let integral: f64 = (-1000..3000)
            .map(|i| m.likelihood(i as f64 * dx, 2, 4) * dx)
            .sum();
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn table_has_expected_ordering() {
        // A strong signal observation should favor large k.
        let m = GaussianResponse::pcr_like();
        let t = m.likelihood_table(12.0, 4);
        assert_eq!(t.len(), 5);
        assert!(t[4] > t[1]);
        assert!(t[0] < t[1]);
        // A background-level observation favors k = 0.
        let t0 = m.likelihood_table(0.0, 4);
        assert!(t0[0] > t0[1]);
    }

    #[test]
    fn sampling_moments() {
        let m = GaussianResponse::pcr_like();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut rng, 2, 8)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - m.mean(2, 8)).abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn standard_normal_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40_000;
        let s: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = s.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        let inside = s.iter().filter(|x| x.abs() < 1.96).count() as f64 / n as f64;
        assert!((inside - 0.95).abs() < 0.01, "95% coverage {inside}");
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn validates_sigma() {
        let _ = GaussianResponse::new(0.0, 10.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive mean")]
    fn validates_signal() {
        let _ = GaussianResponse::new(5.0, 5.0, 1.0, 1.0);
    }
}
