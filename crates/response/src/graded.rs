//! Graded (multi-level) pooled assay for product-of-chains lattices.
//!
//! When subjects carry ordered infection levels (negative / low / high),
//! a pool's analyte content is the *total level* of its members, and the
//! detection probability depends on that total relative to the pool's
//! maximum possible content. This model adapts the binary dilution
//! machinery to graded states; its table form plugs directly into
//! `ChainPosterior::mul_likelihood_fused`.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::dilution::Dilution;

/// Binary-outcome assay over graded pooled content.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradedBinaryModel {
    /// Maximum sensitivity (content-saturated pool).
    pub sensitivity: f64,
    /// Specificity (zero-content pool).
    pub specificity: f64,
    /// Attenuation as a function of the content fraction.
    pub dilution: Dilution,
}

impl GradedBinaryModel {
    /// Construct with validation.
    ///
    /// # Panics
    /// Panics when sensitivity/specificity lie outside `(0, 1]`.
    pub fn new(sensitivity: f64, specificity: f64, dilution: Dilution) -> Self {
        assert!(sensitivity > 0.0 && sensitivity <= 1.0);
        assert!(specificity > 0.0 && specificity <= 1.0);
        GradedBinaryModel {
            sensitivity,
            specificity,
            dilution,
        }
    }

    /// PCR-like default matching [`crate::BinaryDilutionModel::pcr_like`].
    pub fn pcr_like() -> Self {
        GradedBinaryModel::new(0.99, 0.995, Dilution::Exponential { alpha: 4.0 })
    }

    /// `P(positive outcome | total_level of max_level in the pool)`.
    ///
    /// The attenuation is evaluated at the content fraction
    /// `total_level / max_level` through the same curves as the Boolean
    /// model (which is recovered when levels are 0/1 and `max_level` is the
    /// pool size).
    ///
    /// # Panics
    /// Panics when `max_level == 0` or `total_level > max_level`.
    pub fn positive_prob(&self, total_level: u32, max_level: u32) -> f64 {
        assert!(max_level >= 1, "pool must have positive capacity");
        assert!(total_level <= max_level);
        if total_level == 0 {
            1.0 - self.specificity
        } else {
            self.sensitivity * self.dilution.attenuation(total_level, max_level)
        }
    }

    /// Likelihood table over total levels `0..=max_level` for an observed
    /// binary outcome — the vector `ChainPosterior` updates with.
    pub fn likelihood_table(&self, outcome: bool, max_level: u32) -> Vec<f64> {
        (0..=max_level)
            .map(|t| {
                let p = self.positive_prob(t, max_level);
                if outcome {
                    p
                } else {
                    1.0 - p
                }
            })
            .collect()
    }

    /// Sample an outcome for a pool with the given content.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, total_level: u32, max_level: u32) -> bool {
        rng.random::<f64>() < self.positive_prob(total_level, max_level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::BinaryDilutionModel;
    use crate::model::BinaryOutcomeModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reduces_to_boolean_model_on_binary_levels() {
        let graded = GradedBinaryModel::pcr_like();
        let boolean = BinaryDilutionModel::pcr_like();
        // A Boolean pool of size n has max_level = n and total = positives.
        for n in [1u32, 4, 8] {
            for k in 0..=n {
                assert!(
                    (graded.positive_prob(k, n) - boolean.positive_prob(k, n)).abs() < 1e-12,
                    "k={k} n={n}"
                );
            }
        }
    }

    #[test]
    fn table_shape_and_monotonicity() {
        let m = GradedBinaryModel::pcr_like();
        let t = m.likelihood_table(true, 6);
        assert_eq!(t.len(), 7);
        // More content ⇒ (weakly) more detectable.
        for w in t.windows(2).skip(1) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        // Negative-outcome table is the complement.
        let tn = m.likelihood_table(false, 6);
        for (a, b) in t.iter().zip(&tn) {
            assert!((a + b - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn graded_chain_update_end_to_end() {
        use sbgt_lattice::{ChainPosterior, ChainShape};
        // Two subjects, 3 levels each; a strongly positive pooled outcome
        // shifts mass toward higher total levels.
        let shape = ChainShape::uniform(2, 3);
        let priors = vec![vec![0.8, 0.15, 0.05]; 2];
        let mut post = ChainPosterior::from_priors(shape.clone(), &priors);
        let m = GradedBinaryModel::pcr_like();
        let max_level = shape.max_pool_level(&[0, 1]);
        let table = m.likelihood_table(true, max_level);
        post.mul_likelihood_fused(&[0, 1], &table);
        post.try_normalize().unwrap();
        let pos = post.positive_marginals();
        assert!(pos[0] > 0.2, "marginal {}", pos[0]); // prior was 0.2
                                                      // High level gains relative to low within each subject.
        let lm = post.level_marginals();
        assert!(lm[0][2] / lm[0][1] > 0.05 / 0.15 - 1e-9);
    }

    #[test]
    fn sampling_rate_matches() {
        let m = GradedBinaryModel::new(0.9, 0.95, Dilution::None);
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 20_000;
        let rate = (0..trials).filter(|_| m.sample(&mut rng, 3, 6)).count() as f64 / trials as f64;
        assert!((rate - 0.9).abs() < 0.02, "{rate}");
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = GradedBinaryModel::pcr_like().positive_prob(0, 0);
    }
}
