//! # sbgt-response — pooled-test response models with dilution effects
//!
//! The Biostatistics companion paper ("Bayesian Group Testing with Dilution
//! Effects") generalizes group testing beyond the classic
//! perfect-test/binary-outcome setting in two directions, both reproduced
//! here:
//!
//! 1. **Dilution**: pooling `n` samples of which only `k` are positive
//!    dilutes the analyte, lowering the chance a positive pool is detected.
//!    [`dilution::Dilution`] captures this as an attenuation curve
//!    `d(k, n) ∈ [0, 1]` applied to the assay's maximum sensitivity, with
//!    several standard shapes (none/linear/exponential/Hill).
//! 2. **General outcome distributions**: outcomes need not be binary.
//!    [`continuous::GaussianResponse`] models a viral-load-style continuous
//!    signal (e.g. negated Ct values) whose mean shifts with the positive
//!    fraction.
//!
//! Everything the Bayesian machinery needs from a response model is the
//! likelihood `f(y | k, n)` of outcome `y` given `k` positives in a pool of
//! `n` — exposed via [`model::ResponseModel::likelihood_table`], which
//! returns the `n + 1` values a lattice update indexes by `|s ∩ A|`.

pub mod binary;
pub mod calibrate;
pub mod continuous;
pub mod ct_value;
pub mod dilution;
pub mod graded;
pub mod model;

pub use binary::BinaryDilutionModel;
pub use continuous::GaussianResponse;
pub use ct_value::{CtOutcome, CtValueModel};
pub use dilution::Dilution;
pub use graded::GradedBinaryModel;
pub use model::{BinaryOutcomeModel, ResponseModel};
