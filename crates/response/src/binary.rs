//! Binary (positive/negative) assay with dilution-dependent sensitivity.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::dilution::Dilution;
use crate::model::{BinaryOutcomeModel, ResponseModel};

/// A binary pooled assay:
///
/// * a pool with no positive samples reads positive with probability
///   `1 − specificity` (false positive);
/// * a pool with `k ≥ 1` positives of `n` reads positive with probability
///   `sensitivity · d(k, n)` where `d` is the dilution attenuation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryDilutionModel {
    /// Maximum (undiluted) sensitivity, in `(0, 1]`.
    pub sensitivity: f64,
    /// Specificity, in `(0, 1]`.
    pub specificity: f64,
    /// Dilution attenuation curve.
    pub dilution: Dilution,
}

impl BinaryDilutionModel {
    /// Construct with validation.
    ///
    /// # Panics
    /// Panics when sensitivity or specificity lies outside `(0, 1]`.
    pub fn new(sensitivity: f64, specificity: f64, dilution: Dilution) -> Self {
        assert!(
            sensitivity > 0.0 && sensitivity <= 1.0,
            "sensitivity {sensitivity} outside (0,1]"
        );
        assert!(
            specificity > 0.0 && specificity <= 1.0,
            "specificity {specificity} outside (0,1]"
        );
        BinaryDilutionModel {
            sensitivity,
            specificity,
            dilution,
        }
    }

    /// A realistic RT-PCR-like default: 99% sensitivity, 99.5% specificity,
    /// exponential dilution with `α = 4` (matches the moderate-dilution
    /// regime explored in the method paper).
    pub fn pcr_like() -> Self {
        BinaryDilutionModel::new(0.99, 0.995, Dilution::Exponential { alpha: 4.0 })
    }

    /// A perfect test without dilution (classic group-testing idealization,
    /// useful in tests because posteriors become exact indicator sets).
    pub fn perfect() -> Self {
        BinaryDilutionModel::new(1.0, 1.0, Dilution::None)
    }
}

impl ResponseModel for BinaryDilutionModel {
    type Outcome = bool;

    fn likelihood(&self, outcome: bool, positives: u32, pool_size: u32) -> f64 {
        let p_pos = self.positive_prob(positives, pool_size);
        if outcome {
            p_pos
        } else {
            1.0 - p_pos
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, positives: u32, pool_size: u32) -> bool {
        rng.random::<f64>() < self.positive_prob(positives, pool_size)
    }
}

impl BinaryOutcomeModel for BinaryDilutionModel {
    fn positive_prob(&self, positives: u32, pool_size: u32) -> f64 {
        if positives == 0 {
            1.0 - self.specificity
        } else {
            self.sensitivity * self.dilution.attenuation(positives, pool_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_test_is_indicator() {
        let m = BinaryDilutionModel::perfect();
        assert_eq!(m.likelihood(true, 0, 5), 0.0);
        assert_eq!(m.likelihood(false, 0, 5), 1.0);
        assert_eq!(m.likelihood(true, 1, 5), 1.0);
        assert_eq!(m.likelihood(false, 3, 5), 0.0);
    }

    #[test]
    fn likelihoods_sum_to_one() {
        let m = BinaryDilutionModel::pcr_like();
        for n in [1u32, 4, 16] {
            for k in 0..=n {
                let s = m.likelihood(true, k, n) + m.likelihood(false, k, n);
                assert!((s - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dilution_lowers_detection() {
        let m = BinaryDilutionModel::new(0.95, 0.99, Dilution::Linear);
        let single_neat = m.positive_prob(1, 1);
        let single_pool8 = m.positive_prob(1, 8);
        assert!((single_neat - 0.95).abs() < 1e-12);
        assert!((single_pool8 - 0.95 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn no_dilution_is_constant_sensitivity() {
        let m = BinaryDilutionModel::new(0.9, 0.98, Dilution::None);
        for n in [1u32, 8, 32] {
            for k in 1..=n {
                assert!((m.positive_prob(k, n) - 0.9).abs() < 1e-12);
            }
        }
        assert!((m.positive_prob(0, 32) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn marker_trait_accessors() {
        let m = BinaryDilutionModel::pcr_like();
        assert!((m.base_sensitivity() - 0.99).abs() < 1e-12);
        assert!((m.specificity() - 0.995).abs() < 1e-12);
    }

    #[test]
    fn table_matches_pointwise() {
        let m = BinaryDilutionModel::pcr_like();
        let t = m.likelihood_table(true, 6);
        assert_eq!(t.len(), 7);
        for (k, &v) in t.iter().enumerate() {
            assert_eq!(v, m.likelihood(true, k as u32, 6));
        }
    }

    #[test]
    fn sampling_matches_probability() {
        let m = BinaryDilutionModel::new(0.8, 0.9, Dilution::None);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| m.sample(&mut rng, 2, 4)).count() as f64;
        let rate = hits / trials as f64;
        assert!((rate - 0.8).abs() < 0.02, "rate {rate}");
        let false_pos =
            (0..trials).filter(|_| m.sample(&mut rng, 0, 4)).count() as f64 / trials as f64;
        assert!((false_pos - 0.1).abs() < 0.02, "fp {false_pos}");
    }

    #[test]
    #[should_panic(expected = "sensitivity")]
    fn validates_sensitivity() {
        let _ = BinaryDilutionModel::new(0.0, 0.9, Dilution::None);
    }

    #[test]
    #[should_panic(expected = "specificity")]
    fn validates_specificity() {
        let _ = BinaryDilutionModel::new(0.9, 1.5, Dilution::None);
    }
}
