//! Calibration helpers for response models.
//!
//! Labs characterize an assay's dilution behaviour with spike-in series:
//! detection rates of pools with one positive sample at several pool sizes.
//! These helpers fit the exponential attenuation parameter to such data and
//! derive operational quantities (maximum usable pool size for a target
//! sensitivity), mirroring the calculator tooling the method paper ships.

use crate::dilution::Dilution;

/// An observed detection rate: a pool of `pool_size` containing exactly one
/// positive sample was detected with empirical probability `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionPoint {
    /// Pool size `n ≥ 1`.
    pub pool_size: u32,
    /// Observed detection rate in `[0, 1]`.
    pub rate: f64,
}

/// Fit the `α` of [`Dilution::Exponential`] to single-positive detection
/// data by least squares over a log-spaced grid refined with golden-section
/// search. `sensitivity` is the assay's neat sensitivity.
///
/// Returns the fitted `α` (clamped to `[1e-3, 1e3]`). With an empty data
/// slice, returns the midpoint default `α = 4.0`.
pub fn fit_exponential_alpha(points: &[DetectionPoint], sensitivity: f64) -> f64 {
    assert!(sensitivity > 0.0 && sensitivity <= 1.0);
    if points.is_empty() {
        return 4.0;
    }
    let loss = |alpha: f64| -> f64 {
        let d = Dilution::Exponential { alpha };
        points
            .iter()
            .map(|pt| {
                let predicted = sensitivity * d.attenuation(1, pt.pool_size);
                let e = predicted - pt.rate;
                e * e
            })
            .sum()
    };
    // Coarse log-grid scan.
    let mut best = (4.0f64, loss(4.0));
    let mut a = 1e-3;
    while a <= 1e3 {
        let l = loss(a);
        if l < best.1 {
            best = (a, l);
        }
        a *= 1.3;
    }
    // Golden-section refinement around the best grid point.
    let (mut lo, mut hi) = (best.0 / 1.3, best.0 * 1.3);
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    for _ in 0..60 {
        let m1 = hi - phi * (hi - lo);
        let m2 = lo + phi * (hi - lo);
        if loss(m1) < loss(m2) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    ((lo + hi) / 2.0).clamp(1e-3, 1e3)
}

/// Largest pool size such that a single positive sample is still detected
/// with probability at least `target` under the given model parameters.
/// Returns `None` when even a neat test misses the target.
pub fn max_pool_for_sensitivity(
    sensitivity: f64,
    dilution: Dilution,
    target: f64,
    max_search: u32,
) -> Option<u32> {
    assert!((0.0..=1.0).contains(&target));
    let ok = |n: u32| sensitivity * dilution.attenuation(1, n) >= target;
    if !ok(1) {
        return None;
    }
    // Effective single-positive sensitivity is non-increasing in pool size,
    // so scan until it first drops below the target.
    let mut best = 1;
    for n in 2..=max_search {
        if ok(n) {
            best = n;
        } else {
            break;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_known_alpha() {
        let truth = Dilution::Exponential { alpha: 5.0 };
        let sens = 0.98;
        let points: Vec<DetectionPoint> = [1u32, 2, 4, 8, 16, 32]
            .iter()
            .map(|&n| DetectionPoint {
                pool_size: n,
                rate: sens * truth.attenuation(1, n),
            })
            .collect();
        let fitted = fit_exponential_alpha(&points, sens);
        assert!((fitted - 5.0).abs() < 0.05, "fitted {fitted}");
    }

    #[test]
    fn fit_with_noise_is_close() {
        let truth = Dilution::Exponential { alpha: 3.0 };
        let sens = 0.95;
        let noise = [0.01, -0.012, 0.008, -0.005, 0.011];
        let points: Vec<DetectionPoint> = [2u32, 4, 8, 16, 32]
            .iter()
            .zip(noise.iter())
            .map(|(&n, &e)| DetectionPoint {
                pool_size: n,
                rate: (sens * truth.attenuation(1, n) + e).clamp(0.0, 1.0),
            })
            .collect();
        let fitted = fit_exponential_alpha(&points, sens);
        assert!((fitted - 3.0).abs() < 0.5, "fitted {fitted}");
    }

    #[test]
    fn fit_empty_returns_default() {
        assert_eq!(fit_exponential_alpha(&[], 0.95), 4.0);
    }

    #[test]
    fn max_pool_no_dilution_is_unbounded_to_search_cap() {
        let n = max_pool_for_sensitivity(0.99, Dilution::None, 0.9, 64).unwrap();
        assert_eq!(n, 64);
    }

    #[test]
    fn max_pool_linear_dilution() {
        // sens/n >= target  =>  n <= sens/target
        let n = max_pool_for_sensitivity(0.9, Dilution::Linear, 0.2, 64).unwrap();
        assert_eq!(n, 4); // 0.9/4 = 0.225 >= 0.2; 0.9/5 = 0.18 < 0.2
    }

    #[test]
    fn max_pool_unreachable_target() {
        assert_eq!(max_pool_for_sensitivity(0.8, Dilution::None, 0.9, 64), None);
    }
}
