//! Censored Ct-value response: the realistic qPCR outcome.
//!
//! A real qPCR run reports either a cycle-threshold value (the cycle at
//! which amplification crossed threshold — lower Ct ⇔ more analyte) or
//! *no amplification* within the cycle budget. The outcome is therefore a
//! mixture: a detection indicator plus, conditionally, a continuous value.
//! This model composes the binary dilution machinery (for the detection
//! probability) with a Gaussian Ct conditional on detection whose mean
//! rises with dilution (each two-fold dilution costs ~one cycle).
//!
//! It exercises the framework's "general response distributions" claim end
//! to end: the likelihood is a probability mass for the censored branch
//! and `P(detect) × density` for the detected branch, and both flow
//! through the standard lattice update unchanged.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::continuous::standard_normal;
use crate::dilution::Dilution;
use crate::model::ResponseModel;

/// Outcome of a censored qPCR run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CtOutcome {
    /// Amplification crossed threshold at this cycle count.
    Detected(f64),
    /// No amplification within the cycle budget.
    NotDetected,
}

/// Censored Ct-value model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CtValueModel {
    /// Maximum (neat, single-positive) detection sensitivity.
    pub sensitivity: f64,
    /// Specificity: a fully-negative pool amplifies (spuriously) with
    /// probability `1 − specificity`, drawing its Ct near the cycle
    /// budget.
    pub specificity: f64,
    /// Dilution attenuation on the detection probability.
    pub dilution: Dilution,
    /// Mean Ct of a neat fully-positive pool.
    pub ct_neat: f64,
    /// Cycles added per two-fold dilution of the positive fraction.
    pub ct_per_doubling: f64,
    /// Ct standard deviation.
    pub sigma: f64,
    /// Mean Ct of spurious amplification in true-negative pools.
    pub ct_spurious: f64,
}

impl CtValueModel {
    /// A realistic default: neat positives at Ct 20, one cycle per
    /// two-fold dilution, σ = 1.5, spurious amplifications near Ct 38.
    pub fn pcr_like() -> Self {
        CtValueModel {
            sensitivity: 0.99,
            specificity: 0.995,
            dilution: Dilution::Exponential { alpha: 4.0 },
            ct_neat: 20.0,
            ct_per_doubling: 1.0,
            sigma: 1.5,
            ct_spurious: 38.0,
        }
    }

    /// Detection probability given `k` positives of `n`.
    pub fn detect_prob(&self, positives: u32, pool_size: u32) -> f64 {
        if positives == 0 {
            1.0 - self.specificity
        } else {
            self.sensitivity * self.dilution.attenuation(positives, pool_size)
        }
    }

    /// Mean Ct conditional on detection.
    pub fn ct_mean(&self, positives: u32, pool_size: u32) -> f64 {
        if positives == 0 {
            self.ct_spurious
        } else {
            let r = f64::from(positives) / f64::from(pool_size);
            // log2(r) <= 0: dilution raises the Ct.
            self.ct_neat - self.ct_per_doubling * r.log2()
        }
    }

    fn ct_density(&self, ct: f64, mean: f64) -> f64 {
        let z = (ct - mean) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }
}

impl ResponseModel for CtValueModel {
    type Outcome = CtOutcome;

    fn likelihood(&self, outcome: CtOutcome, positives: u32, pool_size: u32) -> f64 {
        let p_detect = self.detect_prob(positives, pool_size);
        match outcome {
            CtOutcome::NotDetected => 1.0 - p_detect,
            CtOutcome::Detected(ct) => {
                p_detect * self.ct_density(ct, self.ct_mean(positives, pool_size))
            }
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, positives: u32, pool_size: u32) -> CtOutcome {
        let p_detect = self.detect_prob(positives, pool_size);
        if rng.random::<f64>() < p_detect {
            let ct = self.ct_mean(positives, pool_size) + self.sigma * standard_normal(rng);
            CtOutcome::Detected(ct)
        } else {
            CtOutcome::NotDetected
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ct_mean_rises_with_dilution() {
        let m = CtValueModel::pcr_like();
        assert_eq!(m.ct_mean(8, 8), 20.0);
        assert!((m.ct_mean(1, 8) - 23.0).abs() < 1e-12); // 3 doublings
        assert!((m.ct_mean(4, 8) - 21.0).abs() < 1e-12);
        assert_eq!(m.ct_mean(0, 8), 38.0);
    }

    #[test]
    fn detection_mixes_binary_machinery() {
        let m = CtValueModel::pcr_like();
        assert!((m.detect_prob(0, 4) - 0.005).abs() < 1e-12);
        assert!(m.detect_prob(1, 16) < m.detect_prob(1, 2));
        assert!((m.detect_prob(4, 4) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn likelihood_normalizes_over_outcome_space() {
        // P(not detected) + ∫ P(detected, ct) dct = 1 for every (k, n).
        let m = CtValueModel::pcr_like();
        let dx = 0.02;
        for (k, n) in [(0u32, 4u32), (1, 4), (2, 8), (8, 8)] {
            let censored = m.likelihood(CtOutcome::NotDetected, k, n);
            let integral: f64 = (0..4000)
                .map(|i| m.likelihood(CtOutcome::Detected(i as f64 * dx), k, n) * dx)
                .sum();
            assert!(
                (censored + integral - 1.0).abs() < 1e-3,
                "k={k} n={n}: {censored} + {integral}"
            );
        }
    }

    #[test]
    fn low_ct_implies_high_positive_fraction() {
        // Ct 20 (strong signal) must favor an all-positive pool over a
        // single positive.
        let m = CtValueModel::pcr_like();
        let strong = CtOutcome::Detected(20.0);
        assert!(m.likelihood(strong, 4, 4) > m.likelihood(strong, 1, 4));
        // Ct 23.5 favors the single positive in 8.
        let weak = CtOutcome::Detected(23.0);
        assert!(m.likelihood(weak, 1, 8) > m.likelihood(weak, 8, 8));
    }

    #[test]
    fn sampling_matches_detection_rate() {
        let m = CtValueModel::pcr_like();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 20_000;
        let detected = (0..trials)
            .filter(|_| matches!(m.sample(&mut rng, 2, 4), CtOutcome::Detected(_)))
            .count() as f64
            / trials as f64;
        let expected = m.detect_prob(2, 4);
        assert!(
            (detected - expected).abs() < 0.02,
            "{detected} vs {expected}"
        );
    }

    #[test]
    fn lattice_update_with_ct_outcomes() {
        // End-to-end through the generic table path: a strong Ct on a
        // two-subject pool raises both marginals.
        use sbgt_lattice::DensePosterior;
        let m = CtValueModel::pcr_like();
        let mut post = DensePosterior::from_risks(&[0.1, 0.1, 0.1]);
        let pool = sbgt_lattice::State::from_subjects([0, 1]);
        let table = m.likelihood_table(CtOutcome::Detected(20.5), pool.rank());
        post.mul_likelihood(pool, &table);
        post.try_normalize().unwrap();
        let marg = post.marginals();
        assert!(marg[0] > 0.5, "marginal {}", marg[0]);
        assert!((marg[2] - 0.1).abs() < 1e-9);
    }
}
