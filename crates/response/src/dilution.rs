//! Dilution attenuation curves.
//!
//! A pool of `n` samples with `k` positives carries analyte concentration
//! proportional to `k/n`. The attenuation curve `d(k, n)` maps that
//! concentration to a multiplier on the assay's maximum sensitivity:
//! `sens_eff(k, n) = sens_max · d(k, n)` with `d(0, n) = 0` and
//! `d(n, n) = 1` (an undiluted fully-positive pool reaches full
//! sensitivity). All curves are non-decreasing in `k` at fixed `n` — more
//! positive samples can only make detection easier.

use serde::{Deserialize, Serialize};

/// Attenuation curve families from the dilution-effects literature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dilution {
    /// No dilution effect: any positive sample is detected at full
    /// sensitivity regardless of pool size (the classical Dorfman setting).
    None,
    /// Sensitivity proportional to the positive fraction: `d = k/n`.
    /// A strong dilution effect — a single positive in a pool of 32 retains
    /// only 1/32 of the sensitivity.
    Linear,
    /// Saturating exponential in the positive fraction:
    /// `d = (1 − e^{−α·k/n}) / (1 − e^{−α})`. Larger `α` saturates faster
    /// (weaker dilution penalty); `α → 0` degenerates to linear.
    Exponential {
        /// Saturation rate `α > 0`.
        alpha: f64,
    },
    /// Hill curve in the positive fraction `r = k/n`:
    /// `d = [r^γ / (r^γ + κ^γ)] · (1 + κ^γ)` — normalized so `d(n,n) = 1`.
    /// `κ` is the half-effect fraction, `γ` the steepness.
    Hill {
        /// Steepness `γ > 0`.
        gamma: f64,
        /// Positive fraction at which sensitivity reaches half its
        /// asymptote, `0 < κ <= 1`.
        kappa: f64,
    },
}

impl Dilution {
    /// The attenuation `d(k, n) ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics when `pool_size == 0` or `positives > pool_size` (debug
    /// assertions), or on invalid curve parameters.
    pub fn attenuation(&self, positives: u32, pool_size: u32) -> f64 {
        debug_assert!(pool_size >= 1, "pool must be non-empty");
        debug_assert!(positives <= pool_size);
        if positives == 0 {
            return 0.0;
        }
        let r = f64::from(positives) / f64::from(pool_size);
        match *self {
            Dilution::None => 1.0,
            Dilution::Linear => r,
            Dilution::Exponential { alpha } => {
                assert!(alpha > 0.0, "alpha must be positive");
                (1.0 - (-alpha * r).exp()) / (1.0 - (-alpha).exp())
            }
            Dilution::Hill { gamma, kappa } => {
                assert!(
                    gamma > 0.0 && kappa > 0.0 && kappa <= 1.0,
                    "invalid Hill parameters"
                );
                let rg = r.powf(gamma);
                let kg = kappa.powf(gamma);
                (rg / (rg + kg)) * (1.0 + kg)
            }
        }
    }

    /// Short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Dilution::None => "none",
            Dilution::Linear => "linear",
            Dilution::Exponential { .. } => "exponential",
            Dilution::Hill { .. } => "hill",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curves() -> Vec<Dilution> {
        vec![
            Dilution::None,
            Dilution::Linear,
            Dilution::Exponential { alpha: 3.0 },
            Dilution::Hill {
                gamma: 2.0,
                kappa: 0.3,
            },
        ]
    }

    #[test]
    fn boundary_conditions() {
        for d in curves() {
            for n in [1u32, 2, 8, 32] {
                assert_eq!(d.attenuation(0, n), 0.0, "{:?} d(0,{n})", d);
                let full = d.attenuation(n, n);
                assert!((full - 1.0).abs() < 1e-12, "{:?} d({n},{n}) = {full}", d);
            }
        }
    }

    #[test]
    fn monotone_in_positives() {
        for d in curves() {
            for n in [2u32, 5, 16] {
                let mut prev = 0.0;
                for k in 0..=n {
                    let v = d.attenuation(k, n);
                    assert!(v >= prev - 1e-12, "{:?} not monotone at k={k} n={n}", d);
                    assert!((0.0..=1.0 + 1e-12).contains(&v));
                    prev = v;
                }
            }
        }
    }

    #[test]
    fn dilution_worsens_with_pool_size() {
        // One positive in a bigger pool must be (weakly) harder to detect.
        for d in curves() {
            let mut prev = f64::INFINITY;
            for n in [1u32, 2, 4, 8, 16, 32] {
                let v = d.attenuation(1, n);
                assert!(v <= prev + 1e-12, "{:?} at n={n}", d);
                prev = v;
            }
        }
    }

    #[test]
    fn linear_is_exact_fraction() {
        assert!((Dilution::Linear.attenuation(3, 12) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn exponential_saturates_faster_with_larger_alpha() {
        let weak = Dilution::Exponential { alpha: 1.0 };
        let strong = Dilution::Exponential { alpha: 8.0 };
        assert!(strong.attenuation(1, 8) > weak.attenuation(1, 8));
    }

    #[test]
    fn hill_half_effect_at_kappa() {
        let d = Dilution::Hill {
            gamma: 3.0,
            kappa: 0.5,
        };
        // At r = kappa the unnormalized curve is exactly 1/2 of its
        // asymptote; the normalized value is (1 + κ^γ)/2.
        let v = d.attenuation(1, 2);
        let expected = (1.0 + 0.5f64.powf(3.0)) / 2.0;
        assert!((v - expected).abs() < 1e-12);
    }

    #[test]
    fn names() {
        assert_eq!(Dilution::None.name(), "none");
        assert_eq!(Dilution::Linear.name(), "linear");
        assert_eq!(Dilution::Exponential { alpha: 1.0 }.name(), "exponential");
        assert_eq!(
            Dilution::Hill {
                gamma: 1.0,
                kappa: 0.5
            }
            .name(),
            "hill"
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn exponential_validates_alpha() {
        let _ = Dilution::Exponential { alpha: -1.0 }.attenuation(1, 2);
    }
}
