//! Property tests: the `SBGTSNAP` approx section round-trips bit-for-bit
//! and rejects tampering with typed errors — truncation anywhere, flipped
//! bytes (including the approx kind byte), and cross-backend restores all
//! fail closed, never panic, never corrupt a session.

use proptest::prelude::*;

use sbgt::SessionSnapshot;
use sbgt_approx::{BpConfig, BpSession, ParticleConfig, ParticleSession};
use sbgt_lattice::BigState;
use sbgt_response::BinaryDilutionModel;

fn risks_from_seed(seed: u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            0.01 + (h >> 11) as f64 / (1u64 << 53) as f64 * 0.15
        })
        .collect()
}

/// A session of each backend with a couple of observed pools, so the
/// snapshot exercises history (and, for particles, the cloud block).
fn observed_sessions(
    seed: u64,
    n: usize,
) -> (
    BpSession<BinaryDilutionModel>,
    ParticleSession<BinaryDilutionModel>,
) {
    let risks = risks_from_seed(seed, n);
    let model = BinaryDilutionModel::pcr_like();
    let config = sbgt::SbgtConfig::default();
    let mut bp = BpSession::new(&risks, model, config, BpConfig::default()).unwrap();
    let pcfg = ParticleConfig {
        particles: 64,
        seed,
        ..ParticleConfig::default()
    };
    let mut particle = ParticleSession::new(&risks, model, config, pcfg).unwrap();
    let pools = [
        BigState::from_subjects(0..n / 2),
        BigState::from_subjects(n / 2..n),
    ];
    for (i, pool) in pools.iter().enumerate() {
        bp.observe(pool, i % 2 == 0).unwrap();
        particle.observe(pool, i % 2 == 0).unwrap();
    }
    (bp, particle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both approx snapshot kinds survive the byte codec bit-for-bit, and
    /// truncation at any point is a typed error.
    #[test]
    fn approx_snapshots_round_trip_and_reject_truncation(
        seed in proptest::arbitrary::any::<u64>(),
        n in 18usize..=40,
        cut_seed in proptest::arbitrary::any::<usize>(),
    ) {
        let (bp, particle) = observed_sessions(seed, n);
        for snap in [bp.snapshot(), particle.snapshot()] {
            let bytes = snap.to_bytes();
            prop_assert_eq!(&SessionSnapshot::from_bytes(&bytes).unwrap(), &snap);
            let cut = cut_seed % bytes.len();
            prop_assert!(SessionSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
    }

    /// Flipping any single byte of an approx snapshot either decodes to a
    /// still-structurally-valid snapshot or fails with a typed error —
    /// and whatever decodes must restore cleanly or be rejected, never
    /// panic. This covers the approx kind byte too: a kind flipped to the
    /// other backend is caught by the restore-side kind check.
    #[test]
    fn flipped_bytes_never_panic_the_approx_codec(
        seed in proptest::arbitrary::any::<u64>(),
        n in 18usize..=32,
        at_seed in proptest::arbitrary::any::<usize>(),
        xor in 1u8..=255,
    ) {
        let (bp, particle) = observed_sessions(seed, n);
        let risks = risks_from_seed(seed, n);
        let model = BinaryDilutionModel::pcr_like();
        let config = sbgt::SbgtConfig::default();
        for (snap, is_bp) in [(bp.snapshot(), true), (particle.snapshot(), false)] {
            let mut bytes = snap.to_bytes();
            let at = at_seed % bytes.len();
            bytes[at] ^= xor;
            let Ok(decoded) = SessionSnapshot::from_bytes(&bytes) else {
                continue; // typed rejection is a pass
            };
            // Whatever survived decoding must hit the restore-side
            // validation walls without panicking; a clean restore is only
            // acceptable for flips that landed in don't-care bits.
            if is_bp {
                let _ = BpSession::restore(
                    &decoded, &risks, model, config, BpConfig::default(),
                );
            } else {
                let pcfg = ParticleConfig {
                    particles: 64,
                    seed,
                    ..ParticleConfig::default()
                };
                let _ = ParticleSession::restore(&decoded, &risks, model, config, pcfg);
            }
        }
    }

    /// Cross-backend restores are rejected outright: a BP snapshot cannot
    /// rebuild a particle session and vice versa, whatever the payload.
    #[test]
    fn cross_backend_restores_are_rejected(
        seed in proptest::arbitrary::any::<u64>(),
        n in 18usize..=32,
    ) {
        let (bp, particle) = observed_sessions(seed, n);
        let risks = risks_from_seed(seed, n);
        let model = BinaryDilutionModel::pcr_like();
        let config = sbgt::SbgtConfig::default();
        let pcfg = ParticleConfig { particles: 64, seed, ..ParticleConfig::default() };
        prop_assert!(ParticleSession::restore(
            &bp.snapshot(), &risks, model, config, pcfg
        ).is_err());
        prop_assert!(BpSession::restore(
            &particle.snapshot(), &risks, model, config, BpConfig::default()
        ).is_err());
        // And both reject an exact (approx-less) snapshot.
        let exact = SessionSnapshot {
            n_subjects: n,
            shards: vec![vec![0.5; 1 << 4]],
            total: 1.0,
            history: vec![],
            stages: 0,
            marginals: vec![],
            pending_selection: None,
            sparse: None,
            approx: None,
        };
        prop_assert!(BpSession::restore(
            &exact, &risks, model, config, BpConfig::default()
        ).is_err());
    }
}
