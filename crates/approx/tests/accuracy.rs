//! Exact-vs-approx accuracy harness.
//!
//! For cohorts small enough that the dense `2^N` session is feasible
//! (`N <= 20` here), every approximate backend is held to the exact
//! posterior's decisions: a seeded campaign runs the same cohorts through
//! the dense reference, loopy BP, and the particle filter against the same
//! deterministic lab, then checks
//!
//! * per-specimen classification agreement >= 99% per backend,
//! * an assay budget no more than 5% above the dense reference, and
//! * BP marginals within a small tolerance of the exact posterior when
//!   both condition on the identical observation history —
//!
//! the acceptance bars for trusting the approximations past the wall.
//! The assay bound is one-sided: the approximate backends select by
//! marginal halving, which in noiseless campaigns runs slightly *under*
//! the dense session's look-ahead budget while agreeing on every
//! classification, and cheaper-with-equal-decisions is not a defect.
//! A separate test pins the particle filter's bit-for-bit reproducibility
//! from `(seed, config)`, including across a snapshot/restore boundary.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sbgt::{RoundStep, SbgtConfig, SbgtSession, SessionOutcome};
use sbgt_approx::{BpConfig, BpSession, ParticleConfig, ParticleSession};
use sbgt_bayes::{Prior, SubjectStatus};
use sbgt_lattice::{BigState, State};
use sbgt_response::{BinaryDilutionModel, Dilution};

/// Undiluted assay: large-pool negatives stay informative, so all three
/// backends converge on the evidence rather than on dilution artifacts.
fn model() -> BinaryDilutionModel {
    BinaryDilutionModel::new(0.99, 0.995, Dilution::None)
}

fn risks_from_seed(seed: u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            0.02 + (h >> 11) as f64 / (1u64 << 53) as f64 * 0.13
        })
        .collect()
}

/// Ground truth drawn at the prior risks, seeded.
fn truth_from_risks(risks: &[f64], seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    risks
        .iter()
        .enumerate()
        .filter(|(_, &r)| rng.random_bool(r))
        .map(|(i, _)| i)
        .collect()
}

struct CampaignRun {
    dense: SessionOutcome,
    bp: SessionOutcome,
    particle: SessionOutcome,
}

/// One cohort through all three backends against the same noiseless lab
/// (a pool reads positive iff it touches the truth — a pure function of
/// the pool, so backends that select different pools still face the same
/// ground truth).
fn run_all_backends(seed: u64, n: usize) -> CampaignRun {
    let risks = risks_from_seed(seed, n);
    let infected = truth_from_risks(&risks, seed);
    let truth_small = State::from_subjects(infected.iter().copied());
    let truth_big = BigState::from_subjects(infected.iter().copied());
    let config = SbgtConfig::default().serial();

    let mut dense = SbgtSession::new(Prior::from_risks(&risks), model(), config);
    let dense_out = dense.run_to_classification(|pool| truth_small.intersects(pool));

    let mut bp = BpSession::new(&risks, model(), config, BpConfig::default()).unwrap();
    let bp_out = bp.run_to_classification(|pool| truth_big.intersects(pool));

    let pcfg = ParticleConfig {
        seed,
        ..ParticleConfig::default()
    };
    let mut particle = ParticleSession::new(&risks, model(), config, pcfg).unwrap();
    let particle_out = particle.run_to_classification(|pool| truth_big.intersects(pool));

    CampaignRun {
        dense: dense_out,
        bp: bp_out,
        particle: particle_out,
    }
}

fn agreement(reference: &SessionOutcome, candidate: &SessionOutcome) -> (usize, usize) {
    assert_eq!(
        reference.classification.statuses.len(),
        candidate.classification.statuses.len()
    );
    let agree = reference
        .classification
        .statuses
        .iter()
        .zip(&candidate.classification.statuses)
        .filter(|(a, b)| a == b)
        .count();
    (agree, reference.classification.statuses.len())
}

#[test]
fn approx_backends_match_the_dense_reference() {
    let mut subjects = 0usize;
    let mut bp_agree = 0usize;
    let mut particle_agree = 0usize;
    let mut dense_tests = 0usize;
    let mut bp_tests = 0usize;
    let mut particle_tests = 0usize;

    for n in [8usize, 10, 12] {
        for seed in 1..=10u64 {
            let run = run_all_backends(seed.wrapping_mul(7919) + n as u64, n);
            let (a, total) = agreement(&run.dense, &run.bp);
            bp_agree += a;
            let (a, _) = agreement(&run.dense, &run.particle);
            particle_agree += a;
            subjects += total;
            dense_tests += run.dense.tests;
            bp_tests += run.bp.tests;
            particle_tests += run.particle.tests;
        }
    }

    let bp_frac = bp_agree as f64 / subjects as f64;
    let particle_frac = particle_agree as f64 / subjects as f64;
    assert!(
        bp_frac >= 0.99,
        "BP agreed with dense on {bp_agree}/{subjects} specimens ({bp_frac:.4})"
    );
    assert!(
        particle_frac >= 0.99,
        "particles agreed with dense on {particle_agree}/{subjects} specimens ({particle_frac:.4})"
    );

    let budget = dense_tests as f64 * 1.05;
    assert!(
        (bp_tests as f64) <= budget,
        "BP used {bp_tests} assays vs dense {dense_tests} (>5% over budget)"
    );
    assert!(
        (particle_tests as f64) <= budget,
        "particles used {particle_tests} assays vs dense {dense_tests} (>5% over budget)"
    );
}

#[test]
fn bp_marginals_track_the_exact_posterior() {
    // Replay every pool BP chose (and the outcome it saw) through the
    // exact dense posterior: conditioning on the identical history, the
    // loopy marginals must sit on top of the exact ones. Halving yields
    // near-tree factor graphs, where loopy BP is close to exact — this
    // pins that the assay savings in the campaign above come from the
    // selection policy, not from a drifting posterior.
    let mut worst = 0.0f64;
    for n in [8usize, 10, 12] {
        for seed in 1..=10u64 {
            let seed = seed.wrapping_mul(7919) + n as u64;
            let risks = risks_from_seed(seed, n);
            let infected = truth_from_risks(&risks, seed);
            let truth = BigState::from_subjects(infected.iter().copied());
            let config = SbgtConfig::default().serial();

            let mut bp = BpSession::new(&risks, model(), config, BpConfig::default()).unwrap();
            let _ = bp.run_to_classification(|pool| truth.intersects(pool));
            let history = sbgt::SurveillanceSession::snapshot(&bp)
                .approx
                .expect("BP snapshot carries an approx section")
                .history;

            let mut dense = SbgtSession::new(Prior::from_risks(&risks), model(), config);
            for (members, outcome) in &history {
                let pool = State::from_subjects(members.iter().map(|&i| i as usize));
                dense.observe(pool, *outcome).unwrap();
            }
            let bp_m = sbgt::SurveillanceSession::marginals(&bp);
            let dense_m = dense.marginals();
            for (b, d) in bp_m.iter().zip(&dense_m) {
                worst = worst.max((b - d).abs());
            }
        }
    }
    assert!(
        worst <= 0.05,
        "worst |BP - exact| marginal over identical histories: {worst:.6}"
    );
}

#[test]
fn particle_runs_are_reproducible_from_seed_and_config() {
    let n = 12usize;
    let seed = 41u64;
    let risks = risks_from_seed(seed, n);
    let infected = truth_from_risks(&risks, seed);
    let truth = BigState::from_subjects(infected.iter().copied());
    let config = SbgtConfig::default().serial();
    let pcfg = ParticleConfig {
        seed,
        ..ParticleConfig::default()
    };

    let drive = |session: &mut ParticleSession<BinaryDilutionModel>| {
        session.run_to_classification(|pool| truth.intersects(pool))
    };

    let mut a = ParticleSession::new(&risks, model(), config, pcfg).unwrap();
    let out_a = drive(&mut a);
    let mut b = ParticleSession::new(&risks, model(), config, pcfg).unwrap();
    let out_b = drive(&mut b);
    assert_eq!(out_a, out_b, "same (seed, config) must replay bit-for-bit");

    // Interrupt a third run after two rounds, freeze it, restore, finish:
    // the outcome must still be bit-identical — the snapshot carries the
    // cloud and RNG, so the sample path continues where it left off.
    let mut c = ParticleSession::new(&risks, model(), config, pcfg).unwrap();
    for _ in 0..2 {
        if let RoundStep::Finished(out) = c.run_round(|pool| truth.intersects(pool)) {
            // Cohort classified before the interruption point: the full-run
            // equality above already covers it.
            assert_eq!(out, out_a);
            return;
        }
    }
    let frozen = c.snapshot();
    let mut d = ParticleSession::restore(&frozen, &risks, model(), config, pcfg).unwrap();
    let out_d = drive(&mut d);
    assert_eq!(
        out_d, out_a,
        "snapshot/restore must not perturb the sample path"
    );
}

#[test]
fn bp_handles_cohorts_far_past_the_exact_wall() {
    // 256 specimens: the dense session would need a 2^256 lattice. BP runs
    // rounds in O(specimens + pools) and drives the cohort to a terminal
    // classification that contains every planted positive.
    let n = 256usize;
    // 5% flat risk: above the symmetric rule's negative threshold, so the
    // cohort genuinely needs testing (1% priors classify instantly).
    let risks = vec![0.05; n];
    let infected = [3usize, 77, 200];
    let truth = BigState::from_subjects(infected.iter().copied());
    let config = SbgtConfig::default();

    let mut session = BpSession::new(&risks, model(), config, BpConfig::default()).unwrap();
    let out = session.run_to_classification(|pool| truth.intersects(pool));
    assert_eq!(out.subjects, n);
    assert_eq!(out.marginals.len(), n);
    assert!(out.classification.is_terminal(), "cohort must classify");
    for &i in &infected {
        assert_eq!(
            out.classification.statuses[i],
            SubjectStatus::Positive,
            "planted positive {i} missed"
        );
    }
    assert_eq!(out.classification.positives(), infected.len());
    assert!(
        out.tests < n,
        "pooling must beat individual testing ({} assays for {n})",
        out.tests
    );
}
