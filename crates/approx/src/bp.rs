//! Loopy belief propagation on the specimen↔pool factor graph.
//!
//! Variables are specimen infection bits; every observed pooled test is a
//! [`Factor`] whose likelihood depends on the state only through the pool's
//! positive count. Messages are per-edge log-likelihood ratios
//! `llr[a][j] = ln f_a(x_j = 1 | rest) / f_a(x_j = 0 | rest)`; a variable's
//! belief is its prior logit plus the sum of incoming LLRs, and the factor→
//! variable update marginalizes the leave-one-out Poisson-binomial count
//! distribution of the other members against the factor's likelihood table.
//! The schedule is asynchronous in factor order with damping, stopping when
//! the largest per-sweep message change falls under the residual tolerance.
//!
//! The relaxation is a **pure function of (prior, observation history)**:
//! every read-out restarts the messages from zero. That makes the session
//! path-independent — observing tests one at a time or as one stage lands
//! on identical marginals — and makes checkpoint/restore trivially
//! bit-exact: an `SBGTSNAP` approx snapshot carries only the history, and
//! [`BpSession::restore`] re-runs the identical deterministic relaxation.

use std::sync::Arc;

use sbgt_bayes::{classify_marginals, BayesError, CohortClassification};
use sbgt_engine::obs::{SpanKind, SpanMeta, SpanRecorder, TraceLevel};
use sbgt_engine::{Engine, StageVariant};
use sbgt_lattice::BigState;
use sbgt_response::BinaryOutcomeModel;

use sbgt::{
    ApproxKind, ApproxSnapshot, ConfigError, RoundStep, SbgtConfig, SessionOutcome,
    SessionSnapshot, SnapshotError,
};

use crate::factor::{count_distribution, Factor};
use crate::select::select_stage_marginals;

/// Cap on message magnitude: |LLR| ≤ 40 keeps `exp` comfortably finite
/// while representing odds beyond anything a floored likelihood table
/// (`MIN_LIKELIHOOD = 1e-12`) can justify.
pub const LLR_CAP: f64 = 40.0;

/// Tuning for the message schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BpConfig {
    /// Sweep cap (each sweep updates every factor's outgoing messages).
    pub max_iters: u32,
    /// Weight on the *old* message in the damped update, in `[0, 1)`.
    /// `0.0` is undamped; higher values slow oscillations on short cycles.
    pub damping: f64,
    /// Convergence threshold on the largest per-sweep message change.
    pub tol: f64,
}

impl Default for BpConfig {
    fn default() -> Self {
        BpConfig {
            max_iters: 100,
            damping: 0.5,
            tol: 1e-8,
        }
    }
}

impl BpConfig {
    /// Validate every knob; [`ConfigError::InvalidArgument`] names the
    /// first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_iters == 0 {
            return Err(ConfigError::InvalidArgument(
                "BP sweep cap must be at least 1".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.damping) {
            return Err(ConfigError::InvalidArgument(format!(
                "BP damping {} must be in [0, 1)",
                self.damping
            )));
        }
        if self.tol.is_nan() || self.tol <= 0.0 {
            return Err(ConfigError::InvalidArgument(format!(
                "BP tolerance {} must be positive",
                self.tol
            )));
        }
        Ok(())
    }
}

/// `ln(p / (1 − p))`.
pub(crate) fn logit(p: f64) -> f64 {
    (p / (1.0 - p)).ln()
}

/// `1 / (1 + e^{−x})`.
pub(crate) fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Validate cohort risks for the approximate backends, which take raw
/// per-specimen risks (the exact [`sbgt_bayes::Prior`] caps cohorts at the
/// lattice's 48-subject `State` width — the wall this crate removes).
pub(crate) fn validate_risks(risks: &[f64]) -> Result<(), ConfigError> {
    if risks.is_empty() {
        return Err(ConfigError::InvalidArgument(
            "cohort must have at least one specimen".into(),
        ));
    }
    for (i, &r) in risks.iter().enumerate() {
        if !(r > 0.0 && r < 1.0) {
            return Err(ConfigError::InvalidArgument(format!(
                "risk {r} for specimen {i} must be in (0, 1)"
            )));
        }
    }
    Ok(())
}

/// Convergence record of one relaxation: sweep count and the residual
/// (largest message change) after each sweep, in sweep order. Produced by
/// [`relax_marginals_traced`] purely as a side log — recording it never
/// perturbs the float schedule, so traced and untraced relaxations land
/// on bit-identical marginals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BpTrace {
    /// Sweeps executed (≤ `cfg.max_iters`).
    pub sweeps: u32,
    /// Residual after each sweep; `residuals.len() == sweeps as usize`.
    pub residuals: Vec<f64>,
}

impl BpTrace {
    /// Whether the relaxation stopped by reaching `cfg.tol` (as opposed
    /// to exhausting the sweep cap, or having nothing to relax).
    pub fn converged(&self, cfg: &BpConfig) -> bool {
        self.residuals.last().is_some_and(|&r| r < cfg.tol)
    }

    /// The residual of the last executed sweep (0.0 when zero sweeps
    /// ran — possible only with a zero sweep cap, which validation
    /// rejects).
    pub fn final_residual(&self) -> f64 {
        self.residuals.last().copied().unwrap_or(0.0)
    }
}

/// Quantize a residual to integer nano-units (`residual × 1e9`, rounded)
/// for histogram buckets and mark payloads. Non-positive and NaN inputs
/// map to 0; overflow saturates.
pub fn residual_nanos(residual: f64) -> u64 {
    if residual.is_nan() || residual <= 0.0 {
        return 0;
    }
    let nanos = (residual * 1e9).round();
    if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        nanos as u64
    }
}

/// Run the damped LLR relaxation from a cold start and return the
/// per-specimen marginals. Pure: same `(prior_logit, factors, cfg)` →
/// bit-identical output, which is what the snapshot contract and the
/// engine-stage retry path both lean on.
pub fn relax_marginals(prior_logit: &[f64], factors: &[Factor], cfg: &BpConfig) -> Vec<f64> {
    relax_marginals_traced(prior_logit, factors, cfg).0
}

/// [`relax_marginals`] plus its convergence trace. This is the actual
/// relaxation; the untraced entry point discards the trace. The float
/// schedule is byte-identical either way — the trace only *reads* each
/// sweep's residual, which the loop already computes for its stop test.
pub fn relax_marginals_traced(
    prior_logit: &[f64],
    factors: &[Factor],
    cfg: &BpConfig,
) -> (Vec<f64>, BpTrace) {
    let n = prior_logit.len();
    let mut trace = BpTrace::default();
    // llr[a][j]: message from factor a to its j-th member; llr_sum[i] keeps
    // the running total per variable so a cavity read is O(1).
    let mut llr: Vec<Vec<f64>> = factors.iter().map(|f| vec![0.0; f.size()]).collect();
    let mut llr_sum = vec![0.0; n];
    for _ in 0..cfg.max_iters {
        let mut residual = 0.0f64;
        for (a, f) in factors.iter().enumerate() {
            let m = f.size();
            // Cavity probabilities: each member's belief minus this
            // factor's own previous message.
            let mus: Vec<f64> = f
                .members
                .iter()
                .enumerate()
                .map(|(j, &i)| sigmoid(prior_logit[i as usize] + llr_sum[i as usize] - llr[a][j]))
                .collect();
            // Prefix/suffix Poisson-binomial tables over the cavity
            // probabilities; prefix[j] covers members < j, suffix[j]
            // covers members ≥ j.
            let mut prefix: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
            prefix.push(vec![1.0]);
            for &mu in &mus {
                prefix.push(convolve_bernoulli(prefix.last().unwrap(), mu));
            }
            let mut suffix: Vec<Vec<f64>> = vec![Vec::new(); m + 1];
            suffix[m] = vec![1.0];
            for j in (0..m).rev() {
                suffix[j] = convolve_bernoulli(&suffix[j + 1], mus[j]);
            }
            for (j, &i) in f.members.iter().enumerate() {
                let i = i as usize;
                // Leave-one-out count distribution of the other members.
                let d = convolve(&prefix[j], &suffix[j + 1]);
                let mut like0 = 0.0;
                let mut like1 = 0.0;
                for (k, &dk) in d.iter().enumerate() {
                    like0 += f.table[k] * dk;
                    like1 += f.table[k + 1] * dk;
                }
                let fresh = (like1 / like0).ln().clamp(-LLR_CAP, LLR_CAP);
                let damped = cfg.damping * llr[a][j] + (1.0 - cfg.damping) * fresh;
                let delta = damped - llr[a][j];
                residual = residual.max(delta.abs());
                llr_sum[i] += delta;
                llr[a][j] = damped;
            }
        }
        trace.sweeps += 1;
        trace.residuals.push(residual);
        if residual < cfg.tol {
            break;
        }
    }
    let marginals = (0..n)
        .map(|i| sigmoid(prior_logit[i] + llr_sum[i]))
        .collect();
    (marginals, trace)
}

/// Convolve a count distribution with one Bernoulli(`p`) bit.
fn convolve_bernoulli(d: &[f64], p: f64) -> Vec<f64> {
    let mut out = vec![0.0; d.len() + 1];
    for (k, &dk) in d.iter().enumerate() {
        out[k] += dk * (1.0 - p);
        out[k + 1] += dk * p;
    }
    out
}

/// Convolve two count distributions.
fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] += ai * bj;
        }
    }
    out
}

/// A surveillance session whose posterior is the loopy-BP fixed point over
/// the observed factors. Memory is O(specimens + Σ pool sizes): nothing
/// `2^N`-sized exists at any point.
pub struct BpSession<M> {
    risks: Vec<f64>,
    prior_logit: Vec<f64>,
    model: M,
    config: SbgtConfig,
    bp: BpConfig,
    factors: Arc<Vec<Factor>>,
    stages: usize,
    /// Marginals at the current factor set; `None` after an observation
    /// until the next relaxation.
    cached: Option<Vec<f64>>,
    /// Telemetry sink and the cohort id stamped on every span. `None`
    /// (the default) records nothing; [`Self::attach_obs`] opts in.
    obs: Option<(Arc<SpanRecorder>, u64)>,
}

impl<M: BinaryOutcomeModel> BpSession<M> {
    /// Open a session from per-specimen prior risks. Cohort size is bounded
    /// by memory in specimens and pools, not `2^N`.
    pub fn new(
        risks: &[f64],
        model: M,
        config: SbgtConfig,
        bp: BpConfig,
    ) -> Result<Self, ConfigError> {
        validate_risks(risks)?;
        config.validate()?;
        bp.validate()?;
        Ok(BpSession {
            prior_logit: risks.iter().map(|&r| logit(r)).collect(),
            risks: risks.to_vec(),
            model,
            config,
            bp,
            factors: Arc::new(Vec::new()),
            stages: 0,
            cached: Some(risks.to_vec()),
            obs: None,
        })
    }

    /// Attach a telemetry recorder; every subsequent round emits
    /// `session:*` spans tagged with `cohort`.
    pub fn attach_obs(&mut self, recorder: Arc<SpanRecorder>, cohort: u64) {
        self.obs = Some((recorder, cohort));
    }

    /// Whether a telemetry recorder is attached (used for lazy attach).
    pub fn has_obs(&self) -> bool {
        self.obs.is_some()
    }

    fn obs_at(&self, min: TraceLevel) -> Option<(Arc<SpanRecorder>, u64)> {
        match &self.obs {
            Some((rec, cohort)) if rec.enabled_at(min) => Some((Arc::clone(rec), *cohort)),
            _ => None,
        }
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        self.risks.len()
    }

    /// The session configuration.
    pub fn config(&self) -> &SbgtConfig {
        &self.config
    }

    /// The BP tuning.
    pub fn bp_config(&self) -> &BpConfig {
        &self.bp
    }

    /// Completed stages (lab rounds).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Observed factors, in observation order.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Total pooled tests observed.
    pub fn tests_performed(&self) -> usize {
        self.factors.len()
    }

    /// Per-specimen posterior marginals (the BP fixed point at the current
    /// history). Relaxes on demand when an observation invalidated the
    /// cache.
    pub fn marginals(&mut self) -> Vec<f64> {
        if self.cached.is_none() {
            self.cached = Some(relax_marginals(&self.prior_logit, &self.factors, &self.bp));
        }
        self.cached.clone().unwrap()
    }

    /// Marginals without refreshing the cache: relaxes transiently when the
    /// cache is stale (used by the `&self` trait surface).
    pub fn marginals_now(&self) -> Vec<f64> {
        match &self.cached {
            Some(m) => m.clone(),
            None => relax_marginals(&self.prior_logit, &self.factors, &self.bp),
        }
    }

    /// Classification under the configured rule.
    pub fn classify(&self) -> CohortClassification {
        classify_marginals(&self.marginals_now(), self.config.rule)
    }

    /// Ingest one observed pooled test (counted as one stage). Returns the
    /// predictive probability of the outcome under the pre-update
    /// marginals — the approximate model evidence.
    pub fn observe(&mut self, pool: &BigState, outcome: bool) -> Result<f64, BayesError> {
        let z = self.push_observation(pool, outcome)?;
        self.stages += 1;
        Ok(z)
    }

    /// Ingest one stage of observed pools (counted as one stage).
    pub fn observe_stage(&mut self, observations: &[(BigState, bool)]) -> Result<f64, BayesError> {
        let mut z = 1.0;
        for (pool, outcome) in observations {
            z *= self.push_observation(pool, *outcome)?;
        }
        if !observations.is_empty() {
            self.stages += 1;
        }
        Ok(z)
    }

    fn push_observation(&mut self, pool: &BigState, outcome: bool) -> Result<f64, BayesError> {
        if pool.is_empty() {
            return Err(BayesError::EmptyPool);
        }
        assert!(
            pool.subjects().all(|i| i < self.n_subjects()),
            "pool subject out of range for cohort of {}",
            self.n_subjects()
        );
        let factor = Factor::new(pool, outcome, &self.model);
        // Predictive evidence under the pre-update marginals.
        let marginals = self.marginals_now();
        let member_probs: Vec<f64> = factor
            .members
            .iter()
            .map(|&i| marginals[i as usize])
            .collect();
        let d = count_distribution(&member_probs);
        let z: f64 = d
            .iter()
            .enumerate()
            .map(|(k, &dk)| factor.table[k] * dk)
            .sum();
        Arc::make_mut(&mut self.factors).push(factor);
        self.cached = None;
        Ok(z)
    }

    /// Drive the session to classification against a lab oracle.
    pub fn run_to_classification(
        &mut self,
        mut lab: impl FnMut(&BigState) -> bool,
    ) -> SessionOutcome {
        loop {
            if let RoundStep::Finished(outcome) = self.run_round(&mut lab) {
                return outcome;
            }
        }
    }

    /// Drive exactly one round: classify, select the stage's pools via the
    /// marginal halving search, run them through `lab`, ingest the
    /// outcomes. The unit a multi-cohort service schedules.
    pub fn run_round(&mut self, mut lab: impl FnMut(&BigState) -> bool) -> RoundStep {
        self.run_round_impl(None, &mut lab)
    }

    /// [`Self::run_round`] with the relaxation running as a
    /// fault-injectable engine stage: the sweep is a pure closure over the
    /// (shared) factor list, so the engine's installed fault plan can kill
    /// or retry it and a retry recomputes the identical fixed point. The
    /// job is annotated [`StageVariant::Approx`] with the factor count.
    ///
    /// # Panics
    /// Panics when the stage fails permanently (retry budget exhausted) —
    /// the same contract as the other engine-staged rounds, which a
    /// supervising service converts into a snapshot rollback.
    pub fn run_round_on(
        &mut self,
        engine: &Engine,
        mut lab: impl FnMut(&BigState) -> bool,
    ) -> RoundStep {
        self.run_round_impl(Some(engine), &mut lab)
    }

    fn run_round_impl(
        &mut self,
        engine: Option<&Engine>,
        lab: &mut impl FnMut(&BigState) -> bool,
    ) -> RoundStep {
        let obs = self
            .obs_at(TraceLevel::Spans)
            .map(|(rec, cohort)| (Arc::clone(&rec), cohort, rec.now_ns()));
        let step = self.round_inner(engine, lab);
        if let Some((rec, cohort, start)) = obs {
            let name = rec.intern("session:round");
            let mut meta = SpanMeta::for_cohort(cohort);
            meta.failed =
                matches!(&step, RoundStep::Finished(o) if !o.classification.is_terminal());
            rec.record_span_ending_now(SpanKind::Round, name, start, meta);
        }
        step
    }

    /// Record `name` as a `Phase` span covering `start..now` when phase
    /// tracing ([`TraceLevel::Full`]) is live.
    fn obs_phase(&self, name: &str, start: Option<u64>) {
        if let (Some((rec, cohort)), Some(start)) = (self.obs_at(TraceLevel::Full), start) {
            let name = rec.intern(name);
            rec.record_span_ending_now(SpanKind::Phase, name, start, SpanMeta::for_cohort(cohort));
        }
    }

    /// Timestamp for the next [`Self::obs_phase`] call, `None` when phase
    /// tracing is off (so untraced rounds never read the clock).
    fn obs_phase_start(&self) -> Option<u64> {
        self.obs_at(TraceLevel::Full).map(|(rec, _)| rec.now_ns())
    }

    /// Refresh the marginal cache, optionally running the relaxation as an
    /// engine stage. Convergence telemetry (sweep count, residual march)
    /// is read from the pure relaxation's side trace *after* it returns,
    /// so recording can never perturb the posterior.
    fn refresh_marginals(&mut self, engine: Option<&Engine>) {
        if self.cached.is_some() {
            return;
        }
        let (marginals, trace) = match engine {
            None => relax_marginals_traced(&self.prior_logit, &self.factors, &self.bp),
            Some(engine) => {
                let prior = Arc::new(self.prior_logit.clone());
                let factors = Arc::clone(&self.factors);
                let bp = self.bp;
                let task = move || -> Result<(Vec<f64>, BpTrace), BayesError> {
                    Ok(relax_marginals_traced(&prior, &factors, &bp))
                };
                let results = engine
                    .run_stage("fused-round:bp", vec![task])
                    .unwrap_or_else(|e| panic!("BP relaxation stage failed: {e}"));
                let out = results
                    .into_iter()
                    .next()
                    .expect("one BP task")
                    .expect("pure relaxation cannot fail");
                engine.metrics().annotate_last_job(StageVariant::Approx {
                    factors: self.factors.len(),
                });
                engine.metrics().record_bp_relaxation(
                    u64::from(out.1.sweeps),
                    residual_nanos(out.1.final_residual()),
                );
                out
            }
        };
        if let Some((rec, cohort)) = self.obs_at(TraceLevel::Full) {
            let name = rec.intern("bp:sweep");
            for (sweep, &residual) in trace.residuals.iter().enumerate() {
                let mut meta = SpanMeta::for_cohort(cohort);
                meta.task = sweep as u32;
                rec.mark_value(name, residual_nanos(residual), meta);
            }
        }
        self.cached = Some(marginals);
    }

    fn round_inner(
        &mut self,
        engine: Option<&Engine>,
        lab: &mut impl FnMut(&BigState) -> bool,
    ) -> RoundStep {
        // One marginals pass (the relaxation) feeds classification, the
        // candidate ordering, and selection for the whole round.
        let t = self.obs_phase_start();
        self.refresh_marginals(engine);
        let marginals = self.cached.clone().unwrap();
        let classification = classify_marginals(&marginals, self.config.rule);
        self.obs_phase("session:marginals", t);
        if classification.is_terminal() || self.stages >= self.config.max_stages {
            return RoundStep::Finished(self.outcome(classification, &marginals));
        }
        let t = self.obs_phase_start();
        let mut order = classification.undetermined();
        order.sort_by(|&a, &b| marginals[a].total_cmp(&marginals[b]).then(a.cmp(&b)));
        let selections = select_stage_marginals(
            &order,
            &marginals,
            self.config.max_pool_size,
            self.config.stage_width,
        );
        self.obs_phase("session:select", t);
        if selections.is_empty() {
            return RoundStep::Finished(self.outcome(classification, &marginals));
        }
        let t = self.obs_phase_start();
        let observations: Vec<(BigState, bool)> = selections
            .into_iter()
            .map(|s| {
                let outcome = lab(&s.pool);
                (s.pool, outcome)
            })
            .collect();
        if self.observe_stage(&observations).is_err() {
            self.obs_phase("session:observe", t);
            let classification = self.classify();
            let marginals = self.marginals_now();
            return RoundStep::Finished(self.outcome(classification, &marginals));
        }
        self.obs_phase("session:observe", t);
        RoundStep::Progressed
    }

    fn outcome(&self, classification: CohortClassification, marginals: &[f64]) -> SessionOutcome {
        SessionOutcome {
            tests: self.factors.len(),
            stages: self.stages,
            subjects: self.n_subjects(),
            classification,
            marginals: marginals.to_vec(),
        }
    }

    /// Capture the session for checkpoint/restore. A BP posterior is a
    /// pure function of (prior, history), so the snapshot carries only the
    /// observation history: [`Self::restore`] re-runs the identical
    /// relaxation and lands bit-for-bit on the same marginals.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            n_subjects: self.n_subjects(),
            shards: Vec::new(),
            total: 1.0,
            history: Vec::new(),
            stages: self.stages,
            marginals: Vec::new(),
            pending_selection: None,
            sparse: None,
            approx: Some(ApproxSnapshot {
                kind: ApproxKind::Bp,
                history: self
                    .factors
                    .iter()
                    .map(|f| (f.members.clone(), f.outcome))
                    .collect(),
                particles: None,
            }),
        }
    }

    /// Rehydrate from a snapshot. The risks, model, and configs are not
    /// part of the snapshot (they are the cohort's static spec) and are
    /// supplied by the caller.
    pub fn restore(
        snapshot: &SessionSnapshot,
        risks: &[f64],
        model: M,
        config: SbgtConfig,
        bp: BpConfig,
    ) -> Result<Self, SnapshotError> {
        snapshot.validate()?;
        let Some(ap) = &snapshot.approx else {
            return Err(SnapshotError::Corrupt(
                "exact snapshot cannot restore a BP session".into(),
            ));
        };
        if ap.kind != ApproxKind::Bp {
            return Err(SnapshotError::Corrupt(
                "particle snapshot cannot restore a BP session".into(),
            ));
        }
        if snapshot.n_subjects != risks.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot holds {} subjects, caller supplied {} risks",
                snapshot.n_subjects,
                risks.len()
            )));
        }
        let mut session = BpSession::new(risks, model, config, bp)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        let factors = ap
            .history
            .iter()
            .map(|(members, outcome)| {
                let pool = BigState::from_subjects(members.iter().map(|&i| i as usize));
                Factor::new(&pool, *outcome, &session.model)
            })
            .collect();
        session.factors = Arc::new(factors);
        session.stages = snapshot.stages;
        session.cached = None;
        Ok(session)
    }
}

impl<M: BinaryOutcomeModel> sbgt::SurveillanceSession for BpSession<M> {
    type Pool = BigState;
    type Ctx = ();

    fn n_subjects(&self) -> usize {
        BpSession::n_subjects(self)
    }

    fn stages(&self) -> usize {
        self.stages
    }

    fn tests_performed(&self) -> usize {
        self.factors.len()
    }

    fn marginals(&self) -> Vec<f64> {
        self.marginals_now()
    }

    fn classify(&self) -> CohortClassification {
        BpSession::classify(self)
    }

    fn observe_in(&mut self, _ctx: &(), pool: BigState, outcome: bool) -> Result<f64, BayesError> {
        self.observe(&pool, outcome)
    }

    fn run_round_in(&mut self, _ctx: &(), lab: &mut dyn FnMut(&BigState) -> bool) -> RoundStep {
        self.run_round(lab)
    }

    fn snapshot(&self) -> SessionSnapshot {
        BpSession::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_response::{BinaryDilutionModel, ResponseModel};

    fn risks(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.02 + 0.01 * (i % 7) as f64).collect()
    }

    fn session(n: usize) -> BpSession<BinaryDilutionModel> {
        BpSession::new(
            &risks(n),
            BinaryDilutionModel::pcr_like(),
            SbgtConfig::default().serial(),
            BpConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn constructor_validates_risks_and_config() {
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default().serial();
        assert!(BpSession::new(&[], model, cfg, BpConfig::default()).is_err());
        assert!(BpSession::new(&[0.5, 1.0], model, cfg, BpConfig::default()).is_err());
        assert!(BpSession::new(&[0.0], model, cfg, BpConfig::default()).is_err());
        let bad_bp = BpConfig {
            damping: 1.0,
            ..BpConfig::default()
        };
        assert!(BpSession::new(&[0.1], model, cfg, bad_bp).is_err());
        let bad_iters = BpConfig {
            max_iters: 0,
            ..BpConfig::default()
        };
        assert!(BpSession::new(&[0.1], model, cfg, bad_iters).is_err());
    }

    #[test]
    fn no_observations_returns_the_prior() {
        let mut s = session(6);
        let m = s.marginals();
        for (got, want) in m.iter().zip(risks(6)) {
            assert!((got - want).abs() < 1e-9, "prior marginal {got} vs {want}");
        }
    }

    #[test]
    fn single_subject_pool_matches_exact_bayes() {
        // One pool {i}: BP on a tree is exact, so the posterior must match
        // the two-hypothesis Bayes update.
        let mut s = session(5);
        let model = BinaryDilutionModel::pcr_like();
        let pool = BigState::from_subjects([2]);
        s.observe(&pool, true).unwrap();
        let m = s.marginals();
        let p = risks(5)[2];
        let l1 = model.likelihood(true, 1, 1).max(crate::MIN_LIKELIHOOD);
        let l0 = model.likelihood(true, 0, 1).max(crate::MIN_LIKELIHOOD);
        let want = p * l1 / (p * l1 + (1.0 - p) * l0);
        assert!(
            (m[2] - want).abs() < 1e-6,
            "exact single-subject update: {} vs {want}",
            m[2]
        );
        // Untouched subjects keep their priors.
        assert!((m[0] - risks(5)[0]).abs() < 1e-9);
    }

    #[test]
    fn negative_pool_pushes_members_down() {
        let mut s = session(8);
        let pool = BigState::from_subjects([0, 1, 2, 3]);
        s.observe(&pool, false).unwrap();
        let m = s.marginals();
        let r = risks(8);
        for i in 0..4 {
            assert!(m[i] < r[i], "negative test must lower marginal {i}");
        }
        for i in 4..8 {
            assert!((m[i] - r[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn observation_order_does_not_change_the_fixed_point() {
        // Cold-start relaxation makes the posterior a pure function of the
        // factor *set* — stage-batched and one-at-a-time paths agree
        // bit-for-bit.
        let a_pool = BigState::from_subjects([0, 1, 2]);
        let b_pool = BigState::from_subjects([2, 3, 4]);
        let mut one = session(6);
        one.observe(&a_pool, true).unwrap();
        one.observe(&b_pool, false).unwrap();
        let mut batch = session(6);
        batch
            .observe_stage(&[(a_pool, true), (b_pool, false)])
            .unwrap();
        assert_eq!(one.marginals(), batch.marginals());
        assert_eq!(one.stages(), 2);
        assert_eq!(batch.stages(), 1);
        assert_eq!(one.tests_performed(), 2);
    }

    #[test]
    fn run_to_classification_finds_the_positives() {
        let n = 32;
        // Undiluted noisy assay: pooled negatives are crisply informative,
        // so the adaptive design must beat individual testing outright.
        // (Under heavy dilution — e.g. `pcr_like`'s α = 4 — large-pool
        // negatives carry little evidence and even the exact design
        // approaches one test per subject.)
        let model = BinaryDilutionModel::new(0.99, 0.995, sbgt_response::Dilution::None);
        let mut s = BpSession::new(
            &vec![0.03; n],
            model,
            SbgtConfig::default().serial(),
            BpConfig::default(),
        )
        .unwrap();
        let truth = BigState::from_subjects([5, 20]);
        let outcome = s.run_to_classification(|pool| truth.intersects(pool));
        assert!(outcome.classification.is_terminal());
        assert_eq!(outcome.subjects, n);
        assert!(outcome.tests < n, "pooling must beat individual testing");
        for i in 0..n {
            let positive = truth.contains(i);
            assert_eq!(
                outcome.marginals[i] >= 0.5,
                positive,
                "subject {i} misclassified (marginal {})",
                outcome.marginals[i]
            );
        }
    }

    #[test]
    fn snapshot_restore_is_bit_exact() {
        let mut s = session(12);
        let truth = BigState::from_subjects([3, 7]);
        // Run a few rounds, snapshot mid-flight.
        for _ in 0..3 {
            s.run_round(|pool| truth.intersects(pool));
        }
        let snap = s.snapshot();
        let bytes = snap.to_bytes();
        let decoded = SessionSnapshot::from_bytes(&bytes).unwrap();
        let mut restored = BpSession::restore(
            &decoded,
            &risks(12),
            BinaryDilutionModel::pcr_like(),
            SbgtConfig::default().serial(),
            BpConfig::default(),
        )
        .unwrap();
        assert_eq!(restored.marginals(), s.marginals());
        assert_eq!(restored.stages(), s.stages());
        assert_eq!(restored.tests_performed(), s.tests_performed());
        // Continue both: identical trajectories.
        let a = s.run_to_classification(|pool| truth.intersects(pool));
        let b = restored.run_to_classification(|pool| truth.intersects(pool));
        assert_eq!(a.marginals, b.marginals);
        assert_eq!(a.tests, b.tests);
        assert_eq!(a.classification, b.classification);
    }

    #[test]
    fn wrong_snapshot_kinds_are_rejected() {
        let s = session(4);
        let snap = s.snapshot();
        // Wrong cohort size.
        assert!(BpSession::restore(
            &snap,
            &risks(5),
            BinaryDilutionModel::pcr_like(),
            SbgtConfig::default().serial(),
            BpConfig::default(),
        )
        .is_err());
    }

    #[test]
    fn empty_pool_is_a_typed_error() {
        let mut s = session(4);
        assert!(matches!(
            s.observe(&BigState::empty(), true),
            Err(BayesError::EmptyPool)
        ));
    }

    #[test]
    fn traced_relaxation_is_bit_identical_to_untraced() {
        let mut s = session(9);
        let truth = BigState::from_subjects([1, 6]);
        for _ in 0..2 {
            s.run_round(|p| truth.intersects(p));
        }
        let cfg = BpConfig::default();
        let plain = relax_marginals(&s.prior_logit, &s.factors, &cfg);
        let (traced, trace) = relax_marginals_traced(&s.prior_logit, &s.factors, &cfg);
        assert_eq!(plain.len(), traced.len());
        for (a, b) in plain.iter().zip(&traced) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "trace recording changed the floats"
            );
        }
        assert_eq!(trace.residuals.len(), trace.sweeps as usize);
        assert!(trace.sweeps >= 1);
        assert!(trace.converged(&cfg), "default tolerances converge here");
        assert!(trace.final_residual() < cfg.tol);
        // Residuals are the stop-test values: every one before the last is
        // at or above tolerance.
        for &r in &trace.residuals[..trace.residuals.len() - 1] {
            assert!(r >= cfg.tol);
        }
    }

    #[test]
    fn residual_quantization_clamps_and_saturates() {
        assert_eq!(residual_nanos(0.0), 0);
        assert_eq!(residual_nanos(-1.0), 0);
        assert_eq!(residual_nanos(f64::NAN), 0);
        assert_eq!(residual_nanos(1e-9), 1);
        assert_eq!(residual_nanos(0.5), 500_000_000);
        assert_eq!(residual_nanos(f64::INFINITY), u64::MAX);
    }

    #[test]
    fn engine_staged_relaxations_feed_bp_stats() {
        use sbgt_engine::EngineConfig;
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let truth = BigState::from_subjects([2, 7]);
        let mut s = session(10);
        let outcome = loop {
            if let RoundStep::Finished(o) = s.run_round_on(&engine, |p| truth.intersects(p)) {
                break o;
            }
        };
        assert!(outcome.classification.is_terminal());
        let stats = engine.metrics().bp_stats();
        assert!(stats.relaxations > 0, "every staged relaxation is counted");
        assert_eq!(stats.sweeps.count(), stats.relaxations);
        assert_eq!(stats.residual_nanos.count(), stats.relaxations);
        assert!(
            stats.sweeps.max() >= Some(1),
            "at least one sweep per relaxation"
        );
    }

    #[test]
    fn engine_staged_rounds_match_plain_rounds() {
        use sbgt_engine::EngineConfig;
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let truth = BigState::from_subjects([3, 9]);
        let mut plain = session(10);
        let mut staged = session(10);
        // The relaxation is pure, so the engine-staged variant must land on
        // the identical trajectory.
        loop {
            let a = plain.run_round(|p| truth.intersects(p));
            let b = staged.run_round_on(&engine, |p| truth.intersects(p));
            match (a, b) {
                (RoundStep::Progressed, RoundStep::Progressed) => continue,
                (RoundStep::Finished(x), RoundStep::Finished(y)) => {
                    assert_eq!(x.marginals, y.marginals);
                    assert_eq!(x.tests, y.tests);
                    assert_eq!(x.classification, y.classification);
                    break;
                }
                _ => panic!("staged and plain rounds diverged"),
            }
        }
    }
}
