//! Observed-test factors on the specimen↔pool graph.
//!
//! Both approximate backends exploit the same structure the exact lattice
//! update does: a pooled test's outcome distribution depends on the state
//! hypothesis only through `k = |s ∩ A|`, so one observed outcome induces a
//! likelihood table of `|A| + 1` values. A [`Factor`] is that table plus
//! the pool membership — the entire footprint of one observation, O(|A|)
//! instead of one multiply per `2^N` state.

use sbgt_lattice::BigState;
use sbgt_response::ResponseModel;

/// Floor applied to likelihood-table entries. Perfect (0/1-probability)
/// response models produce exact zeros, which would drive BP messages to
/// infinite log-likelihood ratios and particle log-weights to `-∞` with no
/// way back; the floor keeps both backends numerically alive while leaving
/// realistic (noisy) models untouched.
pub const MIN_LIKELIHOOD: f64 = 1e-12;

/// One observed pooled test: the pool's members, the outcome, and the
/// floored likelihood table `table[k] = max(f(y | k, |A|), MIN_LIKELIHOOD)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    /// Sorted subject indices of the pool.
    pub members: Vec<u32>,
    /// Observed outcome.
    pub outcome: bool,
    /// Floored likelihood of `outcome` given `k` positives, `k = 0..=|A|`.
    pub table: Vec<f64>,
    /// The pool as bit-words, cached so particle↔pool intersection counts
    /// are word-parallel without rebuilding the mask per use.
    words: Vec<u64>,
}

impl Factor {
    /// Build the factor for `pool` observed as `outcome` under `model`.
    pub fn new<M: ResponseModel<Outcome = bool>>(
        pool: &BigState,
        outcome: bool,
        model: &M,
    ) -> Factor {
        let members: Vec<u32> = pool.subjects().map(|i| i as u32).collect();
        let n = members.len() as u32;
        let table = (0..=n)
            .map(|k| model.likelihood(outcome, k, n).max(MIN_LIKELIHOOD))
            .collect();
        Factor {
            members,
            outcome,
            table,
            words: pool.words().to_vec(),
        }
    }

    /// The pool as a [`BigState`].
    pub fn pool(&self) -> BigState {
        BigState::from_words(self.words.clone())
    }

    /// The pool's bit-words.
    pub fn pool_words(&self) -> &[u64] {
        &self.words
    }

    /// Pool size.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// The Poisson-binomial count distribution of independent Bernoulli bits
/// `probs`: returns `d` with `d[k] = P(k of them are 1)`. The sequential
/// convolution every BP message pass builds its prefix/suffix tables from.
pub fn count_distribution(probs: &[f64]) -> Vec<f64> {
    let mut d = vec![0.0; probs.len() + 1];
    d[0] = 1.0;
    for (t, &p) in probs.iter().enumerate() {
        // In-place backward update keeps one allocation for the whole pass.
        for k in (0..=t).rev() {
            let stay = d[k] * (1.0 - p);
            d[k + 1] += d[k] * p;
            d[k] = stay;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_response::BinaryDilutionModel;

    #[test]
    fn factor_tables_are_floored_and_sized() {
        let pool = BigState::from_subjects([0, 70, 130]);
        let model = BinaryDilutionModel::pcr_like();
        let f = Factor::new(&pool, true, &model);
        assert_eq!(f.members, vec![0, 70, 130]);
        assert_eq!(f.table.len(), 4);
        assert!(f.table.iter().all(|&v| v >= MIN_LIKELIHOOD));
        assert_eq!(f.pool(), pool);
        assert_eq!(f.size(), 3);
    }

    #[test]
    fn count_distribution_matches_hand_rolled_cases() {
        let d = count_distribution(&[]);
        assert_eq!(d, vec![1.0]);
        let d = count_distribution(&[0.5, 0.5]);
        for (got, want) in d.iter().zip([0.25, 0.5, 0.25]) {
            assert!((got - want).abs() < 1e-12);
        }
        // Sums to one for arbitrary probabilities.
        let probs = [0.1, 0.7, 0.3, 0.9, 0.02];
        let d = count_distribution(&probs);
        assert_eq!(d.len(), 6);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Mean equals the sum of probabilities.
        let mean: f64 = d.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        assert!((mean - probs.iter().sum::<f64>()).abs() < 1e-12);
    }
}
