//! Sequential Monte Carlo particle posterior.
//!
//! The posterior over the cohort's `2^N` infection hypotheses is carried by
//! `P` weighted N-bit particles. Each observed pooled test multiplies every
//! particle's weight by the response-model likelihood of the outcome at
//! that particle's pool count; when the effective sample size collapses
//! below the configured fraction, the cloud is systematically resampled
//! and each particle takes a few Metropolis single-bit-flip rejuvenation
//! moves against the full (prior × observed-factor) posterior, restoring
//! diversity without changing the target distribution. Marginals are
//! weighted bit frequencies.
//!
//! Everything random flows through one seeded [`SessionRng`]
//! (xoshiro256**), drawn in a fixed order, so a run is **bit-for-bit
//! reproducible from `(seed, config)`** — and because the `SBGTSNAP`
//! particle block carries the particle words, log-weights, and the RNG
//! state verbatim, reproducibility holds across snapshot/restore too.

use std::sync::Arc;

use sbgt_bayes::{classify_marginals, BayesError, CohortClassification};
use sbgt_engine::obs::{SpanKind, SpanMeta, SpanRecorder, TraceLevel};
use sbgt_lattice::BigState;
use sbgt_response::BinaryOutcomeModel;

use sbgt::{
    ApproxKind, ApproxSnapshot, ConfigError, ParticleBlock, RoundStep, SbgtConfig, SessionOutcome,
    SessionSnapshot, SnapshotError,
};

use crate::bp::{logit, validate_risks};
use crate::factor::Factor;
use crate::rng::SessionRng;
use crate::select::select_stage_marginals;

/// Tuning for the particle posterior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParticleConfig {
    /// Cloud size `P`.
    pub particles: usize,
    /// Resample when the effective sample size drops below
    /// `ess_frac × P`, in `(0, 1]`.
    pub ess_frac: f64,
    /// Metropolis bit-flip rejuvenation moves per particle after each
    /// resample (`0` disables rejuvenation).
    pub moves: u32,
    /// RNG seed; the whole run is a deterministic function of this plus
    /// the cohort spec.
    pub seed: u64,
}

impl Default for ParticleConfig {
    fn default() -> Self {
        ParticleConfig {
            particles: 2048,
            ess_frac: 0.5,
            moves: 4,
            seed: 0x5B67_7E57,
        }
    }
}

impl ParticleConfig {
    /// Validate every knob; [`ConfigError::InvalidArgument`] names the
    /// first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.particles == 0 {
            return Err(ConfigError::InvalidArgument(
                "particle count must be at least 1".into(),
            ));
        }
        if !(self.ess_frac > 0.0 && self.ess_frac <= 1.0) {
            return Err(ConfigError::InvalidArgument(format!(
                "ESS fraction {} must be in (0, 1]",
                self.ess_frac
            )));
        }
        Ok(())
    }
}

/// A surveillance session whose posterior is a weighted particle cloud.
/// Memory is O(particles × N/64 + Σ pool sizes): nothing `2^N`-sized
/// exists at any point.
pub struct ParticleSession<M> {
    risks: Vec<f64>,
    prior_logit: Vec<f64>,
    model: M,
    config: SbgtConfig,
    pcfg: ParticleConfig,
    words_per_particle: usize,
    /// Particle bit-words, particle-major: particle `p` owns
    /// `words[p*wpp .. (p+1)*wpp]`.
    words: Vec<u64>,
    log_weights: Vec<f64>,
    factors: Vec<Factor>,
    /// Factor indices touching each subject, for O(degree) rejuvenation
    /// deltas. Rebuilt from `factors` on restore.
    subject_factors: Vec<Vec<u32>>,
    rng: SessionRng,
    stages: usize,
    /// Telemetry sink and the cohort id stamped on every span. `None`
    /// (the default) records nothing; [`Self::attach_obs`] opts in.
    obs: Option<(Arc<SpanRecorder>, u64)>,
}

impl<M: BinaryOutcomeModel> ParticleSession<M> {
    /// Open a session: the cloud is initialized by sampling every
    /// specimen's bit from its prior risk, particle-major and
    /// subject-ascending, so the initial cloud is a deterministic function
    /// of `(seed, risks)`.
    pub fn new(
        risks: &[f64],
        model: M,
        config: SbgtConfig,
        pcfg: ParticleConfig,
    ) -> Result<Self, ConfigError> {
        validate_risks(risks)?;
        config.validate()?;
        pcfg.validate()?;
        let n = risks.len();
        let wpp = n.div_ceil(64);
        let mut rng = SessionRng::seed_from(pcfg.seed);
        let mut words = vec![0u64; pcfg.particles * wpp];
        for p in 0..pcfg.particles {
            for (i, &r) in risks.iter().enumerate() {
                if rng.bernoulli(r) {
                    words[p * wpp + i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        Ok(ParticleSession {
            prior_logit: risks.iter().map(|&r| logit(r)).collect(),
            risks: risks.to_vec(),
            model,
            config,
            pcfg,
            words_per_particle: wpp,
            words,
            log_weights: vec![0.0; pcfg.particles],
            factors: Vec::new(),
            subject_factors: vec![Vec::new(); n],
            rng,
            stages: 0,
            obs: None,
        })
    }

    /// Attach a telemetry recorder; every subsequent round emits
    /// `session:*` spans tagged with `cohort`.
    pub fn attach_obs(&mut self, recorder: Arc<SpanRecorder>, cohort: u64) {
        self.obs = Some((recorder, cohort));
    }

    /// Whether a telemetry recorder is attached (used for lazy attach).
    pub fn has_obs(&self) -> bool {
        self.obs.is_some()
    }

    fn obs_at(&self, min: TraceLevel) -> Option<(Arc<SpanRecorder>, u64)> {
        match &self.obs {
            Some((rec, cohort)) if rec.enabled_at(min) => Some((Arc::clone(rec), *cohort)),
            _ => None,
        }
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        self.risks.len()
    }

    /// The session configuration.
    pub fn config(&self) -> &SbgtConfig {
        &self.config
    }

    /// The particle tuning.
    pub fn particle_config(&self) -> &ParticleConfig {
        &self.pcfg
    }

    /// Completed stages (lab rounds).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Total pooled tests observed.
    pub fn tests_performed(&self) -> usize {
        self.factors.len()
    }

    /// Pool count for particle `p`: `|particle ∩ pool|` over the shared
    /// words.
    fn pool_count(&self, p: usize, pool_words: &[u64]) -> usize {
        let base = p * self.words_per_particle;
        pool_words
            .iter()
            .zip(&self.words[base..base + self.words_per_particle])
            .map(|(pw, sw)| (pw & sw).count_ones() as usize)
            .sum()
    }

    fn bit(&self, p: usize, i: usize) -> bool {
        self.words[p * self.words_per_particle + i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Exp-normalized weights (max-subtracted for stability). Dead clouds
    /// (all weights at `-∞`) cannot arise: likelihood tables are floored.
    fn normalized_weights(&self) -> Vec<f64> {
        let max = self
            .log_weights
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let mut w: Vec<f64> = self
            .log_weights
            .iter()
            .map(|&lw| (lw - max).exp())
            .collect();
        let total: f64 = w.iter().sum();
        for v in &mut w {
            *v /= total;
        }
        w
    }

    /// Per-specimen posterior marginals: weighted bit frequencies.
    pub fn marginals(&self) -> Vec<f64> {
        let w = self.normalized_weights();
        let n = self.n_subjects();
        let mut m = vec![0.0; n];
        for (p, &wp) in w.iter().enumerate() {
            if wp == 0.0 {
                continue;
            }
            let base = p * self.words_per_particle;
            for (i, mi) in m.iter_mut().enumerate() {
                if self.words[base + i / 64] & (1u64 << (i % 64)) != 0 {
                    *mi += wp;
                }
            }
        }
        for v in &mut m {
            *v = v.clamp(0.0, 1.0);
        }
        m
    }

    /// Classification under the configured rule.
    pub fn classify(&self) -> CohortClassification {
        classify_marginals(&self.marginals(), self.config.rule)
    }

    /// Ingest one observed pooled test (counted as one stage). Returns the
    /// predictive probability of the outcome under the pre-update cloud —
    /// the approximate model evidence.
    pub fn observe(&mut self, pool: &BigState, outcome: bool) -> Result<f64, BayesError> {
        let z = self.push_observation(pool, outcome)?;
        self.stages += 1;
        Ok(z)
    }

    /// Ingest one stage of observed pools (counted as one stage).
    pub fn observe_stage(&mut self, observations: &[(BigState, bool)]) -> Result<f64, BayesError> {
        let mut z = 1.0;
        for (pool, outcome) in observations {
            z *= self.push_observation(pool, *outcome)?;
        }
        if !observations.is_empty() {
            self.stages += 1;
        }
        Ok(z)
    }

    fn push_observation(&mut self, pool: &BigState, outcome: bool) -> Result<f64, BayesError> {
        if pool.is_empty() {
            return Err(BayesError::EmptyPool);
        }
        assert!(
            pool.subjects().all(|i| i < self.n_subjects()),
            "pool subject out of range for cohort of {}",
            self.n_subjects()
        );
        let factor = Factor::new(pool, outcome, &self.model);
        let pool_words = pool.words().to_vec();
        // Predictive evidence under the pre-update weights.
        let w = self.normalized_weights();
        let counts: Vec<usize> = (0..self.pcfg.particles)
            .map(|p| self.pool_count(p, &pool_words))
            .collect();
        let mut z = 0.0;
        for ((&wp, lw), &k) in w.iter().zip(self.log_weights.iter_mut()).zip(&counts) {
            z += wp * factor.table[k];
            *lw += factor.table[k].ln();
        }
        let a = self.factors.len() as u32;
        for &i in &factor.members {
            self.subject_factors[i as usize].push(a);
        }
        self.factors.push(factor);
        self.maybe_resample();
        Ok(z)
    }

    /// Effective sample size of the current weights.
    pub fn ess(&self) -> f64 {
        let w = self.normalized_weights();
        1.0 / w.iter().map(|&v| v * v).sum::<f64>()
    }

    fn maybe_resample(&mut self) {
        if self.ess() >= self.pcfg.ess_frac * self.pcfg.particles as f64 {
            return;
        }
        self.resample_systematic();
        self.rejuvenate();
    }

    /// Systematic resampling: one uniform draw positions `P` evenly spaced
    /// pointers over the cumulative weights; weights reset to equal.
    fn resample_systematic(&mut self) {
        let p_count = self.pcfg.particles;
        let w = self.normalized_weights();
        let u0 = self.rng.next_f64() / p_count as f64;
        let wpp = self.words_per_particle;
        let mut new_words = vec![0u64; self.words.len()];
        let mut cum = 0.0;
        let mut src = 0usize;
        for j in 0..p_count {
            let u = u0 + j as f64 / p_count as f64;
            while cum + w[src] < u && src + 1 < p_count {
                cum += w[src];
                src += 1;
            }
            new_words[j * wpp..(j + 1) * wpp]
                .copy_from_slice(&self.words[src * wpp..(src + 1) * wpp]);
        }
        self.words = new_words;
        self.log_weights.fill(0.0);
    }

    /// Metropolis single-bit-flip rejuvenation against the full posterior
    /// `prior × ∏ factors`: each accepted flip changes one subject's bit,
    /// with the acceptance ratio computed from the prior logit plus the
    /// likelihood-table ratio of every factor the subject touches.
    fn rejuvenate(&mut self) {
        let n = self.n_subjects();
        for p in 0..self.pcfg.particles {
            for _ in 0..self.pcfg.moves {
                let i = (self.rng.next_u64() % n as u64) as usize;
                let set = self.bit(p, i);
                // Flipping 0→1 adds the prior logit; 1→0 subtracts it.
                let mut delta = if set {
                    -self.prior_logit[i]
                } else {
                    self.prior_logit[i]
                };
                for &a in &self.subject_factors[i] {
                    let f = &self.factors[a as usize];
                    let k = self.pool_count(p, f.pool_words());
                    let k2 = if set { k - 1 } else { k + 1 };
                    delta += (f.table[k2] / f.table[k]).ln();
                }
                let accept = delta >= 0.0 || self.rng.next_f64().ln() < delta;
                if accept {
                    self.words[p * self.words_per_particle + i / 64] ^= 1u64 << (i % 64);
                }
            }
        }
    }

    /// Drive the session to classification against a lab oracle.
    pub fn run_to_classification(
        &mut self,
        mut lab: impl FnMut(&BigState) -> bool,
    ) -> SessionOutcome {
        loop {
            if let RoundStep::Finished(outcome) = self.run_round(&mut lab) {
                return outcome;
            }
        }
    }

    /// Drive exactly one round: classify, select the stage's pools via the
    /// marginal halving search, run them through `lab`, ingest the
    /// outcomes. The unit a multi-cohort service schedules.
    pub fn run_round(&mut self, mut lab: impl FnMut(&BigState) -> bool) -> RoundStep {
        let obs = self
            .obs_at(TraceLevel::Spans)
            .map(|(rec, cohort)| (Arc::clone(&rec), cohort, rec.now_ns()));
        let step = self.round_inner(&mut lab);
        if let Some((rec, cohort, start)) = obs {
            let name = rec.intern("session:round");
            let mut meta = SpanMeta::for_cohort(cohort);
            meta.failed =
                matches!(&step, RoundStep::Finished(o) if !o.classification.is_terminal());
            rec.record_span_ending_now(SpanKind::Round, name, start, meta);
        }
        step
    }

    /// Record `name` as a `Phase` span covering `start..now` when phase
    /// tracing ([`TraceLevel::Full`]) is live.
    fn obs_phase(&self, name: &str, start: Option<u64>) {
        if let (Some((rec, cohort)), Some(start)) = (self.obs_at(TraceLevel::Full), start) {
            let name = rec.intern(name);
            rec.record_span_ending_now(SpanKind::Phase, name, start, SpanMeta::for_cohort(cohort));
        }
    }

    /// Timestamp for the next [`Self::obs_phase`] call, `None` when phase
    /// tracing is off (so untraced rounds never read the clock).
    fn obs_phase_start(&self) -> Option<u64> {
        self.obs_at(TraceLevel::Full).map(|(rec, _)| rec.now_ns())
    }

    fn round_inner(&mut self, lab: &mut impl FnMut(&BigState) -> bool) -> RoundStep {
        // One marginals pass feeds classification, the candidate ordering,
        // and selection for the whole round.
        let t = self.obs_phase_start();
        let marginals = self.marginals();
        let classification = classify_marginals(&marginals, self.config.rule);
        self.obs_phase("session:marginals", t);
        if classification.is_terminal() || self.stages >= self.config.max_stages {
            return RoundStep::Finished(self.outcome(classification, &marginals));
        }
        let t = self.obs_phase_start();
        let mut order = classification.undetermined();
        order.sort_by(|&a, &b| marginals[a].total_cmp(&marginals[b]).then(a.cmp(&b)));
        let selections = select_stage_marginals(
            &order,
            &marginals,
            self.config.max_pool_size,
            self.config.stage_width,
        );
        self.obs_phase("session:select", t);
        if selections.is_empty() {
            return RoundStep::Finished(self.outcome(classification, &marginals));
        }
        let t = self.obs_phase_start();
        let observations: Vec<(BigState, bool)> = selections
            .into_iter()
            .map(|s| {
                let outcome = lab(&s.pool);
                (s.pool, outcome)
            })
            .collect();
        if self.observe_stage(&observations).is_err() {
            self.obs_phase("session:observe", t);
            let classification = self.classify();
            let marginals = self.marginals();
            return RoundStep::Finished(self.outcome(classification, &marginals));
        }
        self.obs_phase("session:observe", t);
        RoundStep::Progressed
    }

    fn outcome(&self, classification: CohortClassification, marginals: &[f64]) -> SessionOutcome {
        SessionOutcome {
            tests: self.factors.len(),
            stages: self.stages,
            subjects: self.n_subjects(),
            classification,
            marginals: marginals.to_vec(),
        }
    }

    /// Capture the session for checkpoint/restore: the observation history
    /// plus the particle block (bit-words, log-weights, RNG state)
    /// verbatim, so a restored session continues the exact sample path.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            n_subjects: self.n_subjects(),
            shards: Vec::new(),
            total: 1.0,
            history: Vec::new(),
            stages: self.stages,
            marginals: Vec::new(),
            pending_selection: None,
            sparse: None,
            approx: Some(ApproxSnapshot {
                kind: ApproxKind::Particle,
                history: self
                    .factors
                    .iter()
                    .map(|f| (f.members.clone(), f.outcome))
                    .collect(),
                particles: Some(ParticleBlock {
                    words_per_particle: self.words_per_particle,
                    words: self.words.clone(),
                    log_weights: self.log_weights.clone(),
                    rng: self.rng.state(),
                }),
            }),
        }
    }

    /// Rehydrate from a snapshot. The risks, model, and configs are not
    /// part of the snapshot (they are the cohort's static spec) and are
    /// supplied by the caller; the cloud and RNG resume bit-for-bit.
    pub fn restore(
        snapshot: &SessionSnapshot,
        risks: &[f64],
        model: M,
        config: SbgtConfig,
        pcfg: ParticleConfig,
    ) -> Result<Self, SnapshotError> {
        snapshot.validate()?;
        let Some(ap) = &snapshot.approx else {
            return Err(SnapshotError::Corrupt(
                "exact snapshot cannot restore a particle session".into(),
            ));
        };
        if ap.kind != ApproxKind::Particle {
            return Err(SnapshotError::Corrupt(
                "BP snapshot cannot restore a particle session".into(),
            ));
        }
        let block = ap.particles.as_ref().expect("validated particle block");
        if snapshot.n_subjects != risks.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot holds {} subjects, caller supplied {} risks",
                snapshot.n_subjects,
                risks.len()
            )));
        }
        if block.log_weights.len() != pcfg.particles {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot holds {} particles, config asks for {}",
                block.log_weights.len(),
                pcfg.particles
            )));
        }
        let rng = SessionRng::from_state(block.rng)
            .ok_or_else(|| SnapshotError::Corrupt("all-zero RNG state".into()))?;
        let mut session = ParticleSession::new(risks, model, config, pcfg)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        session.factors = Vec::with_capacity(ap.history.len());
        session.subject_factors = vec![Vec::new(); risks.len()];
        for (members, outcome) in &ap.history {
            let pool = BigState::from_subjects(members.iter().map(|&i| i as usize));
            let a = session.factors.len() as u32;
            for &i in members {
                session.subject_factors[i as usize].push(a);
            }
            session
                .factors
                .push(Factor::new(&pool, *outcome, &session.model));
        }
        session.words = block.words.clone();
        session.log_weights = block.log_weights.clone();
        session.rng = rng;
        session.stages = snapshot.stages;
        Ok(session)
    }
}

impl<M: BinaryOutcomeModel> sbgt::SurveillanceSession for ParticleSession<M> {
    type Pool = BigState;
    type Ctx = ();

    fn n_subjects(&self) -> usize {
        ParticleSession::n_subjects(self)
    }

    fn stages(&self) -> usize {
        self.stages
    }

    fn tests_performed(&self) -> usize {
        self.factors.len()
    }

    fn marginals(&self) -> Vec<f64> {
        ParticleSession::marginals(self)
    }

    fn classify(&self) -> CohortClassification {
        ParticleSession::classify(self)
    }

    fn observe_in(&mut self, _ctx: &(), pool: BigState, outcome: bool) -> Result<f64, BayesError> {
        self.observe(&pool, outcome)
    }

    fn run_round_in(&mut self, _ctx: &(), lab: &mut dyn FnMut(&BigState) -> bool) -> RoundStep {
        self.run_round(lab)
    }

    fn snapshot(&self) -> SessionSnapshot {
        ParticleSession::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_response::BinaryDilutionModel;

    fn risks(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.02 + 0.01 * (i % 7) as f64).collect()
    }

    fn small_cfg() -> ParticleConfig {
        ParticleConfig {
            particles: 512,
            ..ParticleConfig::default()
        }
    }

    fn session(n: usize) -> ParticleSession<BinaryDilutionModel> {
        ParticleSession::new(
            &risks(n),
            BinaryDilutionModel::pcr_like(),
            SbgtConfig::default().serial(),
            small_cfg(),
        )
        .unwrap()
    }

    #[test]
    fn constructor_validates_everything() {
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default().serial();
        assert!(ParticleSession::new(&[], model, cfg, small_cfg()).is_err());
        assert!(ParticleSession::new(&[1.5], model, cfg, small_cfg()).is_err());
        let zero = ParticleConfig {
            particles: 0,
            ..ParticleConfig::default()
        };
        assert!(ParticleSession::new(&[0.1], model, cfg, zero).is_err());
        let bad_ess = ParticleConfig {
            ess_frac: 0.0,
            ..ParticleConfig::default()
        };
        assert!(ParticleSession::new(&[0.1], model, cfg, bad_ess).is_err());
    }

    #[test]
    fn prior_marginals_track_the_risks() {
        let s = session(10);
        for (m, r) in s.marginals().iter().zip(risks(10)) {
            // 512 particles: Monte Carlo error on a Bernoulli(≤0.08) mean.
            assert!((m - r).abs() < 0.05, "prior marginal {m} vs risk {r}");
        }
        assert!((s.ess() - 512.0).abs() < 1e-9, "uniform weights → ESS = P");
    }

    #[test]
    fn same_seed_is_bit_for_bit_reproducible() {
        let truth = BigState::from_subjects([3, 11]);
        let mut a = session(16);
        let mut b = session(16);
        let oa = a.run_to_classification(|pool| truth.intersects(pool));
        let ob = b.run_to_classification(|pool| truth.intersects(pool));
        assert_eq!(oa.marginals, ob.marginals, "same (seed, config) must agree");
        assert_eq!(oa.tests, ob.tests);
        assert_eq!(a.words, b.words);
        assert_eq!(a.rng.state(), b.rng.state());
        // A different seed takes a different sample path.
        let mut c = ParticleSession::new(
            &risks(16),
            BinaryDilutionModel::pcr_like(),
            SbgtConfig::default().serial(),
            ParticleConfig {
                seed: 999,
                ..small_cfg()
            },
        )
        .unwrap();
        c.run_to_classification(|pool| truth.intersects(pool));
        assert_ne!(a.words, c.words);
    }

    #[test]
    fn positive_singleton_observation_moves_the_marginal() {
        let mut s = session(8);
        let pool = BigState::from_subjects([2]);
        let z = s.observe(&pool, true).unwrap();
        assert!(z > 0.0 && z < 1.0, "evidence {z} must be a probability");
        let m = s.marginals();
        assert!(
            m[2] > 0.5,
            "positive singleton test must implicate subject 2, got {}",
            m[2]
        );
    }

    #[test]
    fn resampling_restores_ess() {
        let mut s = session(12);
        // Hammer one subject with repeated positive singletons: weights
        // concentrate, ESS collapses, resampling + rejuvenation kicks in.
        let pool = BigState::from_subjects([5]);
        for _ in 0..6 {
            s.observe(&pool, true).unwrap();
        }
        assert!(
            s.ess() >= s.particle_config().ess_frac * 512.0 * 0.5,
            "ESS {} should have been restored by resampling",
            s.ess()
        );
        assert!(s.marginals()[5] > 0.9);
    }

    #[test]
    fn snapshot_restore_continues_the_exact_sample_path() {
        let truth = BigState::from_subjects([1, 9]);
        // Reference: run straight through.
        let mut reference = session(12);
        for _ in 0..2 {
            reference.run_round(|pool| truth.intersects(pool));
        }
        let snap = reference.snapshot();
        let bytes = snap.to_bytes();
        let decoded = SessionSnapshot::from_bytes(&bytes).unwrap();
        let mut restored = ParticleSession::restore(
            &decoded,
            &risks(12),
            BinaryDilutionModel::pcr_like(),
            SbgtConfig::default().serial(),
            small_cfg(),
        )
        .unwrap();
        assert_eq!(restored.words, reference.words);
        assert_eq!(restored.log_weights, reference.log_weights);
        assert_eq!(restored.rng.state(), reference.rng.state());
        let a = reference.run_to_classification(|pool| truth.intersects(pool));
        let b = restored.run_to_classification(|pool| truth.intersects(pool));
        assert_eq!(a.marginals, b.marginals, "restored path must not diverge");
        assert_eq!(a.tests, b.tests);
        assert_eq!(a.classification, b.classification);
    }

    #[test]
    fn restore_rejects_mismatched_spec() {
        let s = session(8);
        let snap = s.snapshot();
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default().serial();
        assert!(ParticleSession::restore(&snap, &risks(9), model, cfg, small_cfg()).is_err());
        let wrong_count = ParticleConfig {
            particles: 64,
            ..ParticleConfig::default()
        };
        assert!(ParticleSession::restore(&snap, &risks(8), model, cfg, wrong_count).is_err());
    }

    #[test]
    fn empty_pool_is_a_typed_error() {
        let mut s = session(4);
        assert!(matches!(
            s.observe(&BigState::empty(), true),
            Err(BayesError::EmptyPool)
        ));
    }
}
