//! # sbgt-approx — approximate posteriors beyond the 2^N wall
//!
//! Every exact execution mode in this workspace — dense, sharded, SIMD,
//! sparse — materializes (or starts from) the full `2^N` lattice, capping
//! cohorts at N ≈ 22–24. This crate is the first backend that never
//! allocates anything `2^N`-sized: cohort sizes are limited by memory in
//! *specimens, pools, and particles*, not hypotheses, so N in the hundreds
//! is routine.
//!
//! Two backends share one surface (the [`SurveillanceSession`] trait plus
//! matching inherent APIs):
//!
//! * [`BpSession`] — **loopy belief propagation** on the specimen↔pool
//!   factor graph (Coja-Oghlan et al., *Efficient and accurate group
//!   testing via Belief Propagation*). Variables are specimen infection
//!   bits; every observed pooled test is a factor whose likelihood depends
//!   only on the number of positives in the pool — the same conditional-
//!   independence structure the exact lattice update exploits, here driving
//!   a Poisson-binomial message schedule with damping and a residual
//!   convergence check. A BP session is a pure function of (prior,
//!   history): snapshots carry only the history and restores re-relax,
//!   which makes checkpoint/restore trivially bit-exact.
//! * [`ParticleSession`] — a **sequential Monte Carlo particle posterior**
//!   (Cuturi et al., *Noisy Adaptive Group Testing via Bayesian Sequential
//!   Experimental Design*): N-bit particles, log-weight updates from the
//!   response-model likelihood, effective-sample-size-triggered systematic
//!   resampling, and Metropolis bit-flip rejuvenation — all driven by a
//!   seeded, snapshotable RNG so a run is bit-for-bit reproducible from
//!   `(seed, config)`, including across snapshot/restore.
//!
//! Pools are [`BigState`] word arrays ([`sbgt_lattice::State`] caps at 48
//! subjects); selection is marginal-driven prefix halving with the same
//! tie-break semantics as the exact Bayesian Halving search, evaluated on
//! approximate marginals under an independence approximation.
//!
//! Accuracy against the exact dense reference is pinned by the harness in
//! `tests/accuracy.rs`: ≥ 99% per-specimen classification agreement and an
//! expected-tests gap ≤ 5% across a seeded small-N campaign, for both
//! backends.

pub mod bp;
pub mod factor;
pub mod particle;
pub mod rng;
pub mod select;

pub use bp::{relax_marginals_traced, residual_nanos, BpConfig, BpSession, BpTrace};
pub use factor::{Factor, MIN_LIKELIHOOD};
pub use particle::{ParticleConfig, ParticleSession};
pub use rng::SessionRng;
pub use select::{select_halving_marginals, select_stage_marginals, BigSelection};

pub use sbgt::{ApproxKind, ApproxSnapshot, ParticleBlock, RoundStep, SurveillanceSession};
pub use sbgt_lattice::BigState;
