//! Marginal-driven halving selection over [`BigState`] pools.
//!
//! The exact Bayesian Halving search scores a candidate pool `A` by the
//! posterior mass of its all-negative down-set and picks the prefix (in
//! ascending-marginal order) closest to mass ½. Beyond the `2^N` wall there
//! is no down-set to sum, so the approximate backends score the same
//! prefix candidates under an independence approximation: the probability
//! that the first `k` ordered subjects are all negative is
//! `∏_{i<k} (1 − m_i)` over the approximate marginals `m_i`. For the
//! concentrated, near-independent posteriors group testing produces this
//! tracks the exact negative mass closely (the accuracy harness pins how
//! closely, end to end).
//!
//! Tie-breaking mirrors `sbgt_select::halving::Selection::better_than` —
//! distances within [`DISTANCE_EPS`] are ties, resolved toward the smaller
//! pool — so the approximate search degrades into the exact one's
//! preferences, not a different policy.

use sbgt_lattice::BigState;

/// Distances within this epsilon count as ties (same value as the exact
/// halving search).
pub const DISTANCE_EPS: f64 = 1e-12;

/// A selected pool with its approximate all-negative mass.
#[derive(Debug, Clone, PartialEq)]
pub struct BigSelection {
    /// The pool to test.
    pub pool: BigState,
    /// Approximate probability the pool is all-negative.
    pub negative_mass: f64,
    /// `|negative_mass − ½|`, the halving objective.
    pub distance: f64,
}

/// Pick the prefix of `order` (ascending-marginal candidate ordering)
/// whose approximate all-negative mass is closest to ½, capped at
/// `max_pool_size`. Returns `None` when `order` is empty.
pub fn select_halving_marginals(
    order: &[usize],
    marginals: &[f64],
    max_pool_size: usize,
) -> Option<BigSelection> {
    if order.is_empty() || max_pool_size == 0 {
        return None;
    }
    let mut best: Option<(usize, f64, f64)> = None; // (k, mass, distance)
    let mut mass = 1.0f64;
    for (idx, &subject) in order.iter().enumerate().take(max_pool_size) {
        mass *= 1.0 - marginals[subject];
        let distance = (mass - 0.5).abs();
        // Strict improvement beyond the epsilon replaces; ascending-k
        // iteration makes ties keep the earlier (smaller) pool, matching
        // the exact search's rank tie-break.
        let better = match best {
            None => true,
            Some((_, _, best_distance)) => distance < best_distance - DISTANCE_EPS,
        };
        if better {
            best = Some((idx + 1, mass, distance));
        }
    }
    best.map(|(k, negative_mass, distance)| BigSelection {
        pool: BigState::from_subjects(order[..k].iter().copied()),
        negative_mass,
        distance,
    })
}

/// Select up to `width` disjoint pools for one lab round: each subsequent
/// pool runs the same halving search over the subjects the earlier pools
/// did not claim — look-ahead over the approximate marginals, with the
/// stage's pools testable concurrently because they are disjoint.
pub fn select_stage_marginals(
    order: &[usize],
    marginals: &[f64],
    max_pool_size: usize,
    width: usize,
) -> Vec<BigSelection> {
    let mut selections = Vec::new();
    let mut remaining: Vec<usize> = order.to_vec();
    for _ in 0..width {
        let Some(sel) = select_halving_marginals(&remaining, marginals, max_pool_size) else {
            break;
        };
        let taken = sel.pool.rank() as usize;
        remaining.drain(..taken);
        selections.push(sel);
        if remaining.is_empty() {
            break;
        }
    }
    selections
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_prefix_closest_to_half() {
        // Marginals 0.2 each: masses 0.8, 0.64, 0.512, 0.4096 — the 3-prefix
        // is closest to ½.
        let marginals = vec![0.2; 8];
        let order: Vec<usize> = (0..8).collect();
        let sel = select_halving_marginals(&order, &marginals, 16).unwrap();
        assert_eq!(sel.pool.rank(), 3);
        assert!((sel.negative_mass - 0.512).abs() < 1e-12);
        assert!((sel.distance - 0.012).abs() < 1e-12);
    }

    #[test]
    fn respects_the_pool_cap_and_empty_order() {
        let marginals = vec![0.01; 64];
        let order: Vec<usize> = (0..64).collect();
        // Tiny marginals want a huge pool; the cap binds.
        let sel = select_halving_marginals(&order, &marginals, 16).unwrap();
        assert_eq!(sel.pool.rank(), 16);
        assert!(select_halving_marginals(&[], &marginals, 16).is_none());
        assert!(select_halving_marginals(&order, &marginals, 0).is_none());
    }

    #[test]
    fn ties_keep_the_smaller_pool() {
        // A subject with marginal ~1.0 makes every following prefix mass
        // identical (0.0): the first prefix reaching it must win.
        let marginals = vec![0.5, 1.0 - 1e-15, 0.3, 0.3];
        let order: Vec<usize> = (0..4).collect();
        let sel = select_halving_marginals(&order, &marginals, 4).unwrap();
        assert_eq!(sel.pool.rank(), 1, "tie at distance ½ resolves small");
    }

    #[test]
    fn stage_pools_are_disjoint_and_ordered() {
        let marginals = vec![0.2; 12];
        let order: Vec<usize> = (0..12).collect();
        let stage = select_stage_marginals(&order, &marginals, 16, 3);
        assert_eq!(stage.len(), 3);
        let mut seen = BigState::empty();
        for sel in &stage {
            assert!(!seen.intersects(&sel.pool), "stage pools overlap");
            for s in sel.pool.subjects() {
                seen.insert(s);
            }
        }
        assert_eq!(seen.rank(), 9, "three 3-prefixes of identical marginals");
        // Width beyond the candidate supply stops early.
        let wide = select_stage_marginals(&order[..4], &marginals, 16, 8);
        assert!(wide.len() < 8);
    }
}
