//! A seeded, snapshotable RNG for the particle backend.
//!
//! The vendored `rand` crate's `StdRng` does not expose its internal state,
//! so a session using it could not checkpoint mid-stream and resume the
//! exact sample path. The particle posterior's determinism contract —
//! bit-for-bit reproducible from `(seed, config)`, including across
//! snapshot/restore — therefore rides on this small in-crate generator:
//! xoshiro256** (Blackman & Vigna), seeded through SplitMix64, with its
//! four state words exposed for the `SBGTSNAP` particle block.

/// xoshiro256** with snapshotable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRng {
    s: [u64; 4],
}

impl SessionRng {
    /// Seed via SplitMix64, the recommended initializer (never produces the
    /// all-zero state).
    pub fn seed_from(seed: u64) -> SessionRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SessionRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Rehydrate from snapshotted state words. The all-zero state is the
    /// generator's unique fixed point and cannot arise from
    /// [`Self::seed_from`]; `None` flags it as corrupt.
    pub fn from_state(s: [u64; 4]) -> Option<SessionRng> {
        if s == [0; 4] {
            return None;
        }
        Some(SessionRng { s })
    }

    /// The state words, for snapshots.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SessionRng::seed_from(42);
        let mut b = SessionRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SessionRng::seed_from(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = SessionRng::seed_from(7);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SessionRng::from_state(a.state()).unwrap();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_state_is_rejected() {
        assert!(SessionRng::from_state([0; 4]).is_none());
        assert_ne!(SessionRng::seed_from(0).state(), [0; 4]);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_is_not_degenerate() {
        let mut rng = SessionRng::seed_from(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
