//! The Bayesian posterior update.
//!
//! Observing outcome `y` of a pooled test on pool `A` multiplies each
//! state's mass by the likelihood `f(y | |s ∩ A|, |A|)` and renormalizes.
//! This is the "lattice-model manipulation" operation class of the SBGT
//! paper — the `Θ(2^N)` workhorse. The implementations here fuse the
//! multiply with the normalization sum (one pass instead of three:
//! multiply, sum, scale becomes multiply+sum, scale) and delegate the
//! per-state likelihood to a `|A|+1`-entry broadcast table.

use sbgt_lattice::kernels::{self, ParConfig};
use sbgt_lattice::{DensePosterior, SparsePosterior, State};
use sbgt_response::ResponseModel;

/// One observed pooled test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation<O> {
    /// The tested pool (set of subject indices).
    pub pool: State,
    /// The assay outcome.
    pub outcome: O,
}

impl<O> Observation<O> {
    /// Convenience constructor.
    pub fn new(pool: State, outcome: O) -> Self {
        Observation { pool, outcome }
    }
}

/// Errors from posterior updates.
#[derive(Debug, Clone, PartialEq)]
pub enum BayesError {
    /// The observation has zero likelihood under every state with posterior
    /// mass — the posterior would be identically zero. For a dense
    /// posterior this only happens with degenerate (0/1-probability)
    /// response models; for a pruned sparse posterior it can also mean the
    /// truth was pruned away.
    ImpossibleObservation,
    /// An empty pool was tested.
    EmptyPool,
}

impl std::fmt::Display for BayesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BayesError::ImpossibleObservation => {
                write!(f, "observation impossible under current posterior")
            }
            BayesError::EmptyPool => write!(f, "pool must contain at least one subject"),
        }
    }
}

impl std::error::Error for BayesError {}

fn likelihood_table<M: ResponseModel>(
    model: &M,
    obs: &Observation<M::Outcome>,
) -> Result<Vec<f64>, BayesError> {
    let pool_size = obs.pool.rank();
    if pool_size == 0 {
        return Err(BayesError::EmptyPool);
    }
    Ok(model.likelihood_table(obs.outcome, pool_size))
}

/// Serial dense update. Returns the model evidence
/// `P(y | data so far) = Σ_s π(s) f(y | ...)` (the pre-normalization total).
pub fn update_dense<M: ResponseModel>(
    posterior: &mut DensePosterior,
    model: &M,
    obs: &Observation<M::Outcome>,
) -> Result<f64, BayesError> {
    let table = likelihood_table(model, obs)?;
    let z = posterior.mul_likelihood_fused(obs.pool, &table);
    if !(z.is_finite() && z > 0.0) {
        return Err(BayesError::ImpossibleObservation);
    }
    let inv = 1.0 / z;
    for p in posterior.probs_mut() {
        *p *= inv;
    }
    Ok(z)
}

/// Parallel dense update (rayon chunk kernels). Same contract as
/// [`update_dense`].
pub fn update_dense_par<M: ResponseModel>(
    posterior: &mut DensePosterior,
    model: &M,
    obs: &Observation<M::Outcome>,
    cfg: ParConfig,
) -> Result<f64, BayesError> {
    let table = likelihood_table(model, obs)?;
    let z = kernels::par_mul_likelihood_fused(posterior, obs.pool, &table, cfg);
    if !(z.is_finite() && z > 0.0) {
        return Err(BayesError::ImpossibleObservation);
    }
    kernels::par_scale(posterior, 1.0 / z, cfg);
    Ok(z)
}

/// Sparse update with optional re-pruning: after the multiply, the retained
/// vector is rescaled so that `total() + pruned_mass() == 1`, then states
/// whose mass dropped below `prune_epsilon` of the retained total are
/// discarded (pass `0.0` to keep everything).
///
/// The rescale targets `1 - pruned_mass`, not `1`: renormalizing the
/// retained vector alone to 1 after every prune (the pre-fix behavior)
/// silently re-inflates the discarded share back into the retained states
/// while `pruned_mass` keeps growing in stale units, so
/// `total() + pruned_mass()` drifts above 1 without bound over long
/// sessions. With the conservation rescale the pruned record stays in the
/// same units as the live vector and the invariant holds exactly after
/// every round; at `prune_epsilon = 0` nothing is ever pruned and this
/// degenerates to the plain normalize-to-1 of the dense path.
pub fn update_sparse<M: ResponseModel>(
    posterior: &mut SparsePosterior,
    model: &M,
    obs: &Observation<M::Outcome>,
    prune_epsilon: f64,
) -> Result<f64, BayesError> {
    let table = likelihood_table(model, obs)?;
    update_sparse_with_table(posterior, obs.pool, &table, prune_epsilon)
}

/// [`update_sparse`] with the likelihood table already materialized. The
/// engine-backed sparse round builds the table driver-side (it only depends
/// on the outcome and pool size) so the retried stage closure captures plain
/// `Send + Sync` data instead of the response model.
pub fn update_sparse_with_table(
    posterior: &mut SparsePosterior,
    pool: State,
    table: &[f64],
    prune_epsilon: f64,
) -> Result<f64, BayesError> {
    if pool.rank() == 0 {
        return Err(BayesError::EmptyPool);
    }
    let z = posterior.mul_likelihood_fused(pool, table);
    if !(z.is_finite() && z > 0.0) {
        return Err(BayesError::ImpossibleObservation);
    }
    posterior
        .renormalize_retained()
        .ok_or(BayesError::ImpossibleObservation)?;
    if prune_epsilon > 0.0 {
        // Pruning moves mass from the retained vector into `pruned_mass`
        // one-for-one, so the conservation invariant survives with no
        // further rescale.
        posterior.prune(prune_epsilon);
        if posterior.support() == 0 {
            return Err(BayesError::ImpossibleObservation);
        }
    }
    Ok(z)
}

/// Apply a whole sequence of observations to a dense posterior, returning
/// the accumulated log-evidence `Σ ln Z_t` (the log-likelihood of the data).
pub fn update_dense_sequence<M: ResponseModel>(
    posterior: &mut DensePosterior,
    model: &M,
    observations: &[Observation<M::Outcome>],
) -> Result<f64, BayesError> {
    let mut log_evidence = 0.0;
    for obs in observations {
        log_evidence += update_dense(posterior, model, obs)?.ln();
    }
    Ok(log_evidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_lattice::State;
    use sbgt_response::{BinaryDilutionModel, Dilution, GaussianResponse};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
    }

    fn prior(risks: &[f64]) -> DensePosterior {
        DensePosterior::from_risks(risks)
    }

    #[test]
    fn perfect_negative_pool_clears_members() {
        let mut post = prior(&[0.3, 0.3, 0.3]);
        let model = BinaryDilutionModel::perfect();
        let obs = Observation::new(State::from_subjects([0, 1]), false);
        let z = update_dense(&mut post, &model, &obs).unwrap();
        // Evidence = prior mass of the pool-negative set = 0.7^2.
        assert!(close(z, 0.49));
        let m = post.marginals();
        assert!(close(m[0], 0.0));
        assert!(close(m[1], 0.0));
        assert!(close(m[2], 0.3)); // untested subject unchanged
        assert!(close(post.total(), 1.0));
    }

    #[test]
    fn perfect_positive_pool_raises_members() {
        let mut post = prior(&[0.1, 0.1]);
        let model = BinaryDilutionModel::perfect();
        let obs = Observation::new(State::from_subjects([0]), true);
        update_dense(&mut post, &model, &obs).unwrap();
        let m = post.marginals();
        assert!(close(m[0], 1.0));
        assert!(close(m[1], 0.1));
    }

    #[test]
    fn bayes_rule_hand_computed() {
        // Single subject, imperfect test: classic posterior odds check.
        let mut post = prior(&[0.2]);
        let model = BinaryDilutionModel::new(0.9, 0.95, Dilution::None);
        let obs = Observation::new(State::from_subjects([0]), true);
        let z = update_dense(&mut post, &model, &obs).unwrap();
        // P(+) = 0.2*0.9 + 0.8*0.05 = 0.22
        assert!(close(z, 0.22));
        // P(pos | +) = 0.18 / 0.22
        assert!(close(post.marginals()[0], 0.18 / 0.22));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let risks = [0.05, 0.2, 0.01, 0.4, 0.15, 0.33, 0.08];
        let model = BinaryDilutionModel::pcr_like();
        let obs = [
            Observation::new(State::from_subjects([0, 1, 2, 3]), true),
            Observation::new(State::from_subjects([4, 5]), false),
            Observation::new(State::from_subjects([1]), true),
        ];
        let mut serial = prior(&risks);
        let mut parallel = prior(&risks);
        let cfg = ParConfig {
            chunk_len: 13,
            threshold: 0,
        };
        for o in &obs {
            let zs = update_dense(&mut serial, &model, o).unwrap();
            let zp = update_dense_par(&mut parallel, &model, o, cfg).unwrap();
            assert!(close(zs, zp));
        }
        for (a, b) in serial.probs().iter().zip(parallel.probs()) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn sparse_unpruned_matches_dense() {
        let risks = [0.1, 0.25, 0.4, 0.07];
        let model = BinaryDilutionModel::pcr_like();
        let mut dense = prior(&risks);
        let mut sparse = SparsePosterior::from_dense(&dense, 0.0);
        let obs = Observation::new(State::from_subjects([1, 2]), true);
        let zd = update_dense(&mut dense, &model, &obs).unwrap();
        let zs = update_sparse(&mut sparse, &model, &obs, 0.0).unwrap();
        assert!(close(zd, zs));
        for (a, b) in dense.marginals().iter().zip(sparse.marginals()) {
            assert!(close(*a, b));
        }
    }

    #[test]
    fn sparse_pruning_shrinks_support() {
        let risks = vec![0.02; 12];
        let model = BinaryDilutionModel::pcr_like();
        let mut sparse = SparsePosterior::from_dense(&prior(&risks), 0.0);
        let before = sparse.support();
        let obs = Observation::new(State::from_subjects([0, 1, 2, 3, 4, 5]), false);
        update_sparse(&mut sparse, &model, &obs, 1e-9).unwrap();
        assert!(sparse.support() < before);
        // Conservation, not normalization-to-1: what pruning discarded is
        // still accounted for in pruned_mass.
        assert!(close(sparse.total() + sparse.pruned_mass(), 1.0));
        assert!(sparse.pruned_mass() > 0.0);
    }

    #[test]
    fn sparse_mass_is_conserved_across_many_prune_cycles() {
        // Regression: the pre-fix flow (normalize-to-1, prune, normalize-
        // to-1 again) let total() + pruned_mass() drift above 1 by the
        // accumulated pruned share every round.
        let risks = vec![0.03; 10];
        let model = BinaryDilutionModel::pcr_like();
        let mut sparse = SparsePosterior::from_dense(&prior(&risks), 0.0);
        for t in 0..120u64 {
            let a = (t % 10) as usize;
            let b = ((t * 7 + 3) % 10) as usize;
            let pool = if a == b {
                State::from_subjects([a])
            } else {
                State::from_subjects([a, b])
            };
            let outcome = t % 5 == 0;
            if update_sparse(&mut sparse, &model, &Observation::new(pool, outcome), 1e-6).is_err() {
                break;
            }
            let conserved = sparse.total() + sparse.pruned_mass();
            assert!(
                (conserved - 1.0).abs() < 1e-12,
                "round {t}: total+pruned = {conserved}"
            );
        }
        assert!(sparse.pruned_mass() > 0.0, "campaign never pruned");
    }

    #[test]
    fn impossible_observation_is_error() {
        // Perfect test, pool already proven all-negative, then a positive
        // outcome on the same pool: zero posterior mass everywhere.
        let mut post = prior(&[0.3, 0.3]);
        let model = BinaryDilutionModel::perfect();
        let pool = State::from_subjects([0, 1]);
        update_dense(&mut post, &model, &Observation::new(pool, false)).unwrap();
        let err = update_dense(&mut post, &model, &Observation::new(pool, true)).unwrap_err();
        assert_eq!(err, BayesError::ImpossibleObservation);
    }

    #[test]
    fn empty_pool_is_error() {
        let mut post = prior(&[0.3]);
        let model = BinaryDilutionModel::perfect();
        let err =
            update_dense(&mut post, &model, &Observation::new(State::EMPTY, true)).unwrap_err();
        assert_eq!(err, BayesError::EmptyPool);
    }

    #[test]
    fn order_of_observations_does_not_matter() {
        let risks = [0.1, 0.3, 0.22, 0.18];
        let model = BinaryDilutionModel::pcr_like();
        let a = Observation::new(State::from_subjects([0, 1]), true);
        let b = Observation::new(State::from_subjects([2, 3]), false);
        let mut ab = prior(&risks);
        let mut ba = prior(&risks);
        update_dense(&mut ab, &model, &a).unwrap();
        update_dense(&mut ab, &model, &b).unwrap();
        update_dense(&mut ba, &model, &b).unwrap();
        update_dense(&mut ba, &model, &a).unwrap();
        for (x, y) in ab.probs().iter().zip(ba.probs()) {
            assert!(close(*x, *y));
        }
    }

    #[test]
    fn sequence_log_evidence_accumulates() {
        let risks = [0.2, 0.1];
        let model = BinaryDilutionModel::pcr_like();
        let obs = vec![
            Observation::new(State::from_subjects([0]), true),
            Observation::new(State::from_subjects([1]), false),
        ];
        let mut post = prior(&risks);
        let log_ev = update_dense_sequence(&mut post, &model, &obs).unwrap();
        let mut check = prior(&risks);
        let z1 = update_dense(&mut check, &model, &obs[0]).unwrap();
        let z2 = update_dense(&mut check, &model, &obs[1]).unwrap();
        assert!(close(log_ev, z1.ln() + z2.ln()));
    }

    #[test]
    fn continuous_outcome_update() {
        let mut post = prior(&[0.3, 0.3]);
        let model = GaussianResponse::pcr_like();
        // Strong signal on the pool of both subjects: at least one positive
        // becomes much more likely.
        let obs = Observation::new(State::from_subjects([0, 1]), 11.5);
        update_dense(&mut post, &model, &obs).unwrap();
        let m = post.marginals();
        assert!(m[0] > 0.45, "marginal {}", m[0]);
        assert!(close(post.total(), 1.0));
    }
}
