//! Credible sets over lattice states.
//!
//! Beyond per-subject marginals, a surveillance analyst often wants the
//! *joint* story: the smallest collection of infection patterns that
//! covers, say, 95% of the posterior (a highest-posterior-density set over
//! the lattice). When that set is small the situation is resolved — e.g.
//! "either nobody is positive or it is exactly subject 7" — even if no
//! single marginal has crossed a threshold yet.

use sbgt_lattice::{DensePosterior, State};

/// A highest-posterior-density credible set of states.
#[derive(Debug, Clone, PartialEq)]
pub struct CredibleSet {
    /// States in descending posterior probability.
    pub states: Vec<(State, f64)>,
    /// Total posterior probability covered (≥ the requested level unless
    /// the posterior is degenerate).
    pub coverage: f64,
    /// The requested coverage level.
    pub level: f64,
}

impl CredibleSet {
    /// Number of states needed to reach the coverage level — the "effective
    /// support" of the posterior (1 ⇔ fully resolved).
    pub fn size(&self) -> usize {
        self.states.len()
    }

    /// Whether a state is in the credible set.
    pub fn contains(&self, s: State) -> bool {
        self.states.iter().any(|(t, _)| *t == s)
    }

    /// Subjects positive in *every* credible state — positives you can act
    /// on at this credibility level even before marginal thresholds fire.
    pub fn certain_positives(&self) -> State {
        self.states.iter().fold(
            State::full(64.min(sbgt_lattice::MAX_SUBJECTS)),
            |acc, (s, _)| acc.meet(*s),
        )
    }

    /// Subjects negative in every credible state.
    pub fn certain_negatives(&self, n_subjects: usize) -> State {
        let union = self
            .states
            .iter()
            .fold(State::EMPTY, |acc, (s, _)| acc.join(*s));
        union.complement(n_subjects)
    }
}

/// Compute the HPD credible set at `level` (e.g. `0.95`).
///
/// Greedy by mass: states are taken in descending probability until the
/// cumulative normalized mass reaches `level`. For a degenerate (zero
/// total) posterior, returns an empty set with zero coverage.
///
/// # Panics
/// Panics unless `0 < level <= 1`.
pub fn credible_set(posterior: &DensePosterior, level: f64) -> CredibleSet {
    assert!(level > 0.0 && level <= 1.0, "level {level} outside (0,1]");
    let total = posterior.total();
    if !(total.is_finite() && total > 0.0) {
        return CredibleSet {
            states: Vec::with_capacity(0),
            coverage: 0.0,
            level,
        };
    }
    // Take top states until coverage reached. `top_k` with growing k would
    // re-scan; a single sort of the nonzero support is simpler and this
    // analysis runs off the hot path.
    let mut entries: Vec<(State, f64)> = posterior
        .probs()
        .iter()
        .enumerate()
        .filter(|(_, &p)| p > 0.0)
        .map(|(idx, &p)| (State(idx as u64), p / total))
        .collect();
    entries.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.bits().cmp(&b.0.bits())));
    let mut coverage = 0.0;
    let mut states = Vec::new();
    for (s, p) in entries {
        states.push((s, p));
        coverage += p;
        if coverage >= level - 1e-12 {
            break;
        }
    }
    CredibleSet {
        states,
        coverage,
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_mass_needs_one_state() {
        let mut probs = vec![0.0; 16];
        probs[5] = 1.0;
        let d = DensePosterior::from_probs(4, probs);
        let cs = credible_set(&d, 0.95);
        assert_eq!(cs.size(), 1);
        assert_eq!(cs.states[0].0, State(5));
        assert!((cs.coverage - 1.0).abs() < 1e-12);
        assert!(cs.contains(State(5)));
        assert!(!cs.contains(State(2)));
    }

    #[test]
    fn uniform_needs_level_fraction() {
        let d = DensePosterior::new_uniform(6); // 64 states
        let cs = credible_set(&d, 0.5);
        assert_eq!(cs.size(), 32);
        assert!((cs.coverage - 0.5).abs() < 1e-9);
    }

    #[test]
    fn coverage_meets_level() {
        let d = DensePosterior::from_risks(&[0.1, 0.3, 0.05, 0.2]);
        for level in [0.5, 0.9, 0.99, 1.0] {
            let cs = credible_set(&d, level);
            assert!(
                cs.coverage >= level - 1e-9,
                "level {level}: coverage {}",
                cs.coverage
            );
            // Minimality: dropping the last state must fall below level.
            if cs.size() > 1 {
                let without_last: f64 = cs.states[..cs.size() - 1].iter().map(|(_, p)| p).sum();
                assert!(without_last < level);
            }
        }
    }

    #[test]
    fn certain_positives_and_negatives() {
        // Posterior mass concentrated on {0} and {0,2}: subject 0 is
        // certainly positive, subjects 1 and 3 certainly negative.
        let mut probs = vec![0.0; 16];
        probs[0b0001] = 0.6;
        probs[0b0101] = 0.4;
        let d = DensePosterior::from_probs(4, probs);
        let cs = credible_set(&d, 0.99);
        assert_eq!(cs.size(), 2);
        assert!(cs.certain_positives().contains(0));
        assert!(!cs.certain_positives().contains(2));
        let neg = cs.certain_negatives(4);
        assert!(neg.contains(1));
        assert!(neg.contains(3));
        assert!(!neg.contains(0));
        assert!(!neg.contains(2));
    }

    #[test]
    fn degenerate_posterior_gives_empty_set() {
        let d = DensePosterior::from_probs(3, vec![0.0; 8]);
        let cs = credible_set(&d, 0.9);
        assert_eq!(cs.size(), 0);
        assert_eq!(cs.coverage, 0.0);
    }

    #[test]
    #[should_panic(expected = "outside (0,1]")]
    fn rejects_bad_level() {
        let d = DensePosterior::new_uniform(2);
        let _ = credible_set(&d, 0.0);
    }

    #[test]
    fn sequential_tests_shrink_credible_set() {
        use sbgt_lattice::State;
        use sbgt_response::{BinaryDilutionModel, ResponseModel};
        let model = BinaryDilutionModel::perfect();
        let mut d = DensePosterior::from_risks(&[0.3; 5]);
        let before = credible_set(&d, 0.95).size();
        // Observe two informative pools.
        for (pool, outcome) in [
            (State::from_subjects([0, 1, 2]), false),
            (State::from_subjects([3]), true),
        ] {
            let table = model.likelihood_table(outcome, pool.rank());
            d.mul_likelihood(pool, &table);
        }
        let after = credible_set(&d, 0.95).size();
        assert!(after < before, "{after} !< {before}");
    }
}
