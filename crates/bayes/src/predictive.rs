//! Posterior-predictive planning: how many more tests will this cohort
//! need?
//!
//! Labs schedule reagents and staffing around expected workload. Given the
//! *current* posterior, the remaining cost of the sequential procedure is a
//! random variable whose distribution we can estimate by Monte-Carlo
//! rollouts: draw a ground-truth state from the posterior, simulate the
//! procedure forward against it (sampling outcomes from the response
//! model), and record the tests/stages used. This is the quantitative
//! engine behind the method paper's "when and how to pool" calculator.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use sbgt_lattice::{DensePosterior, State};
use sbgt_response::BinaryOutcomeModel;

use crate::classify::{classify_marginals, ClassificationRule};
use crate::update::{update_dense, Observation};

/// Summary of predictive rollouts.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictiveCost {
    /// Mean remaining tests.
    pub mean_tests: f64,
    /// Standard deviation of remaining tests.
    pub sd_tests: f64,
    /// Mean remaining stages.
    pub mean_stages: f64,
    /// Fraction of rollouts that hit the stage cap unclassified.
    pub truncated_fraction: f64,
    /// Number of rollouts.
    pub draws: usize,
}

/// Configuration for predictive rollouts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RolloutConfig {
    /// Classification thresholds used inside the rollouts.
    pub rule: ClassificationRule,
    /// Pool-size cap.
    pub max_pool_size: usize,
    /// Stage cap per rollout.
    pub max_stages: usize,
    /// Monte-Carlo draws.
    pub draws: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Estimate the remaining testing cost from `posterior` under the halving
/// procedure, by posterior-predictive Monte-Carlo.
///
/// # Panics
/// Panics when `draws == 0` or the posterior is degenerate.
pub fn predictive_cost<M: BinaryOutcomeModel>(
    posterior: &DensePosterior,
    model: &M,
    cfg: &RolloutConfig,
) -> PredictiveCost {
    assert!(cfg.draws >= 1, "need at least one draw");
    let mut base = posterior.clone();
    base.try_normalize().expect("degenerate posterior");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut tests = Vec::with_capacity(cfg.draws);
    let mut stages = Vec::with_capacity(cfg.draws);
    let mut truncated = 0usize;
    for _ in 0..cfg.draws {
        let truth = sample_state(&base, &mut rng);
        let (t, s, done) = rollout(&base, model, truth, cfg, &mut rng);
        tests.push(t as f64);
        stages.push(s as f64);
        if !done {
            truncated += 1;
        }
    }
    let mean_tests = tests.iter().sum::<f64>() / cfg.draws as f64;
    let var = tests
        .iter()
        .map(|t| (t - mean_tests) * (t - mean_tests))
        .sum::<f64>()
        / cfg.draws as f64;
    PredictiveCost {
        mean_tests,
        sd_tests: var.sqrt(),
        mean_stages: stages.iter().sum::<f64>() / cfg.draws as f64,
        truncated_fraction: truncated as f64 / cfg.draws as f64,
        draws: cfg.draws,
    }
}

/// Draw one state from a normalized posterior by inverse CDF.
fn sample_state<R: Rng + ?Sized>(posterior: &DensePosterior, rng: &mut R) -> State {
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for (idx, &p) in posterior.probs().iter().enumerate() {
        acc += p;
        if u <= acc {
            return State(idx as u64);
        }
    }
    // Float round-off: fall back to the last state.
    State(posterior.len() as u64 - 1)
}

/// Simulate the halving procedure from `start` against a fixed truth.
/// Returns (tests, stages, classified?).
fn rollout<M: BinaryOutcomeModel, R: Rng + ?Sized>(
    start: &DensePosterior,
    model: &M,
    truth: State,
    cfg: &RolloutConfig,
    rng: &mut R,
) -> (usize, usize, bool) {
    let mut post = start.clone();
    let mut tests = 0usize;
    let mut stages = 0usize;
    loop {
        let marginals = post.marginals();
        let classification = classify_marginals(&marginals, cfg.rule);
        if classification.is_terminal() {
            return (tests, stages, true);
        }
        if stages >= cfg.max_stages {
            return (tests, stages, false);
        }
        let mut eligible = classification.undetermined();
        eligible.sort_by(|&a, &b| marginals[a].total_cmp(&marginals[b]).then(a.cmp(&b)));
        // Prefix halving inline (avoids a dependency cycle with
        // sbgt-select): pick the prefix whose negative mass is nearest 1/2.
        let masses = post.prefix_negative_masses(&eligible);
        let total = masses[0];
        if !(total.is_finite() && total > 0.0) {
            return (tests, stages, false);
        }
        let cap = cfg.max_pool_size.min(eligible.len());
        let mut best = (1usize, f64::INFINITY);
        for (k, &mass) in masses.iter().enumerate().take(cap + 1).skip(1) {
            let d = (mass / total - 0.5).abs();
            if d < best.1 {
                best = (k, d);
            }
        }
        let pool = State::from_subjects(eligible[..best.0].iter().copied());
        let p_pos = model.positive_prob(truth.positives_in(pool), pool.rank());
        let outcome = rng.random::<f64>() < p_pos;
        tests += 1;
        stages += 1;
        if update_dense(&mut post, model, &Observation::new(pool, outcome)).is_err() {
            return (tests, stages, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::Prior;
    use sbgt_response::BinaryDilutionModel;

    fn cfg(draws: usize) -> RolloutConfig {
        RolloutConfig {
            rule: ClassificationRule::new(0.99, 0.005),
            max_pool_size: 16,
            max_stages: 100,
            draws,
            seed: 9,
        }
    }

    #[test]
    fn fresh_prior_cost_is_positive_and_below_individual() {
        let post = Prior::flat(10, 0.02).to_dense();
        let model = BinaryDilutionModel::perfect();
        let c = predictive_cost(&post, &model, &cfg(60));
        assert!(c.mean_tests > 0.0);
        assert!(
            c.mean_tests < 10.0,
            "group testing must beat individual: {}",
            c.mean_tests
        );
        assert_eq!(c.truncated_fraction, 0.0);
        assert_eq!(c.draws, 60);
        assert!(c.mean_stages <= c.mean_tests + 1e-9);
    }

    #[test]
    fn nearly_resolved_posterior_costs_less() {
        let model = BinaryDilutionModel::perfect();
        let fresh = Prior::flat(8, 0.05).to_dense();
        // Resolve half the cohort with a negative pool first.
        let mut resolved = fresh.clone();
        update_dense(
            &mut resolved,
            &model,
            &Observation::new(State::from_subjects([0, 1, 2, 3]), false),
        )
        .unwrap();
        let c_fresh = predictive_cost(&fresh, &model, &cfg(50));
        let c_resolved = predictive_cost(&resolved, &model, &cfg(50));
        assert!(
            c_resolved.mean_tests < c_fresh.mean_tests,
            "{} !< {}",
            c_resolved.mean_tests,
            c_fresh.mean_tests
        );
    }

    #[test]
    fn higher_prevalence_costs_more() {
        let model = BinaryDilutionModel::perfect();
        let low = predictive_cost(&Prior::flat(8, 0.02).to_dense(), &model, &cfg(50));
        let high = predictive_cost(&Prior::flat(8, 0.2).to_dense(), &model, &cfg(50));
        assert!(high.mean_tests > low.mean_tests);
    }

    #[test]
    fn rollouts_are_reproducible() {
        let post = Prior::flat(6, 0.1).to_dense();
        let model = BinaryDilutionModel::pcr_like();
        let a = predictive_cost(&post, &model, &cfg(20));
        let b = predictive_cost(&post, &model, &cfg(20));
        assert_eq!(a, b);
    }

    #[test]
    fn sample_state_matches_posterior_statistically() {
        let mut probs = vec![0.0; 8];
        probs[2] = 0.75;
        probs[5] = 0.25;
        let post = DensePosterior::from_probs(3, probs);
        let mut rng = StdRng::seed_from_u64(4);
        let draws = 8000;
        let hits2 = (0..draws)
            .filter(|_| sample_state(&post, &mut rng) == State(2))
            .count() as f64
            / draws as f64;
        assert!((hits2 - 0.75).abs() < 0.03, "{hits2}");
    }

    #[test]
    #[should_panic(expected = "at least one draw")]
    fn zero_draws_panics() {
        let post = Prior::flat(3, 0.1).to_dense();
        let model = BinaryDilutionModel::perfect();
        let _ = predictive_cost(&post, &model, &cfg(0));
    }
}
