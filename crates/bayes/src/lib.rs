//! # sbgt-bayes — Bayesian machinery for lattice group testing
//!
//! Implements the statistical core of the framework on top of the lattice
//! and response substrates:
//!
//! * [`prior`] — cohort priors: flat prevalence, heterogeneous risk groups,
//!   arbitrary per-subject risks;
//! * [`update`] — the Bayesian update after observing a pooled test
//!   (`π'(s) ∝ π(s) · f(y | |s∩A|, |A|)`), in serial, rayon-parallel, and
//!   sparse variants, all returning the model evidence;
//! * [`classify`] — threshold classification on posterior marginals, the
//!   stopping rule of the sequential procedure;
//! * [`analysis`] — the "statistical analyses" operation class of the SBGT
//!   paper: marginals, entropy, MAP/top-k states, rank distribution,
//!   computed in fused passes.

pub mod analysis;
pub mod classify;
pub mod credible;
pub mod predictive;
pub mod prior;
pub mod update;

pub use analysis::{analyze, analyze_par, PosteriorReport};
pub use classify::{classify_marginals, ClassificationRule, CohortClassification, SubjectStatus};
pub use credible::{credible_set, CredibleSet};
pub use predictive::{predictive_cost, PredictiveCost, RolloutConfig};
pub use prior::Prior;
pub use update::{
    update_dense, update_dense_par, update_sparse, update_sparse_with_table, BayesError,
    Observation,
};
