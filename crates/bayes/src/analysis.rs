//! Statistical analyses over the posterior — SBGT's third operation class.
//!
//! A surveillance program consumes more than classifications: per-subject
//! marginals (for reflex testing), posterior entropy (a progress gauge for
//! the sequential design), the MAP state and top-k credible states (for
//! outbreak-pattern readouts), and the rank distribution (posterior over
//! the *number* of positives, for prevalence estimation). [`analyze`]
//! computes all of these in a few fused passes over the lattice;
//! [`analyze_par`] is the parallel variant.

use serde::{Deserialize, Serialize};

use sbgt_lattice::kernels::{par_entropy, par_marginals, par_top_k, ParConfig};
use sbgt_lattice::{DensePosterior, State};

/// Full statistical readout of a posterior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PosteriorReport {
    /// Per-subject `P(positive | data)`.
    pub marginals: Vec<f64>,
    /// Shannon entropy (nats) of the joint posterior.
    pub entropy: f64,
    /// Maximum a-posteriori state and its probability.
    pub map_state: (State, f64),
    /// The `k` most probable states, descending.
    pub top_states: Vec<(State, f64)>,
    /// Posterior distribution of the number of positives.
    pub rank_distribution: Vec<f64>,
    /// Expected number of positives.
    pub expected_positives: f64,
}

impl PosteriorReport {
    /// Probability mass captured by the reported top states (a credible-set
    /// coverage figure).
    pub fn top_coverage(&self) -> f64 {
        self.top_states.iter().map(|(_, p)| p).sum()
    }
}

/// Serial analysis pass. `top_k` bounds the credible-state list length.
pub fn analyze(posterior: &DensePosterior, top_k: usize) -> PosteriorReport {
    let marginals = posterior.marginals();
    let expected_positives = marginals.iter().sum();
    PosteriorReport {
        entropy: posterior.entropy(),
        map_state: posterior.map_state(),
        top_states: posterior.top_k(top_k),
        rank_distribution: posterior.rank_distribution(),
        expected_positives,
        marginals,
    }
}

/// Parallel analysis pass (rayon kernels for every `Θ(2^N)` reduction,
/// including the chunked-heap top-k).
pub fn analyze_par(posterior: &DensePosterior, top_k: usize, cfg: ParConfig) -> PosteriorReport {
    let marginals = par_marginals(posterior, cfg);
    let expected_positives = marginals.iter().sum();
    let top_states = par_top_k(posterior, top_k, cfg);
    let map_state = top_states
        .first()
        .copied()
        .unwrap_or_else(|| posterior.map_state());
    PosteriorReport {
        entropy: par_entropy(posterior, cfg),
        map_state,
        top_states,
        rank_distribution: posterior.rank_distribution(),
        expected_positives,
        marginals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
    }

    #[test]
    fn report_is_internally_consistent() {
        let d = DensePosterior::from_risks(&[0.1, 0.4, 0.25, 0.05]);
        let r = analyze(&d, 3);
        assert_eq!(r.marginals.len(), 4);
        assert!(close(r.expected_positives, r.marginals.iter().sum::<f64>()));
        assert!(close(r.rank_distribution.iter().sum::<f64>(), 1.0));
        assert_eq!(r.top_states.len(), 3);
        assert_eq!(r.top_states[0].0, r.map_state.0);
        assert!(r.top_coverage() <= 1.0 + 1e-12);
        // Top states are sorted descending.
        for w in r.top_states.windows(2) {
            assert!(w[0].1 >= w[1].1 - 1e-15);
        }
    }

    #[test]
    fn serial_and_parallel_reports_agree() {
        let d = DensePosterior::from_risks(&[0.3, 0.1, 0.45, 0.2, 0.08, 0.15]);
        let cfg = ParConfig {
            chunk_len: 9,
            threshold: 0,
        };
        let a = analyze(&d, 4);
        let b = analyze_par(&d, 4, cfg);
        assert!(close(a.entropy, b.entropy));
        assert_eq!(a.map_state.0, b.map_state.0);
        for (x, y) in a.marginals.iter().zip(&b.marginals) {
            assert!(close(*x, *y));
        }
        for ((s1, p1), (s2, p2)) in a.top_states.iter().zip(&b.top_states) {
            assert_eq!(s1, s2);
            assert!(close(*p1, *p2));
        }
    }

    #[test]
    fn low_prevalence_map_is_empty_state() {
        let d = DensePosterior::from_risks(&[0.01; 8]);
        let r = analyze(&d, 1);
        assert_eq!(r.map_state.0, State::EMPTY);
        assert!(r.map_state.1 > 0.9);
    }
}
