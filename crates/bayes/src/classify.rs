//! Classification rules — the stopping criterion of sequential testing.
//!
//! Subject `i` is *classified positive* once the posterior marginal
//! `P(i positive | data)` exceeds `pos_threshold`, *classified negative*
//! once it falls below `neg_threshold`, and *undetermined* in between. The
//! sequential procedure terminates when every subject is classified; the
//! thresholds trade test count against error rates (experiment E6 sweeps
//! them).

use serde::{Deserialize, Serialize};

/// Terminal classification of one subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubjectStatus {
    /// Marginal above the positive threshold.
    Positive,
    /// Marginal below the negative threshold.
    Negative,
    /// Marginal between the thresholds; more tests needed.
    Undetermined,
}

/// Threshold rule on posterior marginals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassificationRule {
    /// Classify positive when the marginal is `>= pos_threshold`.
    pub pos_threshold: f64,
    /// Classify negative when the marginal is `<= neg_threshold`.
    pub neg_threshold: f64,
}

impl ClassificationRule {
    /// Construct with validation.
    ///
    /// # Panics
    /// Panics unless `0 < neg_threshold < pos_threshold < 1`.
    pub fn new(pos_threshold: f64, neg_threshold: f64) -> Self {
        assert!(
            0.0 < neg_threshold && neg_threshold < pos_threshold && pos_threshold < 1.0,
            "need 0 < neg ({neg_threshold}) < pos ({pos_threshold}) < 1"
        );
        ClassificationRule {
            pos_threshold,
            neg_threshold,
        }
    }

    /// The symmetric rule at confidence `c` (e.g. `c = 0.99` gives
    /// thresholds 0.99 / 0.01). This is the default operating point in the
    /// method papers.
    pub fn symmetric(c: f64) -> Self {
        assert!(c > 0.5 && c < 1.0, "confidence {c} must be in (0.5, 1)");
        ClassificationRule::new(c, 1.0 - c)
    }

    /// Classify one marginal.
    pub fn classify(&self, marginal: f64) -> SubjectStatus {
        if marginal >= self.pos_threshold {
            SubjectStatus::Positive
        } else if marginal <= self.neg_threshold {
            SubjectStatus::Negative
        } else {
            SubjectStatus::Undetermined
        }
    }
}

/// Classification of an entire cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortClassification {
    /// Per-subject statuses, indexed by subject.
    pub statuses: Vec<SubjectStatus>,
}

impl CohortClassification {
    /// Subjects still undetermined.
    pub fn undetermined(&self) -> Vec<usize> {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == SubjectStatus::Undetermined)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether every subject is classified (the sequential stop condition).
    pub fn is_terminal(&self) -> bool {
        self.statuses
            .iter()
            .all(|s| *s != SubjectStatus::Undetermined)
    }

    /// Count of subjects classified positive.
    pub fn positives(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| **s == SubjectStatus::Positive)
            .count()
    }

    /// Count of subjects classified negative.
    pub fn negatives(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| **s == SubjectStatus::Negative)
            .count()
    }
}

/// Classify a whole marginal vector.
pub fn classify_marginals(marginals: &[f64], rule: ClassificationRule) -> CohortClassification {
    CohortClassification {
        statuses: marginals.iter().map(|&m| rule.classify(m)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_partition_the_unit_interval() {
        let rule = ClassificationRule::new(0.95, 0.05);
        assert_eq!(rule.classify(0.99), SubjectStatus::Positive);
        assert_eq!(rule.classify(0.95), SubjectStatus::Positive);
        assert_eq!(rule.classify(0.5), SubjectStatus::Undetermined);
        assert_eq!(rule.classify(0.05), SubjectStatus::Negative);
        assert_eq!(rule.classify(0.001), SubjectStatus::Negative);
    }

    #[test]
    fn symmetric_rule() {
        let rule = ClassificationRule::symmetric(0.99);
        assert!((rule.pos_threshold - 0.99).abs() < 1e-12);
        assert!((rule.neg_threshold - 0.01).abs() < 1e-12);
    }

    #[test]
    fn cohort_summary() {
        let rule = ClassificationRule::symmetric(0.9);
        let c = classify_marginals(&[0.95, 0.5, 0.02, 0.91], rule);
        assert_eq!(c.positives(), 2);
        assert_eq!(c.negatives(), 1);
        assert_eq!(c.undetermined(), vec![1]);
        assert!(!c.is_terminal());

        let done = classify_marginals(&[0.99, 0.001], rule);
        assert!(done.is_terminal());
    }

    #[test]
    #[should_panic(expected = "need 0 < neg")]
    fn rejects_crossed_thresholds() {
        let _ = ClassificationRule::new(0.3, 0.6);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn symmetric_rejects_low_confidence() {
        let _ = ClassificationRule::symmetric(0.5);
    }
}
