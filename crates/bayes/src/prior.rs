//! Cohort priors.
//!
//! The framework's priors are independent per-subject infection risks
//! (dependence enters only through the shared test outcomes). Heterogeneous
//! risks are a headline feature of the Bayesian approach: a surveillance
//! program can pool a high-risk clinic cohort differently from routine
//! screening, and the halving rule exploits the asymmetry automatically.

use serde::{Deserialize, Serialize};

use sbgt_lattice::{DensePosterior, SparsePosterior, MAX_SUBJECTS};

/// Independent-risk prior for a cohort.
///
/// ```
/// use sbgt_bayes::Prior;
/// let prior = Prior::from_groups(&[(3, 0.01), (1, 0.2)]);
/// assert_eq!(prior.n_subjects(), 4);
/// assert_eq!(prior.subjects_by_risk()[3], 3); // highest risk last
/// let dense = prior.to_dense();
/// assert!((dense.total() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prior {
    risks: Vec<f64>,
}

impl Prior {
    /// Every subject shares the prevalence `p`.
    ///
    /// # Panics
    /// Panics when `p ∉ (0, 1)` or `n` is zero or exceeds the lattice limit.
    pub fn flat(n: usize, p: f64) -> Self {
        assert!(
            (1..=MAX_SUBJECTS).contains(&n),
            "cohort size {n} out of range"
        );
        assert!(p > 0.0 && p < 1.0, "prevalence {p} must be in (0,1)");
        Prior { risks: vec![p; n] }
    }

    /// Arbitrary per-subject risks.
    ///
    /// # Panics
    /// Panics on an empty slice, out-of-range cohort size, or any risk
    /// outside `(0, 1)` (degenerate 0/1 risks make subjects untestable and
    /// are rejected here; the lattice layer itself tolerates them).
    pub fn from_risks(risks: &[f64]) -> Self {
        assert!(
            !risks.is_empty() && risks.len() <= MAX_SUBJECTS,
            "cohort size out of range"
        );
        for (i, &p) in risks.iter().enumerate() {
            assert!(p > 0.0 && p < 1.0, "risk {i} = {p} must be in (0,1)");
        }
        Prior {
            risks: risks.to_vec(),
        }
    }

    /// Risk-group prior: `groups` is a list of `(count, risk)` blocks laid
    /// out consecutively (e.g. `[(12, 0.01), (4, 0.2)]` = twelve routine
    /// subjects then four high-risk contacts).
    pub fn from_groups(groups: &[(usize, f64)]) -> Self {
        let mut risks = Vec::new();
        for &(count, p) in groups {
            risks.extend(std::iter::repeat_n(p, count));
        }
        Prior::from_risks(&risks)
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        self.risks.len()
    }

    /// Per-subject risks.
    pub fn risks(&self) -> &[f64] {
        &self.risks
    }

    /// Expected number of positives under the prior.
    pub fn expected_positives(&self) -> f64 {
        self.risks.iter().sum()
    }

    /// Subjects ordered by ascending risk (the natural candidate ordering
    /// for halving: pool the likely-negative subjects together).
    pub fn subjects_by_risk(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.risks.len()).collect();
        order.sort_by(|&a, &b| self.risks[a].total_cmp(&self.risks[b]).then(a.cmp(&b)));
        order
    }

    /// Materialize the dense lattice prior.
    pub fn to_dense(&self) -> DensePosterior {
        DensePosterior::from_risks(&self.risks)
    }

    /// Materialize a pruned sparse prior (drop states below `epsilon` of
    /// the total prior mass).
    pub fn to_sparse(&self, epsilon: f64) -> SparsePosterior {
        SparsePosterior::from_dense(&self.to_dense(), epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_prior() {
        let p = Prior::flat(8, 0.03);
        assert_eq!(p.n_subjects(), 8);
        assert!(p.risks().iter().all(|&r| r == 0.03));
        assert!((p.expected_positives() - 0.24).abs() < 1e-12);
    }

    #[test]
    fn groups_concatenate() {
        let p = Prior::from_groups(&[(3, 0.01), (2, 0.3)]);
        assert_eq!(p.risks(), &[0.01, 0.01, 0.01, 0.3, 0.3]);
    }

    #[test]
    fn risk_order_is_ascending_and_stable() {
        let p = Prior::from_risks(&[0.5, 0.1, 0.1, 0.02]);
        assert_eq!(p.subjects_by_risk(), vec![3, 1, 2, 0]);
    }

    #[test]
    fn dense_matches_risks() {
        let p = Prior::from_risks(&[0.2, 0.4]);
        let d = p.to_dense();
        assert!((d.get(sbgt_lattice::State::EMPTY) - 0.8 * 0.6).abs() < 1e-12);
        assert!((d.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_prior_prunes() {
        let p = Prior::from_groups(&[(10, 0.01)]);
        let s = p.to_sparse(1e-6);
        assert!(s.support() < 1 << 10);
        assert!(s.total() > 0.999);
    }

    #[test]
    #[should_panic(expected = "must be in (0,1)")]
    fn rejects_degenerate_risk() {
        let _ = Prior::from_risks(&[0.2, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_empty() {
        let _ = Prior::from_risks(&[]);
    }

    #[test]
    #[should_panic(expected = "prevalence")]
    fn flat_rejects_bad_prevalence() {
        let _ = Prior::flat(4, 0.0);
    }
}
