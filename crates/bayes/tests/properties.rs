//! Property tests for the Bayesian machinery: update laws, classification
//! consistency, credible-set coverage, and log/linear domain agreement.

use proptest::prelude::*;

use sbgt_bayes::{
    classify_marginals, credible_set, update_dense, ClassificationRule, Observation, Prior,
};
use sbgt_lattice::{DensePosterior, LogPosterior, State};
use sbgt_response::{BinaryDilutionModel, Dilution, ResponseModel};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
}

fn risks_strategy(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..0.5, 2..=max_n)
}

fn model_strategy() -> impl Strategy<Value = BinaryDilutionModel> {
    (
        0.7f64..1.0,
        0.9f64..1.0,
        prop_oneof![
            Just(Dilution::None),
            Just(Dilution::Linear),
            (1.0f64..8.0).prop_map(|alpha| Dilution::Exponential { alpha }),
        ],
    )
        .prop_map(|(sens, spec, dilution)| BinaryDilutionModel::new(sens, spec, dilution))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Posterior stays normalized and marginals stay in [0,1] after any
    /// update sequence.
    #[test]
    fn update_preserves_probability_axioms(
        risks in risks_strategy(8),
        model in model_strategy(),
        pools in prop::collection::vec(any::<u64>(), 1..5),
        outcomes in prop::collection::vec(any::<bool>(), 5),
    ) {
        let n = risks.len();
        let mut post = Prior::from_risks(&risks).to_dense();
        for (raw, &outcome) in pools.iter().zip(&outcomes) {
            let mask = raw & State::full(n).bits();
            if mask == 0 {
                continue;
            }
            let obs = Observation::new(State(mask), outcome);
            if update_dense(&mut post, &model, &obs).is_err() {
                break;
            }
            prop_assert!(close(post.total(), 1.0));
        }
        for m in post.marginals() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&m));
        }
        prop_assert!(post.entropy() >= -1e-9);
    }

    /// The evidence of an observation equals the prior predictive
    /// probability of that outcome (law of total probability).
    #[test]
    fn evidence_is_prior_predictive(
        risks in risks_strategy(7),
        model in model_strategy(),
        pool_raw in 1u64..128,
        outcome in any::<bool>(),
    ) {
        let n = risks.len();
        let mask = pool_raw & State::full(n).bits();
        prop_assume!(mask != 0);
        let pool = State(mask);
        let prior = Prior::from_risks(&risks).to_dense();
        let mut post = prior.clone();
        let z = update_dense(&mut post, &model, &Observation::new(pool, outcome)).unwrap();
        let predictive: f64 = prior
            .probs()
            .iter()
            .enumerate()
            .map(|(idx, &p)| {
                let k = State(idx as u64).positives_in(pool);
                p * model.likelihood(outcome, k, pool.rank())
            })
            .sum();
        prop_assert!(close(z, predictive));
    }

    /// The two outcomes' evidences sum to 1 for a binary model (the
    /// predictive distribution is a distribution).
    #[test]
    fn binary_evidences_sum_to_one(
        risks in risks_strategy(7),
        model in model_strategy(),
        pool_raw in 1u64..128,
    ) {
        let n = risks.len();
        let mask = pool_raw & State::full(n).bits();
        prop_assume!(mask != 0);
        let pool = State(mask);
        let mut z_sum = 0.0;
        for outcome in [true, false] {
            let mut post = Prior::from_risks(&risks).to_dense();
            if let Ok(z) = update_dense(&mut post, &model, &Observation::new(pool, outcome)) {
                z_sum += z;
            }
        }
        prop_assert!(close(z_sum, 1.0));
    }

    /// Log-domain and linear-domain updates agree on marginals for any
    /// observation sequence.
    #[test]
    fn log_domain_agrees(
        risks in risks_strategy(7),
        model in model_strategy(),
        pools in prop::collection::vec(1u64..128, 1..4),
        outcomes in prop::collection::vec(any::<bool>(), 4),
    ) {
        let n = risks.len();
        let mut linear = Prior::from_risks(&risks).to_dense();
        let mut log = LogPosterior::from_risks(&risks);
        for (raw, &outcome) in pools.iter().zip(&outcomes) {
            let mask = raw & State::full(n).bits();
            if mask == 0 {
                continue;
            }
            let pool = State(mask);
            let table = model.likelihood_table(outcome, pool.rank());
            let lin_ok =
                update_dense(&mut linear, &model, &Observation::new(pool, outcome)).is_ok();
            let log_ok = log.update(pool, &table).is_some();
            prop_assert_eq!(lin_ok, log_ok);
            if !lin_ok {
                break;
            }
        }
        for (a, b) in linear.marginals().iter().zip(log.marginals()) {
            prop_assert!(close(*a, b));
        }
    }

    /// Classification partitions the cohort and respects thresholds.
    #[test]
    fn classification_respects_thresholds(
        marginals in prop::collection::vec(0.0f64..=1.0, 1..20),
        pos in 0.6f64..0.99,
        neg in 0.01f64..0.4,
    ) {
        let rule = ClassificationRule::new(pos, neg);
        let c = classify_marginals(&marginals, rule);
        prop_assert_eq!(c.statuses.len(), marginals.len());
        prop_assert_eq!(
            c.positives() + c.negatives() + c.undetermined().len(),
            marginals.len()
        );
        for (m, s) in marginals.iter().zip(&c.statuses) {
            use sbgt_bayes::SubjectStatus::*;
            match s {
                Positive => prop_assert!(*m >= pos),
                Negative => prop_assert!(*m <= neg),
                Undetermined => prop_assert!(*m > neg && *m < pos),
            }
        }
    }

    /// Credible sets cover at least the requested level and are minimal.
    #[test]
    fn credible_sets_cover_and_are_minimal(
        risks in risks_strategy(7),
        level in 0.1f64..1.0,
    ) {
        let post = DensePosterior::from_risks(&risks);
        let cs = credible_set(&post, level);
        prop_assert!(cs.coverage >= level - 1e-9);
        if cs.size() > 1 {
            let without_last: f64 = cs.states[..cs.size() - 1].iter().map(|(_, p)| p).sum();
            prop_assert!(without_last < level + 1e-12);
        }
        // States are in descending probability order.
        for w in cs.states.windows(2) {
            prop_assert!(w[0].1 >= w[1].1 - 1e-15);
        }
    }
}
