//! Shared harness utilities for the SBGT benchmark suite.
//!
//! Both the criterion micro-benches and the `experiments` binary (which
//! regenerates every reconstructed table/figure, E1–E12) build their
//! workloads and timing helpers from here so the two report on identical
//! inputs.

use std::time::{Duration, Instant};

use sbgt_bayes::Prior;
use sbgt_lattice::State;

/// Deterministic heterogeneous risk vector for a cohort of `n`: risks span
/// roughly `[0.005, 0.18]` in a fixed pseudo-random order. Matches the
/// mixed-risk surveillance regime of the paper's workloads.
pub fn bench_risks(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((s >> 33) as f64) / ((1u64 << 31) as f64);
            0.005 + 0.175 * u
        })
        .collect()
}

/// The prior over [`bench_risks`].
pub fn bench_prior(n: usize, seed: u64) -> Prior {
    Prior::from_risks(&bench_risks(n, seed))
}

/// A deterministic script of pooled observations for warming a posterior
/// into a non-trivial shape before measuring kernels: alternating
/// negative/positive outcomes on rolling pools.
pub fn observation_script(n: usize, count: usize) -> Vec<(State, bool)> {
    (0..count)
        .map(|t| {
            let width = 2 + (t % 4);
            let subjects: Vec<usize> = (0..width).map(|j| (t * 3 + j * 5) % n).collect();
            let pool = State::from_subjects(dedup(subjects));
            (pool, t % 2 == 0)
        })
        .collect()
}

fn dedup(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v.dedup();
    v
}

/// Time `f`, returning its result and the wall duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Best-of-`reps` wall time of `f` (minimum is the standard low-noise
/// estimator for compute-bound kernels).
pub fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(reps >= 1);
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (o, d) = timed(&mut f);
        if d < best {
            best = d;
            out = o;
        }
    }
    (out, best)
}

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Speedup string `a / b` guarding division by ~zero.
pub fn fmt_speedup(baseline: Duration, fast: Duration) -> String {
    let f = fast.as_secs_f64();
    if f <= 0.0 {
        return "inf".to_string();
    }
    format!("{:.1}x", baseline.as_secs_f64() / f)
}

/// Whether quick mode is requested (`SBGT_QUICK=1`): smaller sweeps for CI
/// and the test suite.
pub fn quick_mode() -> bool {
    std::env::var("SBGT_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// A posterior warmed into a non-trivial shape by six scripted pooled
/// observations (shared by the E2–E4 kernels and the criterion benches).
pub fn warmed_posterior(n: usize) -> sbgt_lattice::DensePosterior {
    use sbgt_bayes::{update_dense, Observation};
    let model = sbgt_response::BinaryDilutionModel::pcr_like();
    let mut post = bench_prior(n, 7).to_dense();
    for (pool, outcome) in observation_script(n, 6) {
        let _ = update_dense(&mut post, &model, &Observation::new(pool, outcome));
    }
    post
}

/// Baseline-framework posterior update: one response-model call per state,
/// then separate sum and scale passes — the pre-SBGT cost model timed by
/// E2 and the `lattice_ops` bench (semantics identical to the fused SBGT
/// kernel; see `sbgt::baseline`).
pub fn baseline_update<M: sbgt_response::ResponseModel>(
    post: &mut sbgt_lattice::DensePosterior,
    model: &M,
    pool: State,
    outcome: M::Outcome,
) {
    let n = pool.rank();
    let len = post.len();
    for idx in 0..len {
        let s = State(idx as u64);
        let lik = model.likelihood(outcome, s.positives_in(pool), n);
        post.probs_mut()[idx] *= lik;
    }
    let z = post.total();
    let inv = 1.0 / z;
    for p in post.probs_mut() {
        *p *= inv;
    }
}

/// Baseline-framework halving selection: recompute marginals with one full
/// pass per subject, then one full down-set scan per candidate prefix.
/// Returns the best halving distance (timed by E3 and the `selection`
/// bench).
pub fn baseline_selection(post: &sbgt_lattice::DensePosterior, max_pool: usize) -> f64 {
    let n = post.n_subjects();
    let total = post.total();
    let mut ms = vec![0.0f64; n];
    for (i, m) in ms.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (idx, &p) in post.probs().iter().enumerate() {
            if (idx >> i) & 1 == 1 {
                acc += p;
            }
        }
        *m = acc / total;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| ms[a].total_cmp(&ms[b]));
    let mut best = f64::INFINITY;
    for k in 1..=n.min(max_pool) {
        let pool = State::from_subjects(order[..k].iter().copied());
        let mass = post.pool_negative_mass(pool) / total;
        best = best.min((mass - 0.5).abs());
    }
    best
}

/// Baseline-framework statistical analysis: per-subject marginal passes,
/// separate entropy and rank passes, materialize-and-sort top-k. Returns a
/// checksum (timed by E4 and the `analysis` bench).
pub fn baseline_analysis(post: &sbgt_lattice::DensePosterior) -> f64 {
    let n = post.n_subjects();
    let total = post.total();
    let mut acc = 0.0;
    for i in 0..n {
        let mut m = 0.0;
        for (idx, &p) in post.probs().iter().enumerate() {
            if (idx >> i) & 1 == 1 {
                m += p;
            }
        }
        acc += m / total;
    }
    let _ = post.entropy();
    let mut rank = vec![0.0; n + 1];
    for (idx, &p) in post.probs().iter().enumerate() {
        rank[(idx as u64).count_ones() as usize] += p;
    }
    let mut everything: Vec<(u64, f64)> = post
        .probs()
        .iter()
        .enumerate()
        .map(|(i, &p)| (i as u64, p))
        .collect();
    everything.sort_by(|a, b| b.1.total_cmp(&a.1));
    acc + everything[0].1 + rank[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risks_are_valid_and_deterministic() {
        let a = bench_risks(20, 3);
        let b = bench_risks(20, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| p > 0.0 && p < 1.0));
        let c = bench_risks(20, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn script_pools_are_valid() {
        for (pool, _) in observation_script(10, 25) {
            assert!(!pool.is_empty());
            assert!(pool.is_subset_of(State::full(10)));
        }
    }

    #[test]
    fn prior_builds() {
        assert_eq!(bench_prior(8, 0).n_subjects(), 8);
    }

    #[test]
    fn table_renders() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0 µs");
        assert_eq!(
            fmt_speedup(Duration::from_secs(2), Duration::from_secs(1)),
            "2.0x"
        );
    }

    #[test]
    fn best_of_returns_min() {
        let mut calls = 0;
        let (_, d) = best_of(3, || {
            calls += 1;
        });
        assert_eq!(calls, 3);
        assert!(d <= Duration::from_secs(1));
    }
}
