//! Sustained multi-process soak of the shard fabric (E16).
//!
//! One binary, two roles, selected by `--shard`:
//!
//! * **Orchestrator** (default): spawns M shard *processes* by re-execing
//!   itself, connects a [`sbgt_net::FabricRouter`] to them, and drives a
//!   seeded open-loop Poisson specimen stream (`sbgt_sim::traffic`)
//!   through the wire path — client-side cohort formation, consistent-hash
//!   placement, windowed Prometheus scrapes for round-latency quantiles,
//!   and a **mid-soak drain** of one shard whose live cohorts relocate by
//!   `SBGTCKPT` checkpoint handoff. Ends by asserting the specimen ledger
//!   balances exactly (generated = accepted + shed, accepted = classified
//!   — nothing lost, including across the drain) and, in full mode,
//!   writing `BENCH_soak.json`.
//! * **Shard** (`--shard`): binds a [`sbgt_net::ShardServer`] on an
//!   ephemeral port, prints `ADDR <addr>` on stdout for the parent, and
//!   serves until the orchestrator's shutdown verb.
//!
//! Shard children run with `SBGT_TRACE=spans`, and the orchestrator
//! scrapes every process through [`sbgt_net::FleetScraper`] (once right
//! after the drain, once at the end), writing one merged Chrome trace
//! and one fleet Prometheus page to `target/obs/`. The run then asserts
//! the E16 observability bar: the trace validates with spans from every
//! shard process, at least one relocated cohort is stitched across two
//! processes under its deterministic per-cohort trace id, and the
//! fleet-merged round-latency histogram equals the sum of the individual
//! shard scrapes.
//!
//! `--smoke` shrinks the run to the `make soak-smoke` gate: 3 shards, a
//! few thousand specimens, one drain/handoff, zero lost specimens, and a
//! shed-rate bound — seconds, not minutes.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

use sbgt_engine::obs::{parse_prometheus, validate_chrome_trace, NO_COHORT};
use sbgt_engine::{trace_id_for_cohort, EngineConfig, SharedEngine};
use sbgt_net::{FabricConfig, FabricRouter, FleetScraper, ShardServer};
use sbgt_service::{ServiceConfig, Specimen, TenantSpec};
use sbgt_sim::traffic::{generate_arrivals, TrafficConfig};

/// Committed single-process baseline (BENCH_service.json headline):
/// specimens/s end-to-end through the in-process service stack.
const SINGLE_PROCESS_BASELINE: f64 = 68_085.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if has(&args, "--shard") {
        run_shard(&args)
    } else {
        run_orchestrator(&args)
    };
    if let Err(e) = result {
        eprintln!("soak: {e}");
        std::process::exit(1);
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// ---------------------------------------------------------------- shard --

/// Child role: one shard server process. The ephemeral bind address goes
/// to the parent over stdout; everything else is the wire protocol.
fn run_shard(args: &[String]) -> io::Result<()> {
    let workers = parse(args, "--workers", 1usize);
    let max_live = parse(args, "--max-live", 64usize);
    let batch = parse(args, "--batch", 10usize);
    let engine = SharedEngine::new(EngineConfig::default().with_threads(2));
    let config = ServiceConfig {
        workers,
        batch_size: batch,
        max_live_cohorts: max_live,
        dense_threshold: batch + 1,
        // Two-lab QoS scenario matching the traffic mix: lab 0 has twice
        // the weight of lab 1, so WFQ (not FIFO) arbitrates under load.
        tenants: vec![TenantSpec::weighted(0, 2), TenantSpec::weighted(1, 1)],
        ..ServiceConfig::default()
    };
    let server = ShardServer::bind("127.0.0.1:0", engine, config)?;
    println!("ADDR {}", server.local_addr());
    io::stdout().flush()?;
    server.join()
}

// --------------------------------------------------------- orchestrator --

struct Opts {
    shards: u32,
    specimens: usize,
    rate: f64,
    batch: usize,
    workers: usize,
    max_live: usize,
    seed: u64,
    smoke: bool,
    out: String,
}

impl Opts {
    fn from_args(args: &[String]) -> Opts {
        let smoke = has(args, "--smoke");
        Opts {
            shards: parse(args, "--shards", if smoke { 3 } else { 4 }),
            specimens: parse(args, "--specimens", if smoke { 3_000 } else { 1_000_000 }),
            // Full mode paces arrivals ~20% above this host's measured
            // fabric capacity at the default cohort size, so overload,
            // shedding, and a standing backlog are real (the synchronous
            // router is otherwise self-clocking: place RTTs stretch as
            // the engines saturate, and the backlog never builds). Smoke
            // submits effectively unpaced so backlog — and therefore a
            // non-trivial drain — is guaranteed even on a fast machine.
            rate: parse(args, "--rate", if smoke { 1e6 } else { 45_000.0 }),
            batch: parse(args, "--batch", 12),
            workers: parse(args, "--workers", 1),
            max_live: parse(args, "--max-live", 64),
            seed: parse(args, "--seed", 0x50AA_u64),
            smoke,
            out: flag(args, "--out").unwrap_or_else(|| "BENCH_soak.json".to_string()),
        }
    }
}

/// Totals as of the previous window sample, for delta computation.
#[derive(Default)]
struct Cursor {
    t_s: f64,
    accepted: u64,
    classified: u64,
    shed: u64,
    buckets: Vec<(f64, f64)>,
}

/// One windowed observation of the running fabric.
struct WindowSample {
    t_s: f64,
    accepted: u64,
    classified: u64,
    shed: u64,
    throughput: f64,
    shed_rate: f64,
    p50_ms: Option<f64>,
    p99_ms: Option<f64>,
}

fn run_orchestrator(args: &[String]) -> io::Result<()> {
    let opts = Opts::from_args(args);
    let mut children = spawn_shards(&opts)?;
    let shard_addrs: Vec<(u32, SocketAddr)> = children
        .iter_mut()
        .map(|(id, child)| read_addr(child).map(|a| (*id, a)))
        .collect::<io::Result<_>>()?;
    let fabric_config = FabricConfig {
        batch_size: opts.batch,
        base_seed: opts.seed,
        ..FabricConfig::default()
    };
    let mut router = FabricRouter::connect(&shard_addrs, &fabric_config)?;
    let shard_ids: Vec<u32> = shard_addrs.iter().map(|&(id, _)| id).collect();

    eprintln!(
        "soak: {} shards up, {} specimens at {:.0}/s (seed {:#x})",
        opts.shards, opts.specimens, opts.rate, opts.seed
    );
    let traffic = TrafficConfig::two_tenant(opts.rate, opts.specimens, 0.5, opts.seed);
    let arrivals = generate_arrivals(&traffic);

    let window = Duration::from_millis(if opts.smoke { 250 } else { 1000 });
    // Fleet telemetry accumulator: polled right after the drain and once
    // at the end, so accumulation stays bounded by the shards' span-ring
    // capacity even on the 1M-specimen full run.
    let mut scraper = FleetScraper::new();
    let start = Instant::now();
    let mut windows: Vec<WindowSample> = Vec::new();
    let mut classified: u64 = 0;
    let mut prev = Cursor::default();
    let mut next_sample = start + window;

    // Mid-soak the highest shard id drains out of the fabric; its live
    // cohorts relocate by checkpoint handoff and finish elsewhere. The
    // drain waits for a moment when the victim actually holds live
    // cohorts (it nearly always does under the over-capacity pacing), so
    // the handoff is never vacuous.
    let mut drain_after = opts.specimens / 2;
    let drain_retry = (opts.specimens / 100).max(opts.batch);
    let victim = *shard_ids.last().expect("at least one shard");
    let mut drain_record: Option<(f64, u64, usize)> = None;

    for (i, arrival) in arrivals.iter().enumerate() {
        let now = start.elapsed();
        if arrival.at > now {
            std::thread::sleep(arrival.at - now);
        }
        router.submit(
            arrival.tenant,
            Specimen {
                risk: arrival.risk,
                infected: arrival.infected,
            },
        )?;
        if drain_record.is_none() && i + 1 >= drain_after {
            if live_cohorts(&mut router, victim)? == 0 {
                drain_after += drain_retry;
                continue;
            }
            drain_record = Some(do_drain(
                &mut router,
                &mut scraper,
                victim,
                start,
                &mut classified,
            )?);
        }
        if Instant::now() >= next_sample {
            classified += harvest(&mut router)?;
            windows.push(sample_window(
                &mut router,
                &shard_ids,
                start,
                classified,
                &mut prev,
            )?);
            next_sample += window;
        }
    }
    // If no drain-check ever caught the victim with backlog (possible at
    // a sub-capacity --rate), drain it now, before the fabric empties.
    let drain_summary = match drain_record {
        Some(r) => r,
        None => do_drain(&mut router, &mut scraper, victim, start, &mut classified)?,
    };
    router.flush_all()?;

    // Drain-to-empty: every accepted specimen must come back classified.
    let deadline = start + Duration::from_secs(if opts.smoke { 120 } else { 900 });
    loop {
        classified += harvest(&mut router)?;
        if classified >= router.counters().accepted_specimens {
            break;
        }
        if Instant::now() > deadline {
            return Err(io::Error::other(format!(
                "soak stalled: {classified} of {} accepted specimens classified",
                router.counters().accepted_specimens
            )));
        }
        if Instant::now() >= next_sample {
            windows.push(sample_window(
                &mut router,
                &shard_ids,
                start,
                classified,
                &mut prev,
            )?);
            next_sample += window;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let wall_s = start.elapsed().as_secs_f64();
    let counters = router.counters();
    let rounds = total_rounds(&mut router, &shard_ids)?;

    // --- the soak's invariants -------------------------------------------
    let (drain_t, relocated, recovered) = drain_summary;
    check(
        counters.accepted_specimens + counters.shed_specimens == opts.specimens as u64,
        &format!(
            "specimen ledger must balance: {} accepted + {} shed != {} generated",
            counters.accepted_specimens, counters.shed_specimens, opts.specimens
        ),
    )?;
    check(
        classified == counters.accepted_specimens,
        &format!(
            "zero-loss violated: {classified} classified != {} accepted",
            counters.accepted_specimens
        ),
    )?;
    check(
        relocated >= 1,
        "mid-soak drain relocated no cohorts — the handoff path went unexercised",
    )?;
    let shed_rate = counters.shed_specimens as f64 / opts.specimens as f64;
    if opts.smoke {
        check(
            shed_rate <= 0.5,
            &format!("smoke shed-rate bound exceeded: {shed_rate:.3} > 0.5"),
        )?;
    }

    // Final fleet scrape (adoption marks, post-drain rounds) and the E16
    // observability bar, while every shard process is still answering.
    scraper.poll(&mut router)?;
    check_fleet_obs(&scraper, &shard_ids)?;

    router.shutdown_all()?;
    for (id, mut child) in children {
        let status = child.wait()?;
        check(
            status.success(),
            &format!("shard {id} exited with {status}"),
        )?;
    }

    let throughput = classified as f64 / wall_s;
    eprintln!(
        "soak: OK — {classified} specimens classified in {wall_s:.1}s \
         ({throughput:.0}/s, shed rate {shed_rate:.3}, {} cohorts relocated at {drain_t:.1}s)",
        counters.relocated_cohorts
    );
    if opts.smoke {
        println!("soak-smoke: OK");
        return Ok(());
    }
    let report = render_json(
        &opts,
        &windows,
        classified,
        counters.accepted_specimens,
        counters.shed_specimens,
        counters.placed_cohorts,
        rounds,
        wall_s,
        throughput,
        shed_rate,
        (drain_t, victim, relocated, recovered),
    );
    std::fs::write(&opts.out, report)?;
    println!("soak: wrote {}", opts.out);
    Ok(())
}

fn check(ok: bool, msg: &str) -> io::Result<()> {
    if ok {
        Ok(())
    } else {
        Err(io::Error::other(msg.to_string()))
    }
}

fn spawn_shards(opts: &Opts) -> io::Result<Vec<(u32, Child)>> {
    (0..opts.shards)
        .map(|id| {
            let child = Command::new(std::env::current_exe()?)
                .args([
                    "--shard",
                    "--workers",
                    &opts.workers.to_string(),
                    "--max-live",
                    &opts.max_live.to_string(),
                    "--batch",
                    &opts.batch.to_string(),
                ])
                // Span-level tracing in every shard process: the fleet
                // scrape stitches these into one cross-process trace.
                // Trace ids are pure functions of cohort ids, so this
                // changes nothing about what the shards compute.
                .env("SBGT_TRACE", "spans")
                .stdout(Stdio::piped())
                .spawn()?;
            Ok((id, child))
        })
        .collect()
}

fn read_addr(child: &mut Child) -> io::Result<SocketAddr> {
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    line.trim()
        .strip_prefix("ADDR ")
        .and_then(|a| a.parse().ok())
        .ok_or_else(|| io::Error::other(format!("shard did not announce its address: {line:?}")))
}

/// Drain `victim` out of the fabric, folding its already-finished reports
/// into the classified tally. Returns `(t_s, relocated, recovered)`.
///
/// Scrapes the fleet right after the handoff: the victim's span rings
/// persist on its (retired but still answering) server, and the
/// survivors' adoption marks are still in their rings — on the full run
/// those marks would wrap out long before the end-of-run scrape. The
/// scrape must not run *before* `drain_shard`: the extra round trips
/// would give the victim time to finish the very backlog the caller just
/// confirmed, making the handoff vacuous.
fn do_drain(
    router: &mut FabricRouter,
    scraper: &mut FleetScraper,
    victim: u32,
    start: Instant,
    classified: &mut u64,
) -> io::Result<(f64, u64, usize)> {
    let before = router.counters().relocated_cohorts;
    let recovered = router.drain_shard(victim)?;
    scraper.poll(router)?;
    *classified += recovered.iter().map(|r| r.subjects as u64).sum::<u64>();
    let moved = router.counters().relocated_cohorts - before;
    let t_s = start.elapsed().as_secs_f64();
    eprintln!(
        "soak: drained shard {victim} at {t_s:.1}s — {moved} live cohorts handed off, \
         {} finished reports recovered",
        recovered.len()
    );
    Ok((t_s, moved, recovered.len()))
}

/// Merge the accumulated shard exports into the two fleet artifacts —
/// one Chrome trace, one Prometheus page, both under `target/obs/` — and
/// hold them to the soak's observability invariants: the merged trace
/// validates with spans from **every** shard process, at least one
/// relocated cohort left spans on two processes stitched under its
/// deterministic per-cohort trace id, and the fleet-merged round-latency
/// histogram equals the sum of the individual shard scrapes.
fn check_fleet_obs(scraper: &FleetScraper, shard_ids: &[u32]) -> io::Result<()> {
    let trace = scraper.render_chrome_trace();
    let summary = validate_chrome_trace(&trace).map_err(io::Error::other)?;
    check(
        summary.processes == shard_ids.len(),
        &format!(
            "fleet trace names {} processes, expected {}",
            summary.processes,
            shard_ids.len()
        ),
    )?;

    // Which shards recorded spans for which cohorts? The drained victim's
    // live cohorts must show up on it *and* on whichever shard adopted
    // their checkpoints.
    let mut seen: BTreeMap<u64, BTreeSet<u32>> = BTreeMap::new();
    for &shard in shard_ids {
        for event in scraper.shard_events(shard) {
            if event.meta.cohort != NO_COHORT {
                seen.entry(event.meta.cohort).or_default().insert(shard);
            }
        }
    }
    let stitched: Vec<u64> = seen
        .iter()
        .filter(|(_, shards)| shards.len() >= 2)
        .map(|(&cohort, _)| cohort)
        .collect();
    check(
        !stitched.is_empty(),
        "no cohort left spans on two processes — the relocation went untraced",
    )?;
    let wanted = format!("{:016x}", trace_id_for_cohort(stitched[0]));
    check(
        trace.contains(&wanted),
        &format!("merged trace is missing stitched trace id {wanted}"),
    )?;

    let page = scraper.render_prometheus();
    parse_prometheus(&page).map_err(io::Error::other)?;
    let per_shard: u64 = shard_ids
        .iter()
        .filter_map(|&s| scraper.shard_hist(s, "sbgt_service_round_latency_us"))
        .map(|h| h.count())
        .sum();
    let merged = scraper
        .merged_hists()
        .into_iter()
        .find(|h| h.name == "sbgt_service_round_latency_us" && h.labels.is_empty())
        .map_or(0, |h| h.hist.count());
    check(per_shard > 0, "no shard exported round-latency samples")?;
    check(
        merged == per_shard,
        &format!(
            "fleet histogram merge diverged: merged count {merged} != \
             sum of shard scrapes {per_shard}"
        ),
    )?;

    std::fs::create_dir_all("target/obs")?;
    std::fs::write("target/obs/fleet_trace.json", &trace)?;
    std::fs::write("target/obs/fleet_scrape.prom", &page)?;
    eprintln!(
        "soak: fleet obs OK — {} spans from {} processes, {} cohort(s) \
         stitched across shards; wrote target/obs/fleet_trace.json and \
         target/obs/fleet_scrape.prom",
        scraper.total_events(),
        summary.processes,
        stitched.len()
    );
    Ok(())
}

/// Live (opened, not yet classified) cohorts on one shard, over the wire.
fn live_cohorts(router: &mut FabricRouter, shard: u32) -> io::Result<u64> {
    let text = router.stats(shard)?;
    let samples = parse_prometheus(&text).map_err(io::Error::other)?;
    let total = |name: &str| -> f64 {
        samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    };
    let opened = total("sbgt_service_cohorts_opened_total");
    let completed = total("sbgt_service_cohorts_completed_total");
    Ok((opened - completed).max(0.0) as u64)
}

/// Pull completed reports off every shard, returning classified specimens.
fn harvest(router: &mut FabricRouter) -> io::Result<u64> {
    Ok(router
        .poll_reports()?
        .iter()
        .map(|r| r.subjects as u64)
        .sum())
}

/// Merge the round-latency histogram across every shard's Prometheus
/// scrape into cumulative `(le, count)` pairs.
fn scrape_buckets(router: &mut FabricRouter, shard_ids: &[u32]) -> io::Result<Vec<(f64, f64)>> {
    let mut merged: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    for &shard in shard_ids {
        let text = router.stats(shard)?;
        let samples = parse_prometheus(&text).map_err(io::Error::other)?;
        for s in samples {
            if s.name != "sbgt_round_latency_seconds_bucket" {
                continue;
            }
            let le = match s.label("le") {
                Some("+Inf") => f64::INFINITY,
                Some(v) => v.parse().map_err(|_| io::Error::other("bad le"))?,
                None => continue,
            };
            let entry = merged.entry(le.to_bits()).or_insert((le, 0.0));
            entry.1 += s.value;
        }
    }
    let mut buckets: Vec<(f64, f64)> = merged.into_values().collect();
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    Ok(buckets)
}

fn total_rounds(router: &mut FabricRouter, shard_ids: &[u32]) -> io::Result<u64> {
    let mut rounds = 0.0;
    for &shard in shard_ids {
        let text = router.stats(shard)?;
        let samples = parse_prometheus(&text).map_err(io::Error::other)?;
        rounds += samples
            .iter()
            .filter(|s| s.name == "sbgt_service_rounds_total")
            .map(|s| s.value)
            .sum::<f64>();
    }
    Ok(rounds as u64)
}

/// Linear-interpolated quantile over per-window histogram deltas.
fn quantile(delta: &[(f64, f64)], q: f64) -> Option<f64> {
    let total = delta.last().map(|&(_, c)| c)?;
    if total <= 0.0 {
        return None;
    }
    let target = q * total;
    let (mut prev_le, mut prev_cum) = (0.0, 0.0);
    for &(le, cum) in delta {
        if cum >= target {
            if le.is_infinite() {
                return Some(prev_le);
            }
            let span = cum - prev_cum;
            let frac = if span > 0.0 {
                (target - prev_cum) / span
            } else {
                0.0
            };
            return Some(prev_le + (le - prev_le) * frac);
        }
        prev_le = le;
        prev_cum = cum;
    }
    None
}

fn sample_window(
    router: &mut FabricRouter,
    shard_ids: &[u32],
    start: Instant,
    classified: u64,
    prev: &mut Cursor,
) -> io::Result<WindowSample> {
    let counters = router.counters();
    let buckets = scrape_buckets(router, shard_ids)?;
    let delta: Vec<(f64, f64)> = buckets
        .iter()
        .map(|&(le, cum)| {
            let before = prev
                .buckets
                .iter()
                .find(|&&(ple, _)| ple.to_bits() == le.to_bits())
                .map_or(0.0, |&(_, c)| c);
            (le, cum - before)
        })
        .collect();
    let t_s = start.elapsed().as_secs_f64();
    let dt = t_s - prev.t_s;
    let d_accepted = counters.accepted_specimens - prev.accepted;
    let d_classified = classified - prev.classified;
    let d_shed = counters.shed_specimens - prev.shed;
    let submitted = d_accepted + d_shed;
    let sample = WindowSample {
        t_s,
        accepted: d_accepted,
        classified: d_classified,
        shed: d_shed,
        throughput: if dt > 0.0 {
            d_classified as f64 / dt
        } else {
            0.0
        },
        shed_rate: if submitted > 0 {
            d_shed as f64 / submitted as f64
        } else {
            0.0
        },
        p50_ms: quantile(&delta, 0.50).map(|s| s * 1e3),
        p99_ms: quantile(&delta, 0.99).map(|s| s * 1e3),
    };
    *prev = Cursor {
        t_s,
        accepted: counters.accepted_specimens,
        classified,
        shed: counters.shed_specimens,
        buckets,
    };
    Ok(sample)
}

// ----------------------------------------------------------------- json --

fn utc_date() -> String {
    let secs = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    // Civil-from-days (Hinnant's algorithm) — enough calendar for a stamp.
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn host_string() -> String {
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown CPU".to_string());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    format!("{model}, {cores} core(s)")
}

fn opt_ms(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.2}"))
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    opts: &Opts,
    windows: &[WindowSample],
    classified: u64,
    accepted: u64,
    shed: u64,
    placed: u64,
    rounds: u64,
    wall_s: f64,
    throughput: f64,
    shed_rate: f64,
    drain: (f64, u32, u64, usize),
) -> String {
    let (drain_t, victim, relocated, recovered) = drain;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"soak\",\n");
    out.push_str(
        "  \"description\": \"Sustained multi-process soak of the shard fabric: a seeded \
         open-loop Poisson specimen stream (two tenants, WFQ weights 2:1) is driven through \
         the length-prefixed wire protocol into shard server processes, cohorts placed by \
         consistent hash; halfway through, one shard drains and its live cohorts relocate \
         to the survivors by byte-exact SBGTCKPT checkpoint handoff. Windowed throughput / \
         shed-rate / round-latency quantiles come from per-shard Prometheus scrapes over \
         the same wire path.\",\n",
    );
    out.push_str(&format!("  \"date\": \"{}\",\n", utc_date()));
    out.push_str(&format!("  \"host\": \"{}\",\n", host_string()));
    out.push_str("  \"command\": \"cargo run --release -p sbgt-bench --bin soak\",\n");
    out.push_str(&format!(
        "  \"config\": {{ \"shards\": {}, \"specimens\": {}, \"rate_per_sec\": {:.0}, \
         \"batch_size\": {}, \"workers_per_shard\": {}, \"engine_threads_per_shard\": 2, \
         \"max_live_cohorts\": {}, \"tenant_weights\": {{ \"0\": 2, \"1\": 1 }}, \
         \"seed\": {}, \"drain_fraction\": 0.5 }},\n",
        opts.shards, opts.specimens, opts.rate, opts.batch, opts.workers, opts.max_live, opts.seed
    ));
    out.push_str(&format!(
        "  \"totals\": {{ \"specimens_generated\": {}, \"accepted\": {accepted}, \
         \"shed\": {shed}, \"classified\": {classified}, \"lost\": 0, \
         \"shed_rate\": {shed_rate:.4}, \"cohorts_placed\": {placed}, \
         \"engine_rounds\": {rounds}, \"wall_s\": {wall_s:.2}, \
         \"throughput_specimens_per_s\": {throughput:.0} }},\n",
        opts.specimens
    ));
    out.push_str(&format!(
        "  \"drain\": {{ \"at_s\": {drain_t:.2}, \"shard\": {victim}, \
         \"relocated_cohorts\": {relocated}, \"reports_recovered_at_drain\": {recovered}, \
         \"lost_specimens\": 0 }},\n"
    ));
    out.push_str(&format!(
        "  \"baseline\": {{ \"single_process_specimens_per_s\": {SINGLE_PROCESS_BASELINE:.0}, \
         \"ratio\": {:.2}, \"note\": \"the >=2x-of-baseline aggregate-throughput criterion \
         assumes one core per shard; on this host every shard process time-shares the same \
         core(s) with the router, so the measured ratio reports fabric overhead under core \
         contention, not horizontal scaling\" }},\n",
        throughput / SINGLE_PROCESS_BASELINE
    ));
    out.push_str("  \"windows\": [\n");
    for (i, w) in windows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"t_s\": {:.2}, \"accepted\": {}, \"classified\": {}, \"shed\": {}, \
             \"throughput_per_s\": {:.0}, \"shed_rate\": {:.4}, \"round_p50_ms\": {}, \
             \"round_p99_ms\": {} }}{}\n",
            w.t_s,
            w.accepted,
            w.classified,
            w.shed,
            w.throughput,
            w.shed_rate,
            opt_ms(w.p50_ms),
            opt_ms(w.p99_ms),
            if i + 1 == windows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
