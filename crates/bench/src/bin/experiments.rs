//! Regenerate every reconstructed SBGT table/figure (E1–E13).
//!
//! Usage:
//!   experiments [--exp e1[,e2,...]] [--quick]
//!
//! With no `--exp`, all experiments run in order. `--quick` (or env
//! `SBGT_QUICK=1`) shrinks sweeps for smoke runs. Output is markdown,
//! designed to be pasted into EXPERIMENTS.md.

use std::time::Duration;

use sbgt::prelude::*;
use sbgt::ShardedPosterior;
use sbgt_bayes::{analyze, analyze_par, update_dense_par, Observation};
use sbgt_bench::{
    baseline_analysis, baseline_selection, baseline_update, bench_prior, best_of, fmt_duration,
    fmt_speedup, markdown_table, timed, warmed_posterior,
};
use sbgt_engine::{Engine, EngineConfig};
use sbgt_lattice::kernels::{
    par_entropy, par_marginals, par_mul_likelihood_fused, par_prefix_negative_masses, ParConfig,
};
use sbgt_lattice::SparsePosterior;
use sbgt_response::ResponseModel;
use sbgt_sim::runner::{EpisodeConfig, SelectionMethod};
use sbgt_sim::{
    run_array_testing, run_dorfman, run_episode, run_individual, square_grid, ConfusionMatrix,
    Population, RiskProfile, Scenario, SummaryStats,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick") || sbgt_bench::quick_mode();
    let selected: Vec<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|x| x.to_lowercase()).collect())
        .unwrap_or_default();
    let want = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);

    println!(
        "# SBGT reconstructed experiments ({} mode)",
        if quick { "quick" } else { "full" }
    );
    println!();
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {host} thread(s)");
    println!();

    if want("e1") {
        e1_workloads();
    }
    if want("e2") {
        e2_lattice_manipulation(quick);
    }
    if want("e3") {
        e3_test_selection(quick);
    }
    if want("e4") {
        e4_statistical_analysis(quick);
    }
    if want("e5") {
        e5_strong_scaling(quick);
    }
    if want("e6") {
        e6_classification_quality(quick);
    }
    if want("e7") {
        e7_testing_efficiency(quick);
    }
    if want("e8") {
        e8_lookahead_tradeoff(quick);
    }
    if want("e9") {
        e9_stage_breakdown(quick);
    }
    if want("e10") {
        e10_pruning_ablation(quick);
    }
    if want("e11") {
        e11_misspecification(quick);
    }
    if want("e12") {
        e12_selection_rules(quick);
    }
    if want("e13") {
        e13_service_throughput(quick);
    }
    if want("e17") {
        e17_large_cohorts(quick);
    }
}

/// E17 — large-cohort surveillance on the approximate backends.
///
/// Runs cohorts far past the exact `2^N` wall (256 specimens each)
/// through the full service stack on each approximate backend, checks the
/// service classifies bit-for-bit with the serial per-cohort reference,
/// scores the classifications against the planted ground truth, and
/// reports the terminal checkpoint size — the whole cohort state in
/// kilobytes, where a dense posterior would need `8·2^256` bytes.
fn e17_large_cohorts(quick: bool) {
    use sbgt_service::{
        batch_specimens, run_cohort_serial, ApproxBackend, CohortActor, Specimen,
        SurveillanceService,
    };
    use sbgt_sim::traffic::{generate_arrivals, TrafficConfig};

    println!("## E17 — large-cohort approximate surveillance (extension)\n");
    let n = if quick { 64 } else { 256 };
    let cohorts = if quick { 2 } else { 4 };
    let specimens: Vec<Specimen> =
        generate_arrivals(&TrafficConfig::large_cohort(n, cohorts, 0.05, 2026))
            .into_iter()
            .map(|a| Specimen {
                risk: a.risk,
                infected: a.infected,
            })
            .collect();

    // Undiluted assay for the backend comparison (the halving pools are
    // capped at 16 either way); one extra full-mode row keeps the default
    // PCR-like dilution model to quantify what dilution costs at scale.
    let undiluted = BinaryDilutionModel::new(0.99, 0.995, Dilution::None);
    let mut variants = vec![
        ("bp", ApproxBackend::Bp, undiluted),
        ("particle", ApproxBackend::Particle, undiluted),
    ];
    if !quick {
        variants.push((
            "bp + PCR dilution",
            ApproxBackend::Bp,
            BinaryDilutionModel::pcr_like(),
        ));
    }

    let mut rows = Vec::new();
    for (label, backend, model) in variants {
        let config = sbgt_service::ServiceConfig {
            queue_capacity: specimens.len(),
            batch_size: n,
            approx_threshold: 17,
            approx_backend: backend,
            approx_particles: 1024,
            base_seed: 0xE17,
            model,
            session: SbgtConfig {
                max_stages: 2000,
                ..SbgtConfig::default()
            },
            ..sbgt_service::ServiceConfig::default()
        };
        let engine = sbgt_engine::SharedEngine::new(EngineConfig::default().with_threads(2));
        let specs = batch_specimens(&specimens, n, config.base_seed);
        let serial: Vec<_> = specs
            .iter()
            .map(|spec| {
                run_cohort_serial(&engine, spec, config.model, config.session, config.policy())
            })
            .collect();

        let engine = sbgt_engine::SharedEngine::new(EngineConfig::default().with_threads(2));
        let (reports, wall) = timed(|| {
            let service =
                SurveillanceService::start(engine, config.clone()).expect("service starts");
            for s in &specimens {
                service.submit(*s).expect("queue sized for the workload");
            }
            service.drain()
        });
        let identical = reports.len() == serial.len()
            && reports.iter().zip(&serial).all(|(r, e)| {
                r.outcome == *e
                    && r.outcome
                        .marginals
                        .iter()
                        .zip(&e.marginals)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            });

        // Score classifications against the planted truth.
        let mut tp = 0usize;
        let mut fn_ = 0usize;
        let mut tn = 0usize;
        let mut fp = 0usize;
        for (spec, out) in specs.iter().zip(&serial) {
            for (i, status) in out.classification.statuses.iter().enumerate() {
                let infected = spec.truth.contains(i);
                match (infected, status) {
                    (true, SubjectStatus::Positive) => tp += 1,
                    (true, _) => fn_ += 1,
                    (false, SubjectStatus::Positive) => fp += 1,
                    (false, _) => tn += 1,
                }
            }
        }
        let total_tests: usize = serial.iter().map(|o| o.tests).sum();

        // Terminal per-cohort state: replay one cohort to completion and
        // measure its checkpoint — history-sized, never 2^N.
        let engine2 = Engine::new(EngineConfig::default().with_threads(2));
        let mut actor = CohortActor::new(
            &engine2,
            specs[0].clone(),
            config.model,
            config.session,
            config.policy(),
        );
        while !matches!(actor.run_round(&engine2), RoundStep::Finished(_)) {}
        let ckpt_bytes = actor.checkpoint().to_bytes().len();

        rows.push(vec![
            label.to_string(),
            fmt_duration(wall),
            format!("{:.0}", specimens.len() as f64 / wall.as_secs_f64()),
            format!("{:.3}", total_tests as f64 / specimens.len() as f64),
            format!(
                "{:.3}",
                if tp + fn_ == 0 {
                    1.0
                } else {
                    tp as f64 / (tp + fn_) as f64
                }
            ),
            format!(
                "{:.3}",
                if tn + fp == 0 {
                    1.0
                } else {
                    tn as f64 / (tn + fp) as f64
                }
            ),
            format!("{:.1} KiB", ckpt_bytes as f64 / 1024.0),
            if identical {
                "✓ bit-for-bit"
            } else {
                "✗ DIVERGED"
            }
            .into(),
        ]);
    }
    println!(
        "({cohorts} cohorts of {n} specimens at 5% prevalence — a dense \
         posterior at this size would need 8·2^{n} bytes; both backends \
         keep per-cohort state history-sized)\n"
    );
    println!(
        "{}",
        markdown_table(
            &[
                "backend",
                "wall",
                "specimens/s",
                "tests/specimen",
                "sensitivity",
                "specificity",
                "cohort ckpt",
                "vs serial reference"
            ],
            &rows
        )
    );
}

/// E13 — surveillance-service throughput and bit-for-bit equivalence.
///
/// Drives one fixed seeded Poisson workload through the full service
/// stack (bounded ingress → batcher → fair round-robin workers → shared
/// engine) at several worker counts, checks every run classifies
/// identically to a serial per-cohort reference, and reports end-to-end
/// throughput.
fn e13_service_throughput(quick: bool) {
    use sbgt_service::{batch_specimens, run_cohort_serial, Specimen, SurveillanceService};
    use sbgt_sim::traffic::{generate_arrivals, TrafficConfig};

    println!("## E13 — surveillance service throughput (extension)\n");
    let cohorts = if quick { 8 } else { 32 };
    let batch = 8usize;
    let config = sbgt_service::ServiceConfig {
        queue_capacity: cohorts * batch,
        batch_size: batch,
        dense_threshold: 7,
        parts: 4,
        base_seed: 0xE13,
        ..sbgt_service::ServiceConfig::default()
    };
    let specimens: Vec<Specimen> =
        generate_arrivals(&TrafficConfig::mixed(1000.0, cohorts * batch, 2026))
            .into_iter()
            .map(|a| Specimen {
                risk: a.risk,
                infected: a.infected,
            })
            .collect();

    let engine = sbgt_engine::SharedEngine::new(EngineConfig::default().with_threads(2));
    let serial: Vec<_> = batch_specimens(&specimens, batch, config.base_seed)
        .iter()
        .map(|spec| run_cohort_serial(&engine, spec, config.model, config.session, config.policy()))
        .collect();
    let total_tests: usize = serial.iter().map(|o| o.tests).sum();

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let engine = sbgt_engine::SharedEngine::new(EngineConfig::default().with_threads(2));
        let cfg = sbgt_service::ServiceConfig {
            workers,
            ..config.clone()
        };
        let (reports, wall) = timed(|| {
            let service = SurveillanceService::start(engine.clone(), cfg).expect("service starts");
            for s in &specimens {
                service.submit(*s).expect("queue sized for the workload");
            }
            service.drain()
        });
        let identical = reports.len() == serial.len()
            && reports.iter().zip(&serial).all(|(r, e)| {
                r.outcome == *e
                    && r.outcome
                        .marginals
                        .iter()
                        .zip(&e.marginals)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            });
        let stats = engine.metrics().service_stats();
        let throughput = specimens.len() as f64 / wall.as_secs_f64();
        rows.push(vec![
            workers.to_string(),
            fmt_duration(wall),
            format!("{throughput:.0}"),
            stats
                .round_latency_percentile(0.5)
                .map(fmt_duration)
                .unwrap_or_else(|| "—".into()),
            stats
                .round_latency_percentile(0.99)
                .map(fmt_duration)
                .unwrap_or_else(|| "—".into()),
            if identical {
                "✓ bit-for-bit"
            } else {
                "✗ DIVERGED"
            }
            .into(),
        ]);
    }
    println!(
        "({} specimens in {cohorts} cohorts of {batch}, mixed two-class risk \
         traffic, {total_tests} assays in the serial reference; engine fixed \
         at 2 threads while service workers sweep)\n",
        specimens.len()
    );
    println!(
        "{}",
        markdown_table(
            &[
                "workers",
                "wall",
                "specimens/s",
                "round p50",
                "round p99",
                "vs serial reference"
            ],
            &rows
        )
    );
}

/// Classification thresholds adapted to the scenario prevalence: the
/// positive threshold stays at 0.99; the negative threshold sits an order
/// of magnitude below the prior risk so subjects cannot be cleared by the
/// prior alone.
fn prevalence_aware_rule(p: f64) -> ClassificationRule {
    ClassificationRule::new(0.99, (p / 10.0).min(0.01))
}

fn lattice_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![12, 14]
    } else {
        vec![12, 14, 16, 18, 20, 22]
    }
}

fn reps_for(n: usize) -> usize {
    if n <= 16 {
        9
    } else if n <= 20 {
        5
    } else {
        3
    }
}

/// E1 — the workload configuration table.
fn e1_workloads() {
    println!("## E1 — workload configurations (Table 1)\n");
    let rows: Vec<Vec<String>> = Scenario::standard_table(16, 1)
        .into_iter()
        .map(|s| {
            let risks = s.profile.risks();
            let mean_risk = risks.iter().sum::<f64>() / risks.len() as f64;
            vec![
                s.name.clone(),
                s.profile.n_subjects().to_string(),
                format!("{mean_risk:.3}"),
                s.model.dilution.name().to_string(),
                format!("{:.2}", s.model.sensitivity),
                format!("{:.3}", s.model.specificity),
                s.episode.max_pool_size.to_string(),
                format!("{:.2}", s.episode.rule.pos_threshold),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "scenario",
                "N",
                "mean risk",
                "dilution",
                "sens",
                "spec",
                "max pool",
                "threshold"
            ],
            &rows
        )
    );
}

/// E2 — lattice-model manipulation (posterior update) runtime vs N.
fn e2_lattice_manipulation(quick: bool) {
    println!("## E2 — lattice-model manipulation: posterior update (Fig. A)\n");
    let model = BinaryDilutionModel::pcr_like();
    let cfg = ParConfig::always_parallel();
    let mut rows = Vec::new();
    for n in lattice_sizes(quick) {
        let reps = reps_for(n);
        let base_post = warmed_posterior(n);
        let pool = sbgt_lattice::State::from_subjects((0..8.min(n)).step_by(2));
        let table = model.likelihood_table(true, pool.rank());

        let (_, t_base) = best_of(reps, || {
            let mut p = base_post.clone();
            baseline_update(&mut p, &model, pool, true);
            p.get(sbgt_lattice::State::EMPTY)
        });
        let (_, t_fused) = best_of(reps, || {
            let mut p = base_post.clone();
            let z = p.mul_likelihood_fused(pool, &table);
            let inv = 1.0 / z;
            for x in p.probs_mut() {
                *x *= inv;
            }
            p.get(sbgt_lattice::State::EMPTY)
        });
        let (_, t_par) = best_of(reps, || {
            let mut p = base_post.clone();
            update_dense_par(&mut p, &model, &Observation::new(pool, true), cfg).unwrap();
            p.get(sbgt_lattice::State::EMPTY)
        });
        let engine = Engine::new(EngineConfig::default());
        let (_, t_sharded) = best_of(reps, || {
            let mut sp = ShardedPosterior::from_dense(&base_post, engine.default_partitions());
            sp.update(&engine, &model, pool, true).unwrap();
            sp.total()
        });
        rows.push(vec![
            n.to_string(),
            (1u64 << n).to_string(),
            fmt_duration(t_base),
            fmt_duration(t_fused),
            fmt_duration(t_par),
            fmt_duration(t_sharded),
            fmt_speedup(t_base, t_fused),
            fmt_speedup(t_base, t_par),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "N",
                "states",
                "baseline",
                "SBGT fused",
                "SBGT par",
                "SBGT engine",
                "fused speedup",
                "par speedup"
            ],
            &rows
        )
    );
}

/// E3 — test-selection runtime vs N.
fn e3_test_selection(quick: bool) {
    println!("## E3 — test selection: Bayesian halving (Fig. B)\n");
    let cfg = ParConfig::always_parallel();
    let mut rows = Vec::new();
    for n in lattice_sizes(quick) {
        let reps = reps_for(n);
        let post = warmed_posterior(n);
        let marginals = post.marginals();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| marginals[a].total_cmp(&marginals[b]));

        // Baseline: recompute marginals (N passes) + one full scan per
        // candidate prefix — the pre-SBGT framework's access pattern.
        let (_, t_base) = best_of(reps, || baseline_selection(&post, 16));
        // SBGT: single fused all-prefix pass (order maintained incrementally
        // by the session, so not recomputed here).
        let (_, t_fast) = best_of(reps, || {
            let masses = post.prefix_negative_masses(&order);
            let total = masses[0];
            (1..=n.min(16))
                .map(|k| (masses[k] / total - 0.5).abs())
                .fold(f64::INFINITY, f64::min)
        });
        let (_, t_par) = best_of(reps, || {
            let masses = par_prefix_negative_masses(&post, &order, cfg);
            let total = masses[0];
            (1..=n.min(16))
                .map(|k| (masses[k] / total - 0.5).abs())
                .fold(f64::INFINITY, f64::min)
        });
        rows.push(vec![
            n.to_string(),
            fmt_duration(t_base),
            fmt_duration(t_fast),
            fmt_duration(t_par),
            fmt_speedup(t_base, t_fast),
            fmt_speedup(t_base, t_par),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "N",
                "baseline",
                "SBGT one-pass",
                "SBGT par",
                "one-pass speedup",
                "par speedup"
            ],
            &rows
        )
    );
}

/// E4 — statistical-analysis runtime vs N.
fn e4_statistical_analysis(quick: bool) {
    println!("## E4 — statistical analyses (Fig. C)\n");
    let cfg = ParConfig::always_parallel();
    let mut rows = Vec::new();
    for n in lattice_sizes(quick) {
        let reps = reps_for(n);
        let post = warmed_posterior(n);
        // Baseline: per-subject passes + entropy pass + rank pass +
        // materialize-and-sort top-k.
        let (_, t_base) = best_of(reps, || baseline_analysis(&post));
        let (_, t_fused) = best_of(reps, || analyze(&post, 5).expected_positives);
        let (_, t_par) = best_of(reps, || analyze_par(&post, 5, cfg).expected_positives);
        rows.push(vec![
            n.to_string(),
            fmt_duration(t_base),
            fmt_duration(t_fused),
            fmt_duration(t_par),
            fmt_speedup(t_base, t_fused),
            fmt_speedup(t_base, t_par),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "N",
                "baseline",
                "SBGT fused",
                "SBGT par",
                "fused speedup",
                "par speedup"
            ],
            &rows
        )
    );
}

/// E5 — strong scaling of the three parallel kernels.
fn e5_strong_scaling(quick: bool) {
    println!("## E5 — strong scaling (Fig. D)\n");
    let n = if quick { 16 } else { 20 };
    let host = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(1);
    let mut threads = vec![1usize, 2, 4, 8];
    threads.retain(|&t| t <= 2 * host.max(1));
    let post = warmed_posterior(n);
    let model = BinaryDilutionModel::pcr_like();
    let pool = sbgt_lattice::State::from_subjects((0..8.min(n)).step_by(2));
    let table = model.likelihood_table(true, pool.rank());
    let order: Vec<usize> = (0..n).collect();
    let cfg = ParConfig::always_parallel();

    let mut rows = Vec::new();
    let mut t1: Option<(Duration, Duration, Duration)> = None;
    for &t in &threads {
        let rt = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("rayon pool");
        let (upd, sel, ana) = rt.install(|| {
            let (_, upd) = best_of(5, || {
                let mut p = post.clone();
                par_mul_likelihood_fused(&mut p, pool, &table, cfg)
            });
            let (_, sel) = best_of(5, || par_prefix_negative_masses(&post, &order, cfg)[1]);
            let (_, ana) = best_of(5, || {
                par_marginals(&post, cfg).iter().sum::<f64>() + par_entropy(&post, cfg)
            });
            (upd, sel, ana)
        });
        let base = *t1.get_or_insert((upd, sel, ana));
        rows.push(vec![
            t.to_string(),
            fmt_duration(upd),
            fmt_speedup(base.0, upd),
            fmt_duration(sel),
            fmt_speedup(base.1, sel),
            fmt_duration(ana),
            fmt_speedup(base.2, ana),
        ]);
    }
    println!("(N = {n}; host has {host} hardware thread(s) — scaling saturates there)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "threads",
                "update",
                "upd speedup",
                "selection",
                "sel speedup",
                "analysis",
                "ana speedup"
            ],
            &rows
        )
    );
}

/// E6 — classification quality vs prevalence.
fn e6_classification_quality(quick: bool) {
    println!("## E6 — classification quality (Fig. E)\n");
    let reps = if quick { 12 } else { 80 };
    let n = 12;
    let mut rows = Vec::new();
    for &p in &[0.005, 0.01, 0.02, 0.05, 0.10] {
        let profile = RiskProfile::Flat { n, p };
        let model = BinaryDilutionModel::pcr_like();
        let mut confusion = ConfusionMatrix::default();
        let mut tests = Vec::new();
        for seed in 0..reps {
            let pop = Population::sample(&profile, 1000 + seed);
            let cfg = EpisodeConfig {
                // The negative threshold must sit below the prior risk or
                // the rule classifies the whole cohort untested (the
                // operating-point guidance of the method paper).
                rule: prevalence_aware_rule(p),
                ..EpisodeConfig::standard(seed)
            };
            let r = run_episode(&pop, &model, &cfg);
            confusion.merge(&r.confusion);
            tests.push(r.stats.tests_per_subject());
        }
        let t = SummaryStats::from_samples(&tests);
        rows.push(vec![
            format!("{p:.3}"),
            format!("{:.3}", confusion.sensitivity()),
            format!("{:.3}", confusion.specificity()),
            format!("{:.1}%", 100.0 * confusion.accuracy()),
            format!("{:.3} ± {:.3}", t.mean, t.sd),
            confusion.undetermined.to_string(),
        ]);
    }
    println!("(N = {n}, PCR-like assay, thresholds pos 0.99 / neg p/10, {reps} replicates/row)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "prevalence",
                "sensitivity",
                "specificity",
                "accuracy",
                "tests/subject",
                "undetermined"
            ],
            &rows
        )
    );
}

/// E7 — testing efficiency: BHA vs Dorfman vs individual, with and
/// without dilution.
fn e7_testing_efficiency(quick: bool) {
    println!("## E7 — group-testing efficiency (Fig. F)\n");
    e7_with_model(
        quick,
        "ideal assay, no dilution (the classic efficiency setting)",
        BinaryDilutionModel::new(0.99, 0.995, Dilution::None),
    );
    e7_with_model(
        quick,
        "PCR-like assay with exponential dilution (pooling information degrades)",
        BinaryDilutionModel::pcr_like(),
    );
}

fn e7_with_model(quick: bool, label: &str, model: BinaryDilutionModel) {
    println!("### {label}\n");
    let reps = if quick { 12 } else { 80 };
    let n = 16;
    let mut rows = Vec::new();
    for &p in &[0.005, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let profile = RiskProfile::Flat { n, p };
        let dorfman_g = ((1.0 / p).sqrt().round() as usize).clamp(2, n);
        let mut bha = Vec::new();
        let mut dorf = Vec::new();
        let mut arr = Vec::new();
        let mut indiv = Vec::new();
        let mut bha_conf = ConfusionMatrix::default();
        let mut dorf_conf = ConfusionMatrix::default();
        let (rows_g, cols_g) = square_grid(n);
        for seed in 0..reps {
            let pop = Population::sample(&profile, 2000 + seed);
            let cfg = EpisodeConfig {
                rule: prevalence_aware_rule(p),
                ..EpisodeConfig::standard(seed)
            };
            let rb = run_episode(&pop, &model, &cfg);
            bha.push(rb.stats.tests_per_subject());
            bha_conf.merge(&rb.confusion);
            let rd = run_dorfman(&pop, &model, dorfman_g, seed);
            dorf.push(rd.stats.tests_per_subject());
            dorf_conf.merge(&rd.confusion);
            arr.push(
                run_array_testing(&pop, &model, rows_g, cols_g, seed)
                    .stats
                    .tests_per_subject(),
            );
            indiv.push(run_individual(&pop, &model, seed).stats.tests_per_subject());
        }
        let b = SummaryStats::from_samples(&bha);
        let d = SummaryStats::from_samples(&dorf);
        let a = SummaryStats::from_samples(&arr);
        let i = SummaryStats::from_samples(&indiv);
        rows.push(vec![
            format!("{p:.3}"),
            format!("{:.3}", b.mean),
            format!("{:.3}", d.mean),
            format!("{:.3}", a.mean),
            format!("{:.3}", i.mean),
            format!("{:.1}%", 100.0 * (1.0 - b.mean / i.mean)),
            format!("{:.1}%", 100.0 * (1.0 - d.mean / i.mean)),
            format!("{:.1}%", 100.0 * bha_conf.accuracy()),
            format!("{:.1}%", 100.0 * dorf_conf.accuracy()),
        ]);
    }
    println!("(N = {n}, {reps} replicates/row; Dorfman pool ≈ 1/√p; array grid √N × √N)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "prevalence",
                "BHA t/subj",
                "Dorfman t/subj",
                "array t/subj",
                "individual",
                "BHA savings",
                "Dorfman savings",
                "BHA acc",
                "Dorfman acc"
            ],
            &rows
        )
    );
}

/// E8 — look-ahead width: stages vs tests.
fn e8_lookahead_tradeoff(quick: bool) {
    println!("## E8 — look-ahead trade-off (Fig. G)\n");
    let reps = if quick { 10 } else { 60 };
    let n = 12;
    let profile = RiskProfile::Flat { n, p: 0.05 };
    let model = BinaryDilutionModel::pcr_like();
    let mut rows = Vec::new();
    for width in [1usize, 2, 4] {
        let mut stages = Vec::new();
        let mut tests = Vec::new();
        for seed in 0..reps {
            let pop = Population::sample(&profile, 3000 + seed);
            let cfg = EpisodeConfig {
                selection: if width == 1 {
                    SelectionMethod::HalvingPrefix
                } else {
                    SelectionMethod::Lookahead { width }
                },
                ..EpisodeConfig::standard(seed)
            };
            let r = run_episode(&pop, &model, &cfg);
            stages.push(r.stats.stages as f64);
            tests.push(r.stats.tests as f64);
        }
        let s = SummaryStats::from_samples(&stages);
        let t = SummaryStats::from_samples(&tests);
        rows.push(vec![
            width.to_string(),
            format!("{:.2} ± {:.2}", s.mean, s.sd),
            format!("{:.2} ± {:.2}", t.mean, t.sd),
            format!("{:.3}", t.mean / n as f64),
        ]);
    }
    println!("(N = {n}, p = 0.05, {reps} replicates/row)\n");
    println!(
        "{}",
        markdown_table(
            &["stage width L", "stages", "tests", "tests/subject"],
            &rows
        )
    );
}

/// E9 — end-to-end per-operation breakdown, SBGT vs baseline.
fn e9_stage_breakdown(quick: bool) {
    println!("## E9 — end-to-end operation breakdown (Table 2)\n");
    let n = if quick { 14 } else { 18 };
    let model = BinaryDilutionModel::pcr_like();
    let prior = bench_prior(n, 7);
    let truth = sbgt_lattice::State::from_subjects([1, n - 2]);
    let lab = |pool: sbgt_lattice::State| truth.intersects(pool);

    // SBGT session with manual loop so each operation class is timed.
    let mut fast = SbgtSession::new(prior.clone(), model, SbgtConfig::default());
    let (mut f_upd, mut f_sel, mut f_ana) = (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    loop {
        let (classification, d) = timed(|| fast.classify());
        f_ana += d;
        if classification.is_terminal() || fast.stages() >= 100 {
            break;
        }
        let (sel, d) = timed(|| fast.select_next());
        f_sel += d;
        let Some(sel) = sel else { break };
        let outcome = lab(sel.pool);
        let (res, d) = timed(|| fast.observe(sel.pool, outcome));
        f_upd += d;
        if res.is_err() {
            break;
        }
    }
    let f_tests = fast.history().len();

    let mut base = BaselineSession::new(prior, model, SbgtConfig::default().serial());
    let (mut b_upd, mut b_sel, mut b_ana) = (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    loop {
        let (classification, d) = timed(|| base.classify());
        b_ana += d;
        if classification.is_terminal() || base.stages() >= 100 {
            break;
        }
        let (sel, d) = timed(|| base.select_next());
        b_sel += d;
        let Some(sel) = sel else { break };
        let outcome = lab(sel.pool);
        let (res, d) = timed(|| base.observe(sel.pool, outcome));
        b_upd += d;
        if res.is_err() {
            break;
        }
    }
    let b_tests = base.history().len();

    println!("(N = {n}; identical lab oracle; SBGT used {f_tests} tests, baseline {b_tests})\n");
    let rows = vec![
        vec![
            "lattice manipulation (update)".into(),
            fmt_duration(b_upd),
            fmt_duration(f_upd),
            fmt_speedup(b_upd, f_upd),
        ],
        vec![
            "test selection".into(),
            fmt_duration(b_sel),
            fmt_duration(f_sel),
            fmt_speedup(b_sel, f_sel),
        ],
        vec![
            "statistical analysis".into(),
            fmt_duration(b_ana),
            fmt_duration(f_ana),
            fmt_speedup(b_ana, f_ana),
        ],
        vec![
            "total".into(),
            fmt_duration(b_upd + b_sel + b_ana),
            fmt_duration(f_upd + f_sel + f_ana),
            fmt_speedup(b_upd + b_sel + b_ana, f_upd + f_sel + f_ana),
        ],
    ];
    println!(
        "{}",
        markdown_table(&["operation class", "baseline", "SBGT", "speedup"], &rows)
    );
}

/// E10 — sparse-lattice pruning ablation.
fn e10_pruning_ablation(quick: bool) {
    println!("## E10 — pruning ablation (Fig. H)\n");
    let n = if quick { 14 } else { 18 };
    let model = BinaryDilutionModel::pcr_like();
    let dense = warmed_posterior(n);
    let pool = sbgt_lattice::State::from_subjects((0..6.min(n)).step_by(2));
    let dense_marginals = dense.marginals();
    let mut rows = Vec::new();
    for &eps in &[0.0, 1e-12, 1e-9, 1e-6, 1e-3] {
        let mut sparse = SparsePosterior::from_dense(&dense, eps);
        let support = sparse.support();
        let (_, t_update) = best_of(5, || {
            let mut s = sparse.clone();
            s.mul_likelihood_fused(pool, &model.likelihood_table(true, pool.rank()))
        });
        sparse.try_normalize();
        let max_err = sparse
            .marginals()
            .iter()
            .zip(&dense_marginals)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        rows.push(vec![
            format!("{eps:.0e}"),
            support.to_string(),
            format!("{:.2}%", 100.0 * support as f64 / dense.len() as f64),
            fmt_duration(t_update),
            format!("{max_err:.2e}"),
        ]);
    }
    println!("(N = {n}, posterior warmed by 6 observations)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "epsilon",
                "support",
                "support %",
                "update time",
                "max marginal error"
            ],
            &rows
        )
    );
}

/// E11 — robustness to prior misspecification.
fn e11_misspecification(quick: bool) {
    println!("## E11 — prior misspecification robustness (Fig. I)\n");
    let reps = if quick { 10 } else { 60 };
    let n = 12;
    let true_p = 0.05;
    let episode = EpisodeConfig {
        rule: prevalence_aware_rule(true_p),
        ..EpisodeConfig::standard(0)
    };
    let rows: Vec<Vec<String>> = sbgt_sim::misspecification_sweep(
        n,
        true_p,
        &[0.2, 0.5, 1.0, 2.0, 5.0],
        BinaryDilutionModel::pcr_like(),
        &episode,
        reps,
    )
    .into_iter()
    .map(|r| {
        vec![
            format!("{:.1}", r.bias),
            format!("{:.3}", r.assumed_prevalence),
            format!("{:.3}", r.confusion.sensitivity()),
            format!("{:.3}", r.confusion.specificity()),
            format!("{:.1}%", 100.0 * r.confusion.accuracy()),
            format!(
                "{:.3} ± {:.3}",
                r.tests_per_subject.mean, r.tests_per_subject.sd
            ),
            format!("{:.1} ± {:.1}", r.stages.mean, r.stages.sd),
        ]
    })
    .collect();
    println!("(N = {n}, true prevalence {true_p}, PCR-like assay, {reps} replicates/row)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "prior bias",
                "assumed p",
                "sensitivity",
                "specificity",
                "accuracy",
                "tests/subject",
                "stages"
            ],
            &rows
        )
    );
}

/// E12 — selection-rule quality/cost: prefix vs zeta-global vs naive
/// exhaustive.
fn e12_selection_rules(quick: bool) {
    println!("## E12 — selection rules: prefix vs global vs exhaustive (Fig. J)\n");
    use sbgt_select::{
        select_halving_exhaustive, select_halving_global, select_halving_prefix, CandidateStrategy,
    };
    let sizes: Vec<usize> = if quick {
        vec![10, 12]
    } else {
        vec![10, 12, 14, 16, 18]
    };
    let mut rows = Vec::new();
    for n in sizes {
        let reps = reps_for(n);
        let post = warmed_posterior(n);
        let marginals = post.marginals();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| marginals[a].total_cmp(&marginals[b]));

        let (sel_prefix, t_prefix) =
            best_of(reps, || select_halving_prefix(&post, &order, 16).unwrap());
        let (sel_global, t_global) =
            best_of(reps, || select_halving_global(&post, &order, 16).unwrap());
        // Naive exhaustive is Θ(4^N): only run it while feasible.
        let naive = if n <= 14 {
            let candidates = CandidateStrategy::Exhaustive { max_pool_size: 16 }.generate(&order);
            let (sel, t) = best_of(1, || select_halving_exhaustive(&post, &candidates).unwrap());
            assert_eq!(sel.pool, sel_global.pool, "global must equal exhaustive");
            Some(t)
        } else {
            None
        };
        rows.push(vec![
            n.to_string(),
            fmt_duration(t_prefix),
            format!("{:.4}", sel_prefix.distance),
            fmt_duration(t_global),
            format!("{:.4}", sel_global.distance),
            naive.map(fmt_duration).unwrap_or_else(|| "—".into()),
        ]);
    }
    println!("(distance = |m(A) − ½|, lower is a better-halving pool; global ≡ exhaustive by construction)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "N",
                "prefix time",
                "prefix dist",
                "global time",
                "global dist",
                "naive exhaustive time"
            ],
            &rows
        )
    );
}
