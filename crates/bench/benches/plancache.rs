//! Plan-cache warm/cold service throughput: the headline number for the
//! memoized BHA decision trees (`sbgt-select::plancache`).
//!
//! The workload is 64 shared-config cohorts — identical risk band, so
//! quantization collapses every cohort onto ONE `PlanKey` — of dense
//! width-8 look-ahead sessions, the costliest selection path. `cold`
//! starts every iteration with a fresh cache (every select step is a live
//! `drive_lookahead` miss that extends the tree); `warm` retains one
//! process-wide cache across iterations, so steady-state select steps
//! replay memoized branches. Same specimens, same service, same engine —
//! the gap is exactly the look-ahead work the cache removes.
//!
//! Bit-for-bit equivalence of cached vs live runs is asserted here
//! coarsely (identical test totals) and exhaustively by
//! `crates/select/tests/plancache_equivalence.rs` and the service/chaos
//! suites. The committed reference numbers live in `BENCH_plancache.json`.
//!
//! `SBGT_BENCH_SMOKE=1` shrinks the workload so `make plancache-smoke`
//! (criterion `--test` mode) finishes in seconds.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use sbgt::SbgtConfig;
use sbgt_engine::{EngineConfig, SharedEngine};
use sbgt_service::{PlanCache, ServiceConfig, Specimen, SurveillanceService};
use sbgt_sim::traffic::{generate_arrivals, TrafficConfig};

const BATCH: usize = 12;
const SHARED_RISK: f64 = 0.05;

fn smoke() -> bool {
    std::env::var("SBGT_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// One shared risk band: every cohort quantizes to the same `PlanKey`;
/// only the seeded ground truths differ, which is what grows (and then
/// replays) the outcome-indexed branches of the single shared tree.
fn workload(cohorts: usize) -> Vec<Specimen> {
    generate_arrivals(&TrafficConfig::mixed(1000.0, cohorts * BATCH, 42))
        .into_iter()
        .map(|a| Specimen {
            risk: SHARED_RISK,
            infected: a.infected,
        })
        .collect()
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 1024,
        batch_size: BATCH,
        // Above the batch size: every cohort runs the dense session with
        // width-8 look-ahead — the selection path worth memoizing.
        dense_threshold: BATCH + 1,
        session: SbgtConfig::default().serial().with_stage_width(8),
        plan_cache_nodes: 1 << 14,
        plan_risk_buckets: 16,
        base_seed: 42,
        ..ServiceConfig::default()
    }
}

fn run_once(engine: &SharedEngine, specimens: &[Specimen], cache: &Arc<PlanCache>) -> usize {
    let service =
        SurveillanceService::start_with_cache(engine.clone(), config(), Some(Arc::clone(cache)))
            .expect("service starts");
    for s in specimens {
        service.submit(*s).expect("bench queue never fills");
    }
    let reports = service.drain();
    assert_eq!(reports.len(), specimens.len() / BATCH);
    reports.iter().map(|r| r.outcome.tests).sum()
}

fn bench_plancache(c: &mut Criterion) {
    let cohorts = if smoke() { 8 } else { 64 };
    let specimens = workload(cohorts);
    let budget = config().plan_cache_nodes;
    // One engine across iterations: dense cohorts never touch it, and
    // re-spawning its pool would just add identical noise to both sides.
    let engine = SharedEngine::new(EngineConfig::default().with_threads(2));

    // Reference totals: cached runs must do exactly the same tests as a
    // cold run — the cache may only remove selection work, never change it.
    let cold_tests = run_once(&engine, &specimens, &PlanCache::new(budget));
    let warm_cache = PlanCache::new(budget);
    let warm_tests = run_once(&engine, &specimens, &warm_cache);
    assert_eq!(cold_tests, warm_tests, "cached ≡ live violated");

    let mut group = c.benchmark_group(format!("plancache/cohorts{cohorts}"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("cold", |b| {
        b.iter(|| run_once(&engine, &specimens, &PlanCache::new(budget)))
    });
    group.bench_function("warm", |b| {
        b.iter(|| {
            let tests = run_once(&engine, &specimens, &warm_cache);
            assert_eq!(tests, cold_tests, "warm replay diverged");
            tests
        })
    });
    group.finish();

    let stats = warm_cache.stats();
    assert!(stats.hits > 0, "warm runs must hit the shared tree");
    eprintln!(
        "plancache: {} tree(s), {} node(s), stats {:?}",
        warm_cache.tree_count(),
        warm_cache.total_nodes(),
        stats
    );
}

criterion_group!(benches, bench_plancache);
criterion_main!(benches);
