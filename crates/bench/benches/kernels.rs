//! Per-round posterior kernels: today's fused dense path vs the
//! runtime-dispatched SIMD kernels vs the adaptive sparse representation.
//!
//! Times one Bayesian update round at N = 22 (4M states) five ways:
//!
//! * `fused_baseline` — today's fused path: `mul_likelihood_fused`
//!   (single scalar traversal, multiply + evidence sum) plus the
//!   normalize pass. This is the pre-SIMD per-round cost.
//! * `simd_update` — the same round through the runtime-dispatched
//!   blocked-popcount kernel (`simd::mul_table_block`, AVX2/AVX-512
//!   with scalar fallback), bit-for-bit with the baseline.
//! * `separate_stats` — the full round with statistics the way the
//!   pre-superstage code paid for it: fused update + normalize, then a
//!   marginals traversal, then a prefix-negative-mass traversal.
//! * `simd_superstage` — `simd::fused_update_block`: update, evidence,
//!   marginals, and the look-ahead prefix histogram in ONE dispatched
//!   traversal, plus the normalize pass.
//! * `sparse_round` — the per-round update after the adaptive dense→
//!   sparse switch has fired on a concentrated late-session posterior
//!   (`update_sparse_with_table`, ε = 1e-9): cost is O(support · rank)
//!   instead of O(2^N).
//!
//! The acceptance target is ≥ 4x per-round over `fused_baseline` at
//! N = 22 for SIMD + sparse combined; the sparse round alone clears it
//! by orders of magnitude once the posterior has concentrated, which is
//! exactly the regime the `SparseSwitch` crossover targets.
//!
//! `SBGT_BENCH_SMOKE=1` shrinks to N = 12 so `make kernels-smoke`
//! (criterion `--test` mode) finishes in seconds.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use sbgt_bayes::update_sparse_with_table;
use sbgt_bench::{bench_prior, observation_script, warmed_posterior};
use sbgt_lattice::simd::{fused_update_block, mul_table_block};
use sbgt_lattice::{DensePosterior, LookaheadKernel, SparsePosterior, State};
use sbgt_response::{BinaryDilutionModel, ResponseModel};

const SPARSE_EPSILON: f64 = 1e-9;

fn smoke() -> bool {
    std::env::var("SBGT_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// A rank-8 pool valid for any `n >= 8`.
fn round_pool(n: usize) -> State {
    let step = (n / 8).max(1);
    State::from_subjects((0..8).map(|j| j * step))
}

fn scale(probs: &mut [f64], inv: f64) {
    for p in probs {
        *p *= inv;
    }
}

/// A late-session posterior: the same warmed prior driven through a long
/// scripted observation sequence so mass has concentrated onto a small
/// support — the regime where the adaptive switch goes sparse.
fn concentrated_sparse(n: usize) -> SparsePosterior {
    let model = BinaryDilutionModel::pcr_like();
    let mut dense = bench_prior(n, 7).to_dense();
    for (pool, outcome) in observation_script(n, 40) {
        let table = model.likelihood_table(outcome, pool.rank());
        let z = dense.mul_likelihood_fused(pool, &table);
        if z > 0.0 {
            scale(dense.probs_mut(), 1.0 / z);
        }
    }
    SparsePosterior::from_dense(&dense, SPARSE_EPSILON)
}

fn bench_kernels(c: &mut Criterion) {
    let n = if smoke() { 12 } else { 22 };
    let model = BinaryDilutionModel::pcr_like();
    let dense: DensePosterior = warmed_posterior(n);
    let pool = round_pool(n);
    let mask = pool.bits();
    let tables = [
        model.likelihood_table(false, pool.rank()),
        model.likelihood_table(true, pool.rank()),
    ];
    let order: Vec<usize> = (0..n).collect();
    let kernel = LookaheadKernel::new(n, &order);

    let mut group = c.benchmark_group(format!("kernels_round/N{n}"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    // Alternating outcomes keep the posterior well-conditioned while the
    // same instance is updated round after round, like a real session.
    group.bench_function("fused_baseline", |b| {
        let mut post = dense.clone();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let z = post.mul_likelihood_fused(pool, &tables[flip as usize]);
            scale(post.probs_mut(), 1.0 / z);
            z
        })
    });

    group.bench_function("simd_update", |b| {
        let mut post = dense.clone();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let z = mul_table_block(post.probs_mut(), 0, mask, &tables[flip as usize]);
            scale(post.probs_mut(), 1.0 / z);
            z
        })
    });

    group.bench_function("separate_stats", |b| {
        let mut post = dense.clone();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let z = post.mul_likelihood_fused(pool, &tables[flip as usize]);
            scale(post.probs_mut(), 1.0 / z);
            let marginals = post.marginals();
            let masses = post.prefix_negative_masses(&order);
            (z, marginals, masses)
        })
    });

    group.bench_function("simd_superstage", |b| {
        let mut post = dense.clone();
        let mut flip = false;
        let mut marginals = vec![0.0f64; n];
        let mut hist = vec![0.0f64; kernel.num_prefixes()];
        b.iter(|| {
            flip = !flip;
            marginals.fill(0.0);
            hist.fill(0.0);
            let z = fused_update_block(
                post.probs_mut(),
                0,
                mask,
                &tables[flip as usize],
                &kernel,
                &mut marginals,
                &mut hist,
            );
            scale(post.probs_mut(), 1.0 / z);
            z
        })
    });

    let sparse = concentrated_sparse(n);
    group.bench_function("sparse_round", |b| {
        let mut post = sparse.clone();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            update_sparse_with_table(&mut post, pool, &tables[flip as usize], SPARSE_EPSILON)
                .unwrap()
        })
    });
    group.finish();

    eprintln!(
        "kernels_round/N{n}: simd level = {:?}, sparse support = {} of {} states \
         (pruned mass {:.3e})",
        sbgt_lattice::simd::active(),
        sparse.support(),
        1usize << n,
        sparse.pruned_mass(),
    );
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
