//! Criterion bench for experiment E5: strong scaling and granularity of the
//! parallel kernels — thread-count sweep (bounded by host parallelism) and
//! chunk-size / partition-count ablations.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sbgt::ShardedPosterior;
use sbgt_bench::warmed_posterior;
use sbgt_engine::{Engine, EngineConfig};
use sbgt_lattice::kernels::{par_mul_likelihood_fused, ParConfig};
use sbgt_lattice::State;
use sbgt_response::{BinaryDilutionModel, ResponseModel};

const N: usize = 18;

fn bench_thread_scaling(c: &mut Criterion) {
    let model = BinaryDilutionModel::pcr_like();
    let post = warmed_posterior(N);
    let pool = State::from_subjects([0, 2, 4, 6]);
    let table = model.likelihood_table(true, pool.rank());
    let host = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(1);

    let mut group = c.benchmark_group("e5_thread_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for t in [1usize, 2, 4, 8] {
        if t > 2 * host {
            break;
        }
        let rt = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("rayon pool");
        group.bench_with_input(BenchmarkId::new("update", t), &t, |b, _| {
            b.iter(|| {
                rt.install(|| {
                    let mut p = post.clone();
                    par_mul_likelihood_fused(&mut p, pool, &table, ParConfig::always_parallel())
                })
            })
        });
    }
    group.finish();
}

fn bench_chunk_granularity(c: &mut Criterion) {
    let model = BinaryDilutionModel::pcr_like();
    let post = warmed_posterior(N);
    let pool = State::from_subjects([0, 2, 4, 6]);
    let table = model.likelihood_table(true, pool.rank());

    let mut group = c.benchmark_group("e5_chunk_granularity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for shift in [10usize, 12, 14, 16] {
        let cfg = ParConfig {
            chunk_len: 1 << shift,
            threshold: 0,
        };
        group.bench_with_input(
            BenchmarkId::new("update_chunk", 1usize << shift),
            &shift,
            |b, _| {
                b.iter(|| {
                    let mut p = post.clone();
                    par_mul_likelihood_fused(&mut p, pool, &table, cfg)
                })
            },
        );
    }
    group.finish();
}

fn bench_engine_partitions(c: &mut Criterion) {
    let model = BinaryDilutionModel::pcr_like();
    let post = warmed_posterior(N);
    let pool = State::from_subjects([0, 2, 4, 6]);
    let engine = Engine::new(EngineConfig::default());

    let mut group = c.benchmark_group("e5_engine_partitions");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for parts in [1usize, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("sharded_update", parts),
            &parts,
            |b, &p| {
                b.iter(|| {
                    let mut sp = ShardedPosterior::from_dense(&post, p);
                    sp.update(&engine, &model, pool, true).unwrap();
                    sp.total()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_thread_scaling,
    bench_chunk_granularity,
    bench_engine_partitions
);
criterion_main!(benches);
