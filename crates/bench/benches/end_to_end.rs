//! Criterion bench for experiment E9: full sequential episodes end-to-end —
//! SBGT session vs the baseline framework against the same lab oracle, and
//! the engine-distributed surveillance outer loop.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sbgt::prelude::*;
use sbgt_bench::bench_prior;
use sbgt_engine::{Engine, EngineConfig};
use sbgt_response::BinaryDilutionModel as Assay;
use sbgt_sim::runner::EpisodeConfig;
use sbgt_sim::{run_surveillance, RiskProfile, SurveillanceConfig};

fn bench_episode(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_episode");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for &n in &[12usize, 14] {
        let prior = bench_prior(n, 7);
        let truth = State::from_subjects([1, n - 2]);
        group.bench_with_input(BenchmarkId::new("sbgt", n), &n, |b, _| {
            b.iter(|| {
                let mut s =
                    SbgtSession::new(prior.clone(), Assay::pcr_like(), SbgtConfig::default());
                s.run_to_classification(|pool| truth.intersects(pool)).tests
            })
        });
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| {
                let mut s = BaselineSession::new(
                    prior.clone(),
                    Assay::pcr_like(),
                    SbgtConfig::default().serial(),
                );
                s.run_to_classification(|pool| truth.intersects(pool)).tests
            })
        });
    }
    group.finish();
}

fn bench_surveillance(c: &mut Criterion) {
    let engine = Engine::new(EngineConfig::default());
    let mut group = c.benchmark_group("e9_surveillance");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    let cfg = SurveillanceConfig {
        cohorts: 8,
        profile: RiskProfile::Flat { n: 10, p: 0.02 },
        model: Assay::pcr_like(),
        episode: EpisodeConfig::standard(0),
        base_seed: 9,
    };
    group.bench_function("8_cohorts_of_10", |b| {
        b.iter(|| run_surveillance(&engine, &cfg).total_tests)
    });
    group.finish();
}

criterion_group!(benches, bench_episode, bench_surveillance);
criterion_main!(benches);
