//! Criterion bench for experiment E3: test selection — per-candidate
//! full-lattice scans (baseline) vs the one-pass all-prefix halving search
//! (SBGT), serial and parallel.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sbgt_bench::{baseline_selection, warmed_posterior};
use sbgt_lattice::kernels::{par_prefix_negative_masses, ParConfig};
use sbgt_select::{select_halving_global, select_halving_prefix, select_halving_prefix_par};

fn bench_selection(c: &mut Criterion) {
    let cfg = ParConfig::always_parallel();
    let mut group = c.benchmark_group("e3_selection");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for &n in &[12usize, 16, 18] {
        let post = warmed_posterior(n);
        let marginals = post.marginals();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| marginals[a].total_cmp(&marginals[b]));

        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| baseline_selection(&post, 16))
        });
        group.bench_with_input(BenchmarkId::new("sbgt_one_pass", n), &n, |b, _| {
            b.iter(|| select_halving_prefix(&post, &order, 16).unwrap().distance)
        });
        group.bench_with_input(BenchmarkId::new("sbgt_par", n), &n, |b, _| {
            b.iter(|| {
                select_halving_prefix_par(&post, &order, 16, cfg)
                    .unwrap()
                    .distance
            })
        });
        group.bench_with_input(BenchmarkId::new("prefix_kernel_only", n), &n, |b, _| {
            b.iter(|| par_prefix_negative_masses(&post, &order, cfg)[1])
        });
        group.bench_with_input(BenchmarkId::new("sbgt_global_zeta", n), &n, |b, _| {
            b.iter(|| select_halving_global(&post, &order, 16).unwrap().distance)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
