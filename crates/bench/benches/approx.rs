//! Large-cohort approximate backends: cohorts past the exact `2^N` wall
//! through the full service stack, plus whole-campaign classification
//! cost for each backend as the cohort size grows.
//!
//! One service iteration starts a fresh `SurveillanceService` with an
//! oversized batch (cohort = 256 specimens), routes every cohort to the
//! configured approximate backend via `approx_threshold`, and drains the
//! seeded large-cohort workload to classification. A dense session at
//! this size would need a `2^256`-entry lattice; the approx sessions keep
//! `O(specimens + pools [+ particles])` state, which the committed
//! reference numbers in `BENCH_approx.json` pin via final checkpoint
//! sizes. `SBGT_BENCH_SMOKE=1` shrinks cohorts and sweeps so
//! `make approx-smoke` (criterion `--test` mode) finishes in seconds.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use sbgt::SbgtConfig;
use sbgt_approx::{BpConfig, BpSession, ParticleConfig, ParticleSession};
use sbgt_engine::{EngineConfig, SharedEngine};
use sbgt_lattice::BigState;
use sbgt_response::{BinaryDilutionModel, Dilution};
use sbgt_service::{ApproxBackend, ServiceConfig, Specimen, SurveillanceService};
use sbgt_sim::traffic::{generate_arrivals, TrafficConfig};

fn smoke() -> bool {
    std::env::var("SBGT_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn workload(n: usize, cohorts: usize) -> Vec<Specimen> {
    generate_arrivals(&TrafficConfig::large_cohort(n, cohorts, 0.05, 42))
        .into_iter()
        .map(|a| Specimen {
            risk: a.risk,
            infected: a.infected,
        })
        .collect()
}

fn run_service(specimens: &[Specimen], n: usize, backend: ApproxBackend) -> usize {
    let engine = SharedEngine::new(EngineConfig::default().with_threads(2));
    let config = ServiceConfig {
        queue_capacity: specimens.len(),
        batch_size: n,
        approx_threshold: 17,
        approx_backend: backend,
        approx_particles: 1024,
        base_seed: 42,
        // Undiluted assay and a stage cap sized for ~13 positives per
        // 256-specimen cohort: the measurement is inference scaling past
        // the 2^N wall, not dilution physics (E17 quantifies the dilution
        // cost separately).
        model: model(),
        session: SbgtConfig {
            max_stages: 2000,
            ..SbgtConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = SurveillanceService::start(engine, config).expect("service starts");
    for s in specimens {
        service.submit(*s).expect("bench queue never fills");
    }
    let reports = service.drain();
    assert_eq!(
        reports.len(),
        specimens.len() / n,
        "every cohort classified"
    );
    assert!(
        reports
            .iter()
            .all(|r| r.outcome.classification.is_terminal()),
        "large cohorts must reach terminal classifications"
    );
    reports.iter().map(|r| r.outcome.tests).sum()
}

fn bench_service_large_cohorts(c: &mut Criterion) {
    let (n, cohorts) = if smoke() { (64, 1) } else { (256, 4) };
    let specimens = workload(n, cohorts);

    let mut group = c.benchmark_group(format!("approx/service-n{n}"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for (label, backend) in [
        ("bp", ApproxBackend::Bp),
        ("particle", ApproxBackend::Particle),
    ] {
        group.bench_function(label, |b| b.iter(|| run_service(&specimens, n, backend)));
    }
    group.finish();
}

/// Undiluted assay so classification cost reflects the inference scaling,
/// not dilution physics (pool sizes are capped at 16 either way).
fn model() -> BinaryDilutionModel {
    BinaryDilutionModel::new(0.99, 0.995, Dilution::None)
}

fn planted(n: usize) -> (Vec<f64>, BigState) {
    let infected = [n / 7, n / 2, n - 3];
    (vec![0.05; n], BigState::from_subjects(infected))
}

fn bench_classification_scaling(c: &mut Criterion) {
    let sizes: &[usize] = if smoke() { &[64] } else { &[64, 128, 256] };
    let config = SbgtConfig::default();

    let mut group = c.benchmark_group("approx/classify");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for &n in sizes {
        let (risks, truth) = planted(n);
        group.bench_function(format!("bp-n{n}"), |b| {
            b.iter(|| {
                let mut s = BpSession::new(&risks, model(), config, BpConfig::default()).unwrap();
                let out = s.run_to_classification(|pool| truth.intersects(pool));
                assert!(out.classification.is_terminal());
                out.tests
            })
        });
        group.bench_function(format!("particle-n{n}"), |b| {
            b.iter(|| {
                let pcfg = ParticleConfig {
                    particles: 1024,
                    seed: 42,
                    ..ParticleConfig::default()
                };
                let mut s = ParticleSession::new(&risks, model(), config, pcfg).unwrap();
                let out = s.run_to_classification(|pool| truth.intersects(pool));
                assert!(out.classification.is_terminal());
                out.tests
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_service_large_cohorts,
    bench_classification_scaling
);
criterion_main!(benches);
