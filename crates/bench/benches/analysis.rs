//! Criterion bench for experiment E4: statistical analyses — per-statistic
//! full passes plus materialize-and-sort (baseline) vs SBGT's fused
//! passes, serial and parallel.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sbgt_bayes::{analyze, analyze_par};
use sbgt_bench::{baseline_analysis, warmed_posterior};
use sbgt_lattice::kernels::{par_marginals, ParConfig};

fn bench_analysis(c: &mut Criterion) {
    let cfg = ParConfig::always_parallel();
    let mut group = c.benchmark_group("e4_analysis");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for &n in &[12usize, 16, 18] {
        let post = warmed_posterior(n);
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| baseline_analysis(&post))
        });
        group.bench_with_input(BenchmarkId::new("sbgt_fused", n), &n, |b, _| {
            b.iter(|| analyze(&post, 5).expected_positives)
        });
        group.bench_with_input(BenchmarkId::new("sbgt_par", n), &n, |b, _| {
            b.iter(|| analyze_par(&post, 5, cfg).expected_positives)
        });
        group.bench_with_input(BenchmarkId::new("marginals_kernel_only", n), &n, |b, _| {
            b.iter(|| par_marginals(&post, cfg).iter().sum::<f64>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
