//! Look-ahead stage selection: clone-per-branch vs branch-fused kernels.
//!
//! Times one full width-`L` greedy stage selection over a warmed posterior
//! four ways, across N = 20..22 subjects and L = 1..3 pools per stage:
//!
//! * `serial` — the clone-per-branch baseline: every greedy step
//!   materializes all `2^j` branch posteriors (`O(2^j · 2^N)` allocation
//!   and traversal per step).
//! * `fused` — the branch-fused kernel, serial: one traversal of the
//!   *initial* posterior per greedy step accumulates every branch's
//!   prefix-mass histogram at once; no branch posterior ever exists.
//! * `par` — the fused kernel over rayon chunks with an elementwise
//!   histogram reduce.
//! * `sharded_fused` — the fused kernel as an engine aggregate stage over
//!   a partitioned `ShardedPosterior` (the `lookahead:select` stage that
//!   `ShardedSession::select_stage` runs).
//!
//! The acceptance target is fused ≥ 3x over serial at N = 22, L = 3
//! (8 outcome branches).
//!
//! `SBGT_BENCH_SMOKE=1` shrinks the sweep to N = 12, L ≤ 2 so
//! `make bench-smoke` (criterion `--test` mode) finishes in seconds.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use sbgt::ShardedPosterior;
use sbgt_bench::warmed_posterior;
use sbgt_engine::{Engine, EngineConfig};
use sbgt_lattice::kernels::ParConfig;
use sbgt_lattice::LookaheadKernel;
use sbgt_response::BinaryDilutionModel;
use sbgt_select::{
    drive_lookahead, select_stage_lookahead, select_stage_lookahead_fused,
    select_stage_lookahead_par, LookaheadConfig,
};

const PARTS: usize = 8;
const THREADS: usize = 4;

fn smoke() -> bool {
    std::env::var("SBGT_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn bench_lookahead(c: &mut Criterion) {
    let (sizes, widths): (&[usize], &[usize]) = if smoke() {
        (&[12], &[1, 2])
    } else {
        (&[20, 22], &[1, 2, 3])
    };
    let e = Engine::new(EngineConfig::default().with_threads(THREADS));
    let model = BinaryDilutionModel::pcr_like();

    for &n in sizes {
        let dense = warmed_posterior(n);
        let sharded = ShardedPosterior::from_dense(&dense, PARTS);
        let order: Vec<usize> = (0..n).collect();
        let kernel = Arc::new(LookaheadKernel::new(n, &order));

        for &width in widths {
            let cfg = LookaheadConfig {
                width,
                max_pool_size: 16,
            };
            let mut group = c.benchmark_group(format!("lookahead/N{n}/L{width}"));
            group
                .sample_size(10)
                .measurement_time(Duration::from_secs(4));

            group.bench_function("serial", |b| {
                b.iter(|| select_stage_lookahead(&dense, &model, &order, &cfg).unwrap())
            });
            group.bench_function("fused", |b| {
                b.iter(|| select_stage_lookahead_fused(&dense, &model, &order, &cfg).unwrap())
            });
            group.bench_function("par", |b| {
                b.iter(|| {
                    select_stage_lookahead_par(&dense, &model, &order, &cfg, ParConfig::default())
                        .unwrap()
                })
            });
            group.bench_function("sharded_fused", |b| {
                b.iter(|| {
                    drive_lookahead(&model, &order, &cfg, |pools| {
                        sharded.lookahead_histograms(&e, &kernel, pools.to_vec())
                    })
                    .unwrap()
                })
            });
            group.finish();
        }
    }
}

criterion_group!(benches, bench_lookahead);
criterion_main!(benches);
