//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * likelihood **table** vs per-state response-model calls;
//! * **fused** multiply+sum vs separate multiply/sum/scale passes;
//! * one-pass **all-prefix** selection vs per-candidate scans;
//! * **zeta-transform** all-pools pricing vs naive exhaustive;
//! * **sparse** vs dense updates at realistic support levels.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sbgt_bench::warmed_posterior;
use sbgt_lattice::transform::all_pool_negative_masses;
use sbgt_lattice::{SparsePosterior, State};
use sbgt_response::{BinaryDilutionModel, ResponseModel};

const N: usize = 16;

fn bench_table_vs_model_calls(c: &mut Criterion) {
    let model = BinaryDilutionModel::pcr_like();
    let post = warmed_posterior(N);
    let pool = State::from_subjects([0, 2, 4, 6]);
    let table = model.likelihood_table(true, pool.rank());
    let mask = pool.bits();

    let mut group = c.benchmark_group("ablation_table_vs_calls");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("table_lookup", |b| {
        b.iter(|| {
            let mut p = post.clone();
            let mut total = 0.0;
            for (idx, v) in p.probs_mut().iter_mut().enumerate() {
                let k = (idx as u64 & mask).count_ones() as usize;
                *v *= table[k];
                total += *v;
            }
            total
        })
    });
    group.bench_function("per_state_model_call", |b| {
        b.iter(|| {
            let mut p = post.clone();
            let mut total = 0.0;
            for (idx, v) in p.probs_mut().iter_mut().enumerate() {
                let k = (idx as u64 & mask).count_ones();
                *v *= model.likelihood(true, k, pool.rank());
                total += *v;
            }
            total
        })
    });
    group.finish();
}

fn bench_fused_vs_separate(c: &mut Criterion) {
    let model = BinaryDilutionModel::pcr_like();
    let post = warmed_posterior(N);
    let pool = State::from_subjects([0, 2, 4, 6]);
    let table = model.likelihood_table(true, pool.rank());

    let mut group = c.benchmark_group("ablation_fused_vs_separate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("fused_multiply_sum", |b| {
        b.iter(|| {
            let mut p = post.clone();
            let z = p.mul_likelihood_fused(pool, &table);
            let inv = 1.0 / z;
            for v in p.probs_mut() {
                *v *= inv;
            }
            z
        })
    });
    group.bench_function("separate_passes", |b| {
        b.iter(|| {
            let mut p = post.clone();
            p.mul_likelihood(pool, &table); // pass 1
            let z = p.total(); // pass 2
            let inv = 1.0 / z;
            for v in p.probs_mut() {
                *v *= inv; // pass 3
            }
            z
        })
    });
    group.finish();
}

fn bench_zeta_vs_naive_all_pools(c: &mut Criterion) {
    // All-pools pricing at a size where naive is still feasible.
    let post = warmed_posterior(12);
    let mut group = c.benchmark_group("ablation_all_pools");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("zeta_transform", |b| {
        b.iter(|| all_pool_negative_masses(&post)[1])
    });
    group.bench_function("naive_per_pool_scans", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for pool_bits in 0u64..(1 << 12) {
                acc += post.pool_negative_mass(State(pool_bits));
            }
            acc
        })
    });
    group.finish();
}

fn bench_sparse_vs_dense_update(c: &mut Criterion) {
    let model = BinaryDilutionModel::pcr_like();
    let dense = warmed_posterior(N);
    let pool = State::from_subjects([1, 3, 5]);
    let table = model.likelihood_table(false, pool.rank());

    let mut group = c.benchmark_group("ablation_sparse_vs_dense");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("dense", |b| {
        b.iter(|| {
            let mut p = dense.clone();
            p.mul_likelihood_fused(pool, &table)
        })
    });
    for eps in [1e-12f64, 1e-9, 1e-6] {
        let sparse = SparsePosterior::from_dense(&dense, eps);
        group.bench_with_input(
            BenchmarkId::new("sparse", format!("{eps:.0e}_support_{}", sparse.support())),
            &eps,
            |b, _| {
                b.iter(|| {
                    let mut s = sparse.clone();
                    s.mul_likelihood_fused(pool, &table)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table_vs_model_calls,
    bench_fused_vs_separate,
    bench_zeta_vs_naive_all_pools,
    bench_sparse_vs_dense_update
);
criterion_main!(benches);
