//! In-place vs immutable engine stages on the posterior hot loop.
//!
//! Times one Bayesian update round of a `ShardedPosterior` at N = 22
//! (4M states) on a 4-thread engine three ways:
//!
//! * `in_place` — the zero-copy stage: shard handles are uniquely owned,
//!   every partition is multiplied through `&mut [f64]`, only per-partition
//!   scalar sums return to the driver. No posterior-sized allocation.
//! * `immutable` — the materializing baseline: each task builds a fresh
//!   values vector, and a new dataset replaces the old one (one
//!   posterior-sized allocation + copy per round).
//! * `cow` — the in-place API with shards shared by a clone, forcing the
//!   copy-on-write fallback (worst case: allocation *and* the in-place
//!   traversal).
//!
//! Also times the fused BHA superstage (update + marginals + prefix
//! masses) against the same statistics as three separate stages.
//!
//! The acceptance target is `in_place` ≥ 2x over `immutable` at N = 22.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use sbgt::ShardedPosterior;
use sbgt_bench::warmed_posterior;
use sbgt_engine::{Engine, EngineConfig};
use sbgt_lattice::State;
use sbgt_response::BinaryDilutionModel;

const N: usize = 22;
const PARTS: usize = 8;
const THREADS: usize = 4;

fn engine() -> Engine {
    Engine::new(EngineConfig::default().with_threads(THREADS))
}

fn bench_update_paths(c: &mut Criterion) {
    let e = engine();
    let model = BinaryDilutionModel::pcr_like();
    let dense = warmed_posterior(N);
    let pool = State::from_subjects([0, 3, 5, 8, 11, 14, 17, 20]);

    let mut group = c.benchmark_group("in_place_update");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    // Alternating outcomes keep the posterior well-conditioned while the
    // same instance is updated round after round, like a real session.
    group.bench_function("in_place", |b| {
        let mut post = ShardedPosterior::from_dense(&dense, PARTS);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            post.update(&e, &model, pool, flip).unwrap()
        })
    });
    group.bench_function("immutable", |b| {
        let mut post = ShardedPosterior::from_dense(&dense, PARTS);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            post.update_immutable(&e, &model, pool, flip).unwrap()
        })
    });
    group.bench_function("cow_shared_handles", |b| {
        let mut post = ShardedPosterior::from_dense(&dense, PARTS);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let _pin = post.clone(); // share every handle → force COW
            post.update(&e, &model, pool, flip).unwrap()
        })
    });
    group.finish();
}

fn bench_fused_round(c: &mut Criterion) {
    let e = engine();
    let model = BinaryDilutionModel::pcr_like();
    let dense = warmed_posterior(N);
    let order: Vec<usize> = (0..N).collect();
    let pool = State::from_subjects([1, 4, 7, 10, 13, 16, 19]);

    let mut group = c.benchmark_group("fused_round");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function("fused_superstage", |b| {
        let mut post = ShardedPosterior::from_dense(&dense, PARTS);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            post.fused_round(&e, &model, pool, flip, &order).unwrap()
        })
    });
    group.bench_function("three_separate_stages", |b| {
        let mut post = ShardedPosterior::from_dense(&dense, PARTS);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let z = post.update(&e, &model, pool, flip).unwrap();
            let marginals = post.marginals(&e);
            let masses = post.prefix_negative_masses(&e, &order);
            (z, marginals, masses)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_update_paths, bench_fused_round);
criterion_main!(benches);
