//! Criterion bench for experiment E2: lattice-model manipulation
//! (posterior update) — baseline framework vs SBGT fused/parallel kernels
//! vs the engine-sharded dataflow form.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sbgt::ShardedPosterior;
use sbgt_bayes::{update_dense_par, Observation};
use sbgt_bench::{baseline_update, warmed_posterior};
use sbgt_engine::{Engine, EngineConfig};
use sbgt_lattice::kernels::ParConfig;
use sbgt_lattice::State;
use sbgt_response::{BinaryDilutionModel, ResponseModel};

fn bench_update(c: &mut Criterion) {
    let model = BinaryDilutionModel::pcr_like();
    let cfg = ParConfig::always_parallel();
    let engine = Engine::new(EngineConfig::default());
    let mut group = c.benchmark_group("e2_update");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for &n in &[12usize, 16, 18] {
        let post = warmed_posterior(n);
        let pool = State::from_subjects((0..8.min(n)).step_by(2));
        let table = model.likelihood_table(true, pool.rank());

        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| {
                let mut p = post.clone();
                baseline_update(&mut p, &model, pool, true);
                p.get(State::EMPTY)
            })
        });
        group.bench_with_input(BenchmarkId::new("sbgt_fused", n), &n, |b, _| {
            b.iter(|| {
                let mut p = post.clone();
                let z = p.mul_likelihood_fused(pool, &table);
                let inv = 1.0 / z;
                for x in p.probs_mut() {
                    *x *= inv;
                }
                p.get(State::EMPTY)
            })
        });
        group.bench_with_input(BenchmarkId::new("sbgt_par", n), &n, |b, _| {
            b.iter(|| {
                let mut p = post.clone();
                update_dense_par(&mut p, &model, &Observation::new(pool, true), cfg).unwrap();
                p.get(State::EMPTY)
            })
        });
        group.bench_with_input(BenchmarkId::new("sbgt_engine", n), &n, |b, _| {
            b.iter(|| {
                let mut sp = ShardedPosterior::from_dense(&post, engine.default_partitions());
                sp.update(&engine, &model, pool, true).unwrap();
                sp.total()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
