//! Surveillance-service throughput: specimens/second through the full
//! stack (bounded ingress → batcher → round-robin workers → shared
//! engine) as the worker count grows.
//!
//! One iteration starts a fresh service, submits a fixed seeded Poisson
//! workload, and drains it to completion, so the measurement covers
//! batching, scheduling, and every session round — not just the hot
//! kernels. The committed reference numbers live in `BENCH_service.json`.
//!
//! `SBGT_BENCH_SMOKE=1` shrinks the workload and the worker sweep so
//! `make bench-smoke` (criterion `--test` mode) finishes in seconds.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use sbgt_engine::{EngineConfig, SharedEngine};
use sbgt_service::{ServiceConfig, Specimen, SurveillanceService};
use sbgt_sim::traffic::{generate_arrivals, TrafficConfig};

const BATCH: usize = 8;

fn smoke() -> bool {
    std::env::var("SBGT_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn workload(cohorts: usize) -> Vec<Specimen> {
    generate_arrivals(&TrafficConfig::mixed(1000.0, cohorts * BATCH, 42))
        .into_iter()
        .map(|a| Specimen {
            risk: a.risk,
            infected: a.infected,
        })
        .collect()
}

fn run_once(specimens: &[Specimen], workers: usize) -> usize {
    let engine = SharedEngine::new(EngineConfig::default().with_threads(2));
    let config = ServiceConfig {
        workers,
        queue_capacity: specimens.len(),
        batch_size: BATCH,
        dense_threshold: 7,
        parts: 4,
        base_seed: 42,
        ..ServiceConfig::default()
    };
    let service = SurveillanceService::start(engine, config).expect("service starts");
    for s in specimens {
        service.submit(*s).expect("bench queue never fills");
    }
    let reports = service.drain();
    assert_eq!(reports.len(), specimens.len() / BATCH);
    reports.iter().map(|r| r.outcome.tests).sum()
}

fn bench_service(c: &mut Criterion) {
    let (cohorts, worker_counts): (usize, &[usize]) = if smoke() {
        (6, &[1, 2])
    } else {
        (32, &[1, 2, 4, 8])
    };
    let specimens = workload(cohorts);

    let mut group = c.benchmark_group(format!("service/cohorts{cohorts}"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for &workers in worker_counts {
        group.bench_function(format!("workers{workers}"), |b| {
            b.iter(|| run_once(&specimens, workers))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
