//! Memoized BHA decision plans: outcome-indexed selection trees shared
//! across cohorts with the same quantized configuration.
//!
//! At fleet scale most cohorts run the *same* session configuration — same
//! size, same assay model, same stage width, risks that differ only in the
//! third decimal — yet every cohort re-runs the full look-ahead selection
//! search each round. Selection is a pure function of the posterior, and
//! the posterior is a pure function of the prior and the outcome history,
//! so for a fixed configuration the whole adaptive policy is one *decision
//! tree*: at each node the pools to test, with one child per joint outcome
//! of the stage. This module memoizes that tree.
//!
//! * [`PlanKey`] captures **every** input the selection rules read — cohort
//!   size, the exact post-quantization risk bits, a fingerprint of the
//!   response model's likelihood tables, classification thresholds, stage
//!   width, pool-size cap, the sparse-switch policy, and an execution
//!   [`PlanLineage`] (dense serial / dense parallel / engine-sharded /
//!   sparse differ in floating-point summation order, which can flip a
//!   near-tied argmin). Key equality therefore implies bit-identical live
//!   selections, which is what makes replaying a cached plan sound.
//! * [`RiskQuantizer`] snaps per-subject risks onto bucket representatives
//!   *before* the prior is built, so nearby cohorts collapse onto one key
//!   — and the key records the post-quantization bits, never the originals.
//! * [`PlanTree`] is the arena-allocated decision tree. A session replays
//!   it by walking outcome-indexed branches from the root using its own
//!   observation history; falling off the tree transparently falls back to
//!   live selection and the miss extends the tree in place, bounded by a
//!   node budget with LRU eviction of cold subtrees.
//! * [`PlanCache`] is the process-wide map from key to tree with atomic
//!   hit/miss/extend/evict counters, and the `SBGTPLAN` byte codec
//!   ([`PlanCache::export`] / [`PlanCache::import`]) so a warmed cache
//!   survives checkpoint/restore.
//!
//! Only *selection* is memoized. Posterior updates, marginals, and
//! classification still run every round — a cache hit skips the
//! `O(2^N · 2^j)` look-ahead search, nothing else.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sbgt_bayes::ClassificationRule;
use sbgt_lattice::State;
use sbgt_response::BinaryOutcomeModel;

use crate::halving::Selection;

/// Stages wider than this are never cached: each node stores `2^width`
/// child slots, so the arena would blow up long before the budget bites.
pub const PLAN_MAX_STAGE_POOLS: usize = 12;

const MAGIC: &[u8; 8] = b"SBGTPLAN";
const VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Key
// ---------------------------------------------------------------------------

/// Which arithmetic path produced (and will replay) the plan.
///
/// The dense serial, dense rayon-chunked, engine-sharded, and sparse paths
/// select the same pools in exact arithmetic but sum in different orders,
/// so a near-tied halving argmin can legitimately differ in the last ulp.
/// Folding the path into the key keeps "key equal ⇒ selections bit-equal"
/// true without any cross-path tolerance argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanLineage {
    /// Dense in-memory session, serial kernels.
    DenseSerial,
    /// Dense in-memory session, rayon chunk kernels with this tuning.
    DenseParallel {
        /// `ParConfig::chunk_len` of the session.
        chunk_len: u64,
        /// `ParConfig::threshold` of the session.
        threshold: u64,
    },
    /// Engine-sharded session over this many posterior partitions.
    Sharded {
        /// Partition count (summation-order relevant).
        parts: u32,
    },
    /// Pruned sparse session with this prune epsilon (bit pattern).
    Sparse {
        /// `f64::to_bits` of the prune epsilon.
        epsilon_bits: u64,
    },
    /// Loopy-BP approximate session (`sbgt-approx`). Approx sessions never
    /// attach cached plans — their pools exceed the one-word `State` a
    /// `PlanTree` stores — but the discriminant exists so a shared cache
    /// can never serve a dense-derived tree to a BP session or vice versa.
    Bp {
        /// Message-passing iteration cap of the session.
        max_iters: u32,
        /// `f64::to_bits` of the message damping factor.
        damping_bits: u64,
    },
    /// SMC particle approximate session (`sbgt-approx`); same rationale as
    /// [`PlanLineage::Bp`].
    Particle {
        /// Particle count of the session.
        particles: u32,
        /// `f64::to_bits` of the ESS resampling fraction.
        ess_bits: u64,
    },
}

impl PlanLineage {
    fn tag(&self) -> u8 {
        match self {
            PlanLineage::DenseSerial => 0,
            PlanLineage::DenseParallel { .. } => 1,
            PlanLineage::Sharded { .. } => 2,
            PlanLineage::Sparse { .. } => 3,
            PlanLineage::Bp { .. } => 4,
            PlanLineage::Particle { .. } => 5,
        }
    }
}

/// The quantized configuration a plan is keyed by.
///
/// Constructed via [`PlanKey::new`] from the post-quantization risks and
/// every selection-relevant session parameter. Two sessions with equal keys
/// produce bit-for-bit identical live selections along any outcome path —
/// the soundness property pinned by the collision property test.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    n: u32,
    risk_bits: Vec<u64>,
    model_fp: u64,
    pos_threshold_bits: u64,
    neg_threshold_bits: u64,
    stage_width: u32,
    max_pool_size: u32,
    /// `(max_support_fraction, prune_epsilon)` bit patterns of the
    /// dense→sparse switch policy, when one is configured.
    sparse_switch_bits: Option<(u64, u64)>,
    lineage: PlanLineage,
}

impl PlanKey {
    /// Build a key from the **post-quantization** risks and the session's
    /// selection-relevant configuration. `sparse_switch` is the
    /// `(max_support_fraction, prune_epsilon)` pair of the adaptive switch
    /// policy, if any.
    pub fn new<M: BinaryOutcomeModel>(
        risks: &[f64],
        model: &M,
        rule: &ClassificationRule,
        stage_width: usize,
        max_pool_size: usize,
        sparse_switch: Option<(f64, f64)>,
        lineage: PlanLineage,
    ) -> Self {
        PlanKey {
            n: risks.len() as u32,
            risk_bits: risks.iter().map(|r| r.to_bits()).collect(),
            model_fp: model_fingerprint(model, max_pool_size.min(risks.len()).max(1)),
            pos_threshold_bits: rule.pos_threshold.to_bits(),
            neg_threshold_bits: rule.neg_threshold.to_bits(),
            stage_width: stage_width as u32,
            max_pool_size: max_pool_size as u32,
            sparse_switch_bits: sparse_switch.map(|(f, e)| (f.to_bits(), e.to_bits())),
            lineage,
        }
    }

    /// Cohort size the key covers.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Name the first field on which two keys differ, or `None` if they are
    /// equal. Property tests use this to fail *loudly* when a supposed
    /// collision is not one — the counterexample names the culprit instead
    /// of printing two opaque hashes.
    pub fn diff(&self, other: &PlanKey) -> Option<&'static str> {
        if self.n != other.n {
            return Some("n");
        }
        if self.risk_bits != other.risk_bits {
            return Some("risk_bits");
        }
        if self.model_fp != other.model_fp {
            return Some("model_fp");
        }
        if self.pos_threshold_bits != other.pos_threshold_bits {
            return Some("pos_threshold_bits");
        }
        if self.neg_threshold_bits != other.neg_threshold_bits {
            return Some("neg_threshold_bits");
        }
        if self.stage_width != other.stage_width {
            return Some("stage_width");
        }
        if self.max_pool_size != other.max_pool_size {
            return Some("max_pool_size");
        }
        if self.sparse_switch_bits != other.sparse_switch_bits {
            return Some("sparse_switch_bits");
        }
        if self.lineage != other.lineage {
            return Some("lineage");
        }
        None
    }
}

/// FNV-1a over the bit patterns of every likelihood table the selection
/// rules can read: both outcomes, every pool size up to the cap. Two models
/// with the same fingerprint are (with overwhelming probability) the same
/// function on every input the plan can ever evaluate.
fn model_fingerprint<M: BinaryOutcomeModel>(model: &M, max_pool_size: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |h: &mut u64, x: u64| {
        for byte in x.to_le_bytes() {
            *h ^= u64::from(byte);
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for size in 1..=max_pool_size {
        for outcome in [false, true] {
            for v in model.likelihood_table(outcome, size as u32) {
                mix(&mut h, v.to_bits());
            }
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Quantization
// ---------------------------------------------------------------------------

/// Snaps per-subject risks onto bucket representatives so that cohorts with
/// nearby risk profiles share one [`PlanKey`].
///
/// The unit interval is split into `buckets` equal cells and every risk is
/// replaced by its cell midpoint `(i + ½) / buckets` — always strictly
/// inside `(0, 1)`, so a valid risk stays a valid risk. `buckets == 0`
/// disables quantization (identity). Quantization must run **before** the
/// prior is built: the key records the post-quantization bits, so key
/// equality implies prior equality by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RiskQuantizer {
    buckets: u32,
}

impl RiskQuantizer {
    /// A quantizer with the given resolution; `0` disables quantization.
    pub fn new(buckets: u32) -> Self {
        RiskQuantizer { buckets }
    }

    /// Whether this quantizer changes anything.
    pub fn is_enabled(&self) -> bool {
        self.buckets > 0
    }

    /// Snap one risk to its bucket representative.
    pub fn snap(&self, risk: f64) -> f64 {
        if self.buckets == 0 || !risk.is_finite() {
            return risk;
        }
        let b = f64::from(self.buckets);
        let cell = (risk * b).floor().clamp(0.0, b - 1.0);
        (cell + 0.5) / b
    }

    /// Snap a whole risk vector.
    pub fn snap_all(&self, risks: &[f64]) -> Vec<f64> {
        risks.iter().map(|&r| self.snap(r)).collect()
    }
}

// ---------------------------------------------------------------------------
// Tree
// ---------------------------------------------------------------------------

/// One memoized select step: the pools chosen at this point of the outcome
/// history, with one child slot per joint outcome of the stage (bit `i` of
/// the child index = outcome of pool `i`).
#[derive(Debug, Clone, PartialEq)]
struct PlanNode {
    selections: Vec<Selection>,
    children: Vec<Option<usize>>,
    last_touch: u64,
}

impl PlanNode {
    fn new(selections: Vec<Selection>, touch: u64) -> Self {
        let slots = 1usize << selections.len();
        PlanNode {
            selections,
            children: vec![None; slots],
            last_touch: touch,
        }
    }
}

/// Where a history walk landed.
enum Walk {
    /// History ends exactly at this node: its selections apply now.
    Hit(usize),
    /// History ends exactly at an empty child slot (or the empty root):
    /// the live selections computed now belong there.
    Vacant { parent: Option<usize>, mask: usize },
    /// The history left the tree mid-branch (pool mismatch, partial stage,
    /// or a path pruned by eviction): fall back to live selection without
    /// extending — there is nowhere sound to attach the node.
    Detached,
}

/// The memoized decision tree for one [`PlanKey`].
///
/// Sessions hold no cursor into the tree: every lookup re-walks from the
/// root using the session's flat `(pool, outcome)` history. The walk is
/// `O(stages)` — trivial next to one posterior update — and makes eviction
/// and arena compaction invisible to sessions (a pruned path simply walks
/// `Detached` and falls back to live selection).
#[derive(Debug)]
pub struct PlanTree {
    nodes: Vec<PlanNode>,
    root: Option<usize>,
    clock: u64,
    node_budget: usize,
}

impl PlanTree {
    fn new(node_budget: usize) -> Self {
        PlanTree {
            nodes: Vec::new(),
            root: None,
            clock: 0,
            node_budget,
        }
    }

    /// Number of memoized select steps.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds no plan yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn walk(&self, history: &[(State, bool)]) -> Walk {
        let Some(root) = self.root else {
            return if history.is_empty() {
                Walk::Vacant {
                    parent: None,
                    mask: 0,
                }
            } else {
                Walk::Detached
            };
        };
        let mut cur = root;
        let mut at = 0usize;
        loop {
            let node = &self.nodes[cur];
            let k = node.selections.len();
            if at == history.len() {
                return Walk::Hit(cur);
            }
            if at + k > history.len() {
                // History ends mid-stage: a config that selects these pools
                // would have observed the whole stage before selecting again.
                return Walk::Detached;
            }
            let mut mask = 0usize;
            for (i, sel) in node.selections.iter().enumerate() {
                let (pool, outcome) = history[at + i];
                if pool != sel.pool {
                    return Walk::Detached;
                }
                mask |= usize::from(outcome) << i;
            }
            at += k;
            match node.children[mask] {
                Some(child) => cur = child,
                None => {
                    return if at == history.len() {
                        Walk::Vacant {
                            parent: Some(cur),
                            mask,
                        }
                    } else {
                        Walk::Detached
                    };
                }
            }
        }
    }

    /// Replay the memoized selections for this history, if present.
    pub fn lookup(&mut self, history: &[(State, bool)]) -> Option<Vec<Selection>> {
        match self.walk(history) {
            Walk::Hit(idx) => {
                self.clock += 1;
                self.nodes[idx].last_touch = self.clock;
                Some(self.nodes[idx].selections.clone())
            }
            _ => None,
        }
    }

    /// Record the live selections computed at this history. Returns the
    /// number of nodes evicted to stay inside the budget, or `None` when
    /// nothing was inserted (already present, detached, uncacheable width).
    pub fn extend(&mut self, history: &[(State, bool)], selections: &[Selection]) -> Option<u64> {
        if selections.is_empty() || selections.len() > PLAN_MAX_STAGE_POOLS {
            return None;
        }
        let (parent, mask) = match self.walk(history) {
            Walk::Vacant { parent, mask } => (parent, mask),
            _ => return None,
        };
        self.clock += 1;
        let node = PlanNode::new(selections.to_vec(), self.clock);
        let idx = self.nodes.len();
        self.nodes.push(node);
        match parent {
            Some(p) => self.nodes[p].children[mask] = Some(idx),
            None => self.root = Some(idx),
        }
        Some(self.evict_to_budget(idx))
    }

    /// Prune the coldest subtrees (by most-recent touch anywhere below
    /// them) until the arena fits the budget again, never evicting the
    /// just-inserted node or its ancestors. Returns the number of nodes
    /// dropped.
    fn evict_to_budget(&mut self, protect: usize) -> u64 {
        if self.nodes.len() <= self.node_budget {
            return 0;
        }
        let n = self.nodes.len();
        let root = self.root.expect("non-empty tree has a root");

        // Parents and iterative post-order for subtree max-touch.
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut stack = vec![root];
        while let Some(i) = stack.pop() {
            order.push(i);
            for child in self.nodes[i].children.iter().flatten() {
                parent[*child] = Some(i);
                stack.push(*child);
            }
        }

        // The protected path: the new node and its ancestors up to root.
        let mut on_path = vec![false; n];
        let mut cur = Some(protect);
        while let Some(i) = cur {
            on_path[i] = true;
            cur = parent[i];
        }

        let mut removed = vec![false; n];
        let mut live = n;
        while live > self.node_budget {
            // Subtree max-touch over live nodes (children before parents).
            let mut subtree_touch: Vec<u64> = vec![0; n];
            for &i in order.iter().rev() {
                if removed[i] {
                    continue;
                }
                let mut t = self.nodes[i].last_touch;
                for child in self.nodes[i].children.iter().flatten() {
                    if !removed[*child] {
                        t = t.max(subtree_touch[*child]);
                    }
                }
                subtree_touch[i] = t;
            }
            let victim = (0..n)
                .filter(|&i| !removed[i] && !on_path[i])
                .min_by_key(|&i| subtree_touch[i]);
            let Some(victim) = victim else {
                // Only the protected path remains; the budget is smaller
                // than one plan path — keep it rather than thrash.
                break;
            };
            // Unlink from the (live, off-subtree) parent and drop the
            // whole subtree.
            if let Some(p) = parent[victim] {
                for slot in self.nodes[p].children.iter_mut() {
                    if *slot == Some(victim) {
                        *slot = None;
                    }
                }
            }
            let mut stack = vec![victim];
            while let Some(i) = stack.pop() {
                removed[i] = true;
                live -= 1;
                for child in self.nodes[i].children.iter().flatten() {
                    if !removed[*child] {
                        stack.push(*child);
                    }
                }
            }
        }

        let dropped = (n - live) as u64;
        if dropped == 0 {
            return 0;
        }

        // Compact the arena and remap child indices.
        let mut remap: Vec<usize> = vec![usize::MAX; n];
        let mut kept = 0usize;
        for (i, gone) in removed.iter().enumerate() {
            if !gone {
                remap[i] = kept;
                kept += 1;
            }
        }
        let old = std::mem::take(&mut self.nodes);
        self.nodes = old
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !removed[*i])
            .map(|(_, mut node)| {
                for slot in node.children.iter_mut() {
                    *slot = slot.map(|c| remap[c]);
                }
                node
            })
            .collect();
        self.root = self.root.map(|r| remap[r]);
        dropped
    }
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

/// Monotonic counters of one [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Select steps replayed from a memoized tree.
    pub hits: u64,
    /// Select steps that fell off the tree and ran live.
    pub misses: u64,
    /// Live selections that extended a tree in place.
    pub extends: u64,
    /// Nodes dropped by budget eviction.
    pub evictions: u64,
}

/// Process-wide store of memoized plans, one tree per [`PlanKey`].
///
/// Shared as `Arc<PlanCache>` between every session of a service (and, for
/// warm/cold benchmarking, between service instances). Counters are atomic
/// and monotonic; consumers that want per-window numbers snapshot
/// [`PlanCache::stats`] and diff.
#[derive(Debug)]
pub struct PlanCache {
    node_budget: usize,
    trees: Mutex<HashMap<PlanKey, Arc<Mutex<PlanTree>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    extends: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache whose trees each hold at most `node_budget` memoized select
    /// steps (`≥ 1`; the budget is per tree, not per cache).
    pub fn new(node_budget: usize) -> Arc<Self> {
        assert!(node_budget >= 1, "plan cache node budget must be >= 1");
        Arc::new(PlanCache {
            node_budget,
            trees: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            extends: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// Per-tree node budget.
    pub fn node_budget(&self) -> usize {
        self.node_budget
    }

    /// The handle a session attaches: the key's tree, created empty on
    /// first use.
    pub fn handle(self: &Arc<Self>, key: PlanKey) -> PlanHandle {
        let tree = {
            let mut trees = self.trees.lock().unwrap();
            Arc::clone(
                trees
                    .entry(key)
                    .or_insert_with(|| Arc::new(Mutex::new(PlanTree::new(self.node_budget)))),
            )
        };
        PlanHandle {
            cache: Arc::clone(self),
            tree,
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            extends: self.extends.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct keys with a tree.
    pub fn tree_count(&self) -> usize {
        self.trees.lock().unwrap().len()
    }

    /// Total memoized select steps across all trees.
    pub fn total_nodes(&self) -> usize {
        let trees = self.trees.lock().unwrap();
        trees.values().map(|t| t.lock().unwrap().len()).sum()
    }

    /// Serialize every tree to the versioned `SBGTPLAN` byte format.
    pub fn export(&self) -> Vec<u8> {
        let trees = self.trees.lock().unwrap();
        // Deterministic order: sort by the serialized key bytes.
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = trees
            .iter()
            .map(|(key, tree)| {
                let mut key_bytes = Vec::new();
                write_key(&mut key_bytes, key);
                let mut tree_bytes = Vec::new();
                write_tree(&mut tree_bytes, &tree.lock().unwrap());
                (key_bytes, tree_bytes)
            })
            .collect();
        entries.sort();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (key_bytes, tree_bytes) in entries {
            out.extend_from_slice(&key_bytes);
            out.extend_from_slice(&tree_bytes);
        }
        out
    }

    /// Merge an `SBGTPLAN` blob into this cache. Keys already present keep
    /// their live (likely fresher) tree; new keys adopt the imported one.
    /// Every structural violation is a typed [`PlanCodecError::Corrupt`] —
    /// a tampered blob must never panic. Returns the number of trees
    /// adopted.
    pub fn import(&self, bytes: &[u8]) -> Result<usize, PlanCodecError> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(8)? != MAGIC {
            return Err(PlanCodecError::Corrupt("bad plan magic".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(PlanCodecError::Corrupt(format!(
                "unsupported plan version {version}"
            )));
        }
        let n_trees = r.u32()? as usize;
        if n_trees > r.remaining() {
            return Err(PlanCodecError::Corrupt("tree count exceeds payload".into()));
        }
        let mut parsed = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            let key = read_key(&mut r)?;
            let tree = read_tree(&mut r, self.node_budget)?;
            parsed.push((key, tree));
        }
        if r.at != bytes.len() {
            return Err(PlanCodecError::Corrupt("trailing bytes after plans".into()));
        }
        let mut adopted = 0usize;
        let mut trees = self.trees.lock().unwrap();
        for (key, tree) in parsed {
            trees.entry(key).or_insert_with(|| {
                adopted += 1;
                Arc::new(Mutex::new(tree))
            });
        }
        Ok(adopted)
    }
}

/// A session's view of one tree in a [`PlanCache`]: lookups and extensions
/// go to the tree, counters to the owning cache.
#[derive(Debug, Clone)]
pub struct PlanHandle {
    cache: Arc<PlanCache>,
    tree: Arc<Mutex<PlanTree>>,
}

impl PlanHandle {
    /// Replay the memoized selections for this observation history, if the
    /// tree covers it.
    pub fn lookup(&self, history: &[(State, bool)]) -> Option<Vec<Selection>> {
        let got = self.tree.lock().unwrap().lookup(history);
        match &got {
            Some(_) => self.cache.hits.fetch_add(1, Ordering::Relaxed),
            None => self.cache.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Record live selections at this history; a no-op when the history is
    /// detached from the tree or the stage is uncacheably wide. The node is
    /// fully built before the tree lock is taken, so a concurrent reader
    /// (or a round killed mid-extension) never observes a torn node.
    pub fn extend(&self, history: &[(State, bool)], selections: &[Selection]) {
        let evicted = self.tree.lock().unwrap().extend(history, selections);
        if let Some(evicted) = evicted {
            self.cache.extends.fetch_add(1, Ordering::Relaxed);
            if evicted > 0 {
                self.cache.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Memoized select steps currently in the tree (tests and telemetry).
    pub fn tree_len(&self) -> usize {
        self.tree.lock().unwrap().len()
    }
}

// ---------------------------------------------------------------------------
// SBGTPLAN codec
// ---------------------------------------------------------------------------

/// Typed error for a malformed `SBGTPLAN` blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanCodecError {
    /// The blob is structurally invalid; the message says where.
    Corrupt(String),
}

impl std::fmt::Display for PlanCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanCodecError::Corrupt(msg) => write!(f, "corrupt SBGTPLAN blob: {msg}"),
        }
    }
}

impl std::error::Error for PlanCodecError {}

fn write_key(out: &mut Vec<u8>, key: &PlanKey) {
    out.extend_from_slice(&key.n.to_le_bytes());
    out.extend_from_slice(&(key.risk_bits.len() as u32).to_le_bytes());
    for bits in &key.risk_bits {
        out.extend_from_slice(&bits.to_le_bytes());
    }
    out.extend_from_slice(&key.model_fp.to_le_bytes());
    out.extend_from_slice(&key.pos_threshold_bits.to_le_bytes());
    out.extend_from_slice(&key.neg_threshold_bits.to_le_bytes());
    out.extend_from_slice(&key.stage_width.to_le_bytes());
    out.extend_from_slice(&key.max_pool_size.to_le_bytes());
    match key.sparse_switch_bits {
        None => out.push(0),
        Some((f, e)) => {
            out.push(1);
            out.extend_from_slice(&f.to_le_bytes());
            out.extend_from_slice(&e.to_le_bytes());
        }
    }
    out.push(key.lineage.tag());
    match key.lineage {
        PlanLineage::DenseSerial => {}
        PlanLineage::DenseParallel {
            chunk_len,
            threshold,
        } => {
            out.extend_from_slice(&chunk_len.to_le_bytes());
            out.extend_from_slice(&threshold.to_le_bytes());
        }
        PlanLineage::Sharded { parts } => out.extend_from_slice(&parts.to_le_bytes()),
        PlanLineage::Sparse { epsilon_bits } => out.extend_from_slice(&epsilon_bits.to_le_bytes()),
        PlanLineage::Bp {
            max_iters,
            damping_bits,
        } => {
            out.extend_from_slice(&max_iters.to_le_bytes());
            out.extend_from_slice(&damping_bits.to_le_bytes());
        }
        PlanLineage::Particle {
            particles,
            ess_bits,
        } => {
            out.extend_from_slice(&particles.to_le_bytes());
            out.extend_from_slice(&ess_bits.to_le_bytes());
        }
    }
}

fn read_key(r: &mut Reader<'_>) -> Result<PlanKey, PlanCodecError> {
    let n = r.u32()?;
    let n_risks = r.u32()? as usize;
    if n_risks > r.remaining() / 8 {
        return Err(PlanCodecError::Corrupt("risk count exceeds payload".into()));
    }
    let mut risk_bits = Vec::with_capacity(n_risks);
    for _ in 0..n_risks {
        risk_bits.push(r.u64()?);
    }
    let model_fp = r.u64()?;
    let pos_threshold_bits = r.u64()?;
    let neg_threshold_bits = r.u64()?;
    let stage_width = r.u32()?;
    let max_pool_size = r.u32()?;
    let sparse_switch_bits = match r.u8()? {
        0 => None,
        1 => Some((r.u64()?, r.u64()?)),
        other => {
            return Err(PlanCodecError::Corrupt(format!(
                "bad sparse-switch flag {other}"
            )))
        }
    };
    let lineage = match r.u8()? {
        0 => PlanLineage::DenseSerial,
        1 => PlanLineage::DenseParallel {
            chunk_len: r.u64()?,
            threshold: r.u64()?,
        },
        2 => PlanLineage::Sharded { parts: r.u32()? },
        3 => PlanLineage::Sparse {
            epsilon_bits: r.u64()?,
        },
        4 => PlanLineage::Bp {
            max_iters: r.u32()?,
            damping_bits: r.u64()?,
        },
        5 => PlanLineage::Particle {
            particles: r.u32()?,
            ess_bits: r.u64()?,
        },
        other => {
            return Err(PlanCodecError::Corrupt(format!(
                "unknown lineage tag {other}"
            )))
        }
    };
    Ok(PlanKey {
        n,
        risk_bits,
        model_fp,
        pos_threshold_bits,
        neg_threshold_bits,
        stage_width,
        max_pool_size,
        sparse_switch_bits,
        lineage,
    })
}

/// Nodes are exported in BFS order from the root (root = index 0), each as
/// its selection list followed by `2^width` child indices (`u32::MAX` =
/// none). Touch clocks are deliberately not serialized: an imported tree
/// starts cold and re-earns its LRU standing.
fn write_tree(out: &mut Vec<u8>, tree: &PlanTree) {
    let mut bfs: Vec<usize> = Vec::with_capacity(tree.nodes.len());
    let mut remap: Vec<u32> = vec![u32::MAX; tree.nodes.len()];
    if let Some(root) = tree.root {
        bfs.push(root);
        remap[root] = 0;
        let mut head = 0usize;
        while head < bfs.len() {
            let i = bfs[head];
            head += 1;
            for child in tree.nodes[i].children.iter().flatten() {
                remap[*child] = bfs.len() as u32;
                bfs.push(*child);
            }
        }
    }
    out.extend_from_slice(&(bfs.len() as u32).to_le_bytes());
    for &i in &bfs {
        let node = &tree.nodes[i];
        out.push(node.selections.len() as u8);
        for sel in &node.selections {
            out.extend_from_slice(&sel.pool.bits().to_le_bytes());
            out.extend_from_slice(&sel.negative_mass.to_bits().to_le_bytes());
            out.extend_from_slice(&sel.distance.to_bits().to_le_bytes());
        }
        for slot in &node.children {
            let encoded = match slot {
                Some(c) => remap[*c],
                None => u32::MAX,
            };
            out.extend_from_slice(&encoded.to_le_bytes());
        }
    }
}

fn read_tree(r: &mut Reader<'_>, node_budget: usize) -> Result<PlanTree, PlanCodecError> {
    let n_nodes = r.u32()? as usize;
    // Each node is at least 1 (width) + 4 (one child slot... actually 2
    // slots minimum) bytes; a generous floor still caps a hostile count.
    if n_nodes > r.remaining() {
        return Err(PlanCodecError::Corrupt("node count exceeds payload".into()));
    }
    let mut tree = PlanTree::new(node_budget);
    let mut referenced = vec![false; n_nodes];
    for idx in 0..n_nodes {
        let width = r.u8()? as usize;
        if width == 0 || width > PLAN_MAX_STAGE_POOLS {
            return Err(PlanCodecError::Corrupt(format!(
                "node {idx} has invalid stage width {width}"
            )));
        }
        let mut selections = Vec::with_capacity(width);
        for _ in 0..width {
            let pool = State(r.u64()?);
            let negative_mass = f64::from_bits(r.u64()?);
            let distance = f64::from_bits(r.u64()?);
            selections.push(Selection {
                pool,
                negative_mass,
                distance,
            });
        }
        let mut node = PlanNode::new(selections, 0);
        for slot in 0..(1usize << width) {
            let child = r.u32()?;
            if child != u32::MAX {
                let child = child as usize;
                if child >= n_nodes {
                    return Err(PlanCodecError::Corrupt(format!(
                        "node {idx} links child {child} beyond {n_nodes} nodes"
                    )));
                }
                if child == 0 {
                    return Err(PlanCodecError::Corrupt(format!(
                        "node {idx} links the root as a child"
                    )));
                }
                if referenced[child] {
                    return Err(PlanCodecError::Corrupt(format!(
                        "node {child} linked twice"
                    )));
                }
                referenced[child] = true;
                node.children[slot] = Some(child);
            }
        }
        tree.nodes.push(node);
    }
    for (idx, linked) in referenced.iter().enumerate().skip(1) {
        if !linked {
            return Err(PlanCodecError::Corrupt(format!(
                "node {idx} is orphaned (never linked)"
            )));
        }
    }
    if n_nodes > 0 {
        tree.root = Some(0);
    }
    Ok(tree)
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PlanCodecError> {
        if self.at + n > self.bytes.len() {
            return Err(PlanCodecError::Corrupt(format!(
                "plan truncated at byte {} (wanted {n} more)",
                self.at
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PlanCodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PlanCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PlanCodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_response::BinaryDilutionModel;

    fn key(risks: &[f64]) -> PlanKey {
        PlanKey::new(
            risks,
            &BinaryDilutionModel::pcr_like(),
            &ClassificationRule::symmetric(0.99),
            2,
            8,
            None,
            PlanLineage::DenseSerial,
        )
    }

    fn sel(bits: u64, mass: f64) -> Selection {
        Selection {
            pool: State(bits),
            negative_mass: mass,
            distance: (mass - 0.5).abs(),
        }
    }

    #[test]
    fn quantizer_snaps_to_bucket_midpoints() {
        let q = RiskQuantizer::new(10);
        assert!(q.is_enabled());
        assert_eq!(q.snap(0.02), 0.05);
        assert_eq!(q.snap(0.07), 0.05);
        assert_eq!(q.snap(0.13), 0.15);
        // Extremes stay strictly inside (0, 1).
        assert_eq!(q.snap(0.0), 0.05);
        assert_eq!(q.snap(1.0), 0.95);
        assert_eq!(q.snap(-0.5), 0.05);
        // Disabled quantizer is the identity.
        let off = RiskQuantizer::new(0);
        assert!(!off.is_enabled());
        assert_eq!(off.snap(0.1234).to_bits(), 0.1234f64.to_bits());
        assert_eq!(
            q.snap_all(&[0.02, 0.07]),
            vec![0.05, 0.05],
            "same bucket collapses to one representative"
        );
    }

    #[test]
    fn key_diff_names_the_differing_field() {
        let a = key(&[0.05, 0.15]);
        assert_eq!(a.diff(&a.clone()), None);
        let b = key(&[0.05, 0.25]);
        assert_eq!(a.diff(&b), Some("risk_bits"));
        let mut c = key(&[0.05, 0.15]);
        c.stage_width = 3;
        assert_eq!(a.diff(&c), Some("stage_width"));
        let mut d = key(&[0.05, 0.15]);
        d.lineage = PlanLineage::Sharded { parts: 4 };
        assert_eq!(a.diff(&d), Some("lineage"));
        assert_eq!(a == b, a.diff(&b).is_none());
    }

    /// Regression: a shared cache can never serve a dense-derived tree to
    /// an approx (BP/particle) session or vice versa — the lineage
    /// discriminant forces a key mismatch even when every other field
    /// (risks, model, rule, widths) is identical.
    #[test]
    fn approx_lineages_never_collide_with_exact_keys() {
        let dense = key(&[0.05, 0.15]);
        let mut bp = key(&[0.05, 0.15]);
        bp.lineage = PlanLineage::Bp {
            max_iters: 50,
            damping_bits: 0.5f64.to_bits(),
        };
        let mut particle = key(&[0.05, 0.15]);
        particle.lineage = PlanLineage::Particle {
            particles: 4096,
            ess_bits: 0.5f64.to_bits(),
        };
        assert_ne!(dense, bp);
        assert_ne!(dense, particle);
        assert_ne!(bp, particle);
        assert_eq!(dense.diff(&bp), Some("lineage"));
        assert_eq!(dense.diff(&particle), Some("lineage"));
        assert_eq!(bp.diff(&particle), Some("lineage"));
        // Differently-tuned approx sessions are distinct keys too.
        let mut fewer = bp.clone();
        fewer.lineage = PlanLineage::Bp {
            max_iters: 25,
            damping_bits: 0.5f64.to_bits(),
        };
        assert_eq!(bp.diff(&fewer), Some("lineage"));

        // The new lineage tags survive the SBGTPLAN codec: a cache holding
        // trees under all three lineages exports and re-imports them as
        // three separate entries.
        let cache = PlanCache::new(64);
        for k in [dense.clone(), bp.clone(), particle.clone()] {
            cache.handle(k).extend(&[], &[sel(0b1, 0.5)]);
        }
        let fresh = PlanCache::new(64);
        assert_eq!(fresh.import(&cache.export()).unwrap(), 3);
        assert!(fresh.handle(bp).lookup(&[]).is_some());
        assert!(fresh.handle(particle).lookup(&[]).is_some());
        assert!(fresh.handle(dense).lookup(&[]).is_some());
    }

    #[test]
    fn model_fingerprint_separates_models() {
        let pcr = BinaryDilutionModel::pcr_like();
        let a = model_fingerprint(&pcr, 8);
        assert_eq!(a, model_fingerprint(&pcr, 8), "fingerprint is stable");
        assert_ne!(
            a,
            model_fingerprint(&pcr, 4),
            "pool-size cap changes the evaluated tables"
        );
    }

    #[test]
    fn walk_hits_extends_and_detaches() {
        let mut tree = PlanTree::new(64);
        // Empty tree: root slot is vacant, deeper histories detached.
        assert!(tree.lookup(&[]).is_none());
        let s0 = vec![sel(0b011, 0.48), sel(0b111, 0.52)];
        assert_eq!(tree.extend(&[], &s0), Some(0));
        assert_eq!(tree.lookup(&[]).unwrap(), s0);

        // Child slot indexed by the stage's joint outcome bits.
        let h_neg_pos = [(State(0b011), false), (State(0b111), true)];
        assert!(tree.lookup(&h_neg_pos).is_none());
        let s1 = vec![sel(0b001, 0.5), sel(0b100, 0.47)];
        assert_eq!(tree.extend(&h_neg_pos, &s1), Some(0));
        assert_eq!(tree.lookup(&h_neg_pos).unwrap(), s1);
        // The sibling branch is still vacant, not confused with it.
        let h_pos_pos = [(State(0b011), true), (State(0b111), true)];
        assert!(tree.lookup(&h_pos_pos).is_none());

        // A pool mismatch detaches: no hit, and extends are refused.
        let mismatched = [(State(0b010), false), (State(0b111), true)];
        assert!(tree.lookup(&mismatched).is_none());
        assert_eq!(tree.extend(&mismatched, &s1), None);
        // A partial stage detaches too.
        let partial = [(State(0b011), false)];
        assert!(tree.lookup(&partial).is_none());
        assert_eq!(tree.extend(&partial, &s1), None);
        // Re-extending an occupied slot is a no-op.
        assert_eq!(tree.extend(&h_neg_pos, &s0), None);
        assert_eq!(tree.len(), 2, "root + one outcome branch");
    }

    #[test]
    fn empty_or_oversized_stages_are_not_cached() {
        let mut tree = PlanTree::new(64);
        assert_eq!(tree.extend(&[], &[]), None);
        let huge: Vec<Selection> = (0..=PLAN_MAX_STAGE_POOLS as u64)
            .map(|i| sel(1 << i, 0.5))
            .collect();
        assert_eq!(tree.extend(&[], &huge), None);
        assert!(tree.is_empty());
    }

    #[test]
    fn eviction_respects_budget_and_protects_the_insert_path() {
        let mut tree = PlanTree::new(3);
        let root = vec![sel(0b1, 0.5)];
        tree.extend(&[], &root).unwrap();
        // Two children; touch the positive one to make the negative cold.
        let h_neg = [(State(0b1), false)];
        let h_pos = [(State(0b1), true)];
        tree.extend(&h_neg, &[sel(0b10, 0.4)]).unwrap();
        tree.extend(&h_pos, &[sel(0b100, 0.6)]).unwrap();
        assert!(tree.lookup(&h_pos).is_some());
        // A fourth node exceeds the budget of 3; the cold negative branch
        // goes, the fresh insert and its path stay.
        let h_pos_deep = [(State(0b1), true), (State(0b100), false)];
        let evicted = tree.extend(&h_pos_deep, &[sel(0b1000, 0.5)]).unwrap();
        assert_eq!(evicted, 1);
        assert_eq!(tree.len(), 3);
        assert!(tree.lookup(&h_neg).is_none(), "cold branch evicted");
        assert!(tree.lookup(&h_pos_deep).is_some(), "insert survived");
        assert!(tree.lookup(&[]).is_some(), "root survived");
        // The evicted branch re-extends cleanly after compaction.
        tree.extend(&h_neg, &[sel(0b10, 0.4)]);
        assert!(tree.lookup(&h_neg).is_some() || tree.len() <= 3);
    }

    #[test]
    fn budget_smaller_than_one_path_keeps_the_path() {
        let mut tree = PlanTree::new(1);
        tree.extend(&[], &[sel(0b1, 0.5)]).unwrap();
        let h = [(State(0b1), false)];
        // The new node's path (root + itself) exceeds the budget but has no
        // evictable off-path subtree; the tree keeps it instead of
        // thrashing its own spine.
        assert_eq!(tree.extend(&h, &[sel(0b10, 0.5)]), Some(0));
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn handle_counts_hits_misses_extends_and_evictions() {
        let cache = PlanCache::new(2);
        let handle = cache.handle(key(&[0.05, 0.15]));
        assert!(handle.lookup(&[]).is_none());
        handle.extend(&[], &[sel(0b1, 0.5)]);
        assert!(handle.lookup(&[]).is_some());
        handle.extend(&[(State(0b1), false)], &[sel(0b10, 0.5)]);
        handle.extend(&[(State(0b1), true)], &[sel(0b100, 0.5)]);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.extends, 3);
        assert!(stats.evictions >= 1, "budget of 2 must evict");
        // Same key, same tree; different key, different tree.
        let again = cache.handle(key(&[0.05, 0.15]));
        assert_eq!(again.tree_len(), handle.tree_len());
        assert_eq!(cache.tree_count(), 1);
        cache.handle(key(&[0.05, 0.25]));
        assert_eq!(cache.tree_count(), 2);
    }

    #[test]
    fn sbgtplan_codec_round_trips_bit_for_bit() {
        let cache = PlanCache::new(64);
        let handle = cache.handle(key(&[0.05, 0.15, 0.25]));
        handle.extend(&[], &[sel(0b011, 0.48), sel(0b111, 0.52)]);
        handle.extend(
            &[(State(0b011), false), (State(0b111), true)],
            &[sel(0b001, 0.5)],
        );
        handle.extend(
            &[(State(0b011), true), (State(0b111), true)],
            &[sel(0b100, 0.49)],
        );
        let other = cache.handle(key(&[0.35]));
        other.extend(&[], &[sel(0b1, 0.51)]);

        let blob = cache.export();
        let restored = PlanCache::new(64);
        assert_eq!(restored.import(&blob).unwrap(), 2);
        assert_eq!(restored.tree_count(), 2);
        assert_eq!(restored.total_nodes(), cache.total_nodes());
        // Replays identically, and re-export is byte-identical.
        let h = restored.handle(key(&[0.05, 0.15, 0.25]));
        assert_eq!(
            h.lookup(&[]).unwrap(),
            vec![sel(0b011, 0.48), sel(0b111, 0.52)]
        );
        assert_eq!(restored.export(), blob);
        // Import into a cache that already has the key keeps the live tree.
        assert_eq!(cache.import(&blob).unwrap(), 0);
    }

    #[test]
    fn tampered_plan_blobs_are_typed_errors_not_panics() {
        let cache = PlanCache::new(64);
        let handle = cache.handle(key(&[0.05, 0.15]));
        handle.extend(&[], &[sel(0b01, 0.5), sel(0b11, 0.5)]);
        handle.extend(
            &[(State(0b01), false), (State(0b11), false)],
            &[sel(0b10, 0.5)],
        );
        let blob = cache.export();

        // Truncations at every prefix length.
        for cut in 0..blob.len() {
            let target = PlanCache::new(64);
            assert!(
                target.import(&blob[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        // Single-byte corruption: either a typed error or a still-valid
        // blob (flipping a float payload byte is not structural) — never a
        // panic.
        for at in 0..blob.len() {
            let mut bad = blob.clone();
            bad[at] ^= 0xFF;
            let target = PlanCache::new(64);
            let _ = target.import(&bad);
        }
        // Specific structural tampers give Corrupt.
        let mut bad_magic = blob.clone();
        bad_magic[0] = b'Z';
        assert!(matches!(
            PlanCache::new(64).import(&bad_magic),
            Err(PlanCodecError::Corrupt(_))
        ));
        let mut long = blob.clone();
        long.push(9);
        assert!(matches!(
            PlanCache::new(64).import(&long),
            Err(PlanCodecError::Corrupt(_))
        ));
        let err = PlanCache::new(64).import(&blob[..4]).unwrap_err();
        assert!(err.to_string().contains("SBGTPLAN"));
    }

    #[test]
    fn imported_trees_enforce_the_importers_budget() {
        let cache = PlanCache::new(64);
        let handle = cache.handle(key(&[0.05]));
        handle.extend(&[], &[sel(0b1, 0.5)]);
        handle.extend(&[(State(0b1), false)], &[sel(0b10, 0.5)]);
        handle.extend(&[(State(0b1), true)], &[sel(0b100, 0.5)]);
        let blob = cache.export();
        let tight = PlanCache::new(2);
        tight.import(&blob).unwrap();
        let h = tight.handle(key(&[0.05]));
        // The imported tree is over the tight budget; the next extension
        // trims it back down.
        h.extend(
            &[(State(0b1), false), (State(0b10), false)],
            &[sel(0b1000, 0.5)],
        );
        assert!(h.tree_len() <= 2 + 1, "budget enforced after extension");
        assert!(tight.stats().evictions > 0);
    }
}
