//! The Bayesian Halving Algorithm.
//!
//! For a candidate pool `A`, let `m(A) = P(s ∩ A = ∅ | data)` be the
//! posterior mass of the pool-negative down-set. The BHA selects the `A`
//! minimizing the *halving distance* `|m(A) − ½|`: the test that most
//! evenly bisects the posterior with respect to the lattice order, which
//! the method paper shows yields optimally convergent classification even
//! under dilution.
//!
//! Ties are broken toward smaller pools (cheaper wet-lab handling), then
//! lexicographically for determinism.

use sbgt_lattice::kernels::{par_prefix_negative_masses, ParConfig};
use sbgt_lattice::{DensePosterior, SparsePosterior, State};

/// The outcome of a selection rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// The chosen pool.
    pub pool: State,
    /// Posterior probability that the pool is truly negative, `m(A)`.
    pub negative_mass: f64,
    /// Halving distance `|m(A) − ½|`.
    pub distance: f64,
}

impl Selection {
    /// Tolerance within which two halving distances count as tied.
    pub const DISTANCE_EPS: f64 = 1e-12;

    /// The one tie-breaking rule every selection path uses: a candidate
    /// wins if its distance is smaller by more than [`Self::DISTANCE_EPS`];
    /// within the tolerance, the smaller pool wins, then the
    /// lexicographically smallest bitmask. Exhaustive and prefix BHA share
    /// this comparison, so they cannot disagree on near-tied candidates.
    pub fn better_than(&self, other: &Selection) -> bool {
        if self.distance + Self::DISTANCE_EPS < other.distance {
            return true;
        }
        if other.distance + Self::DISTANCE_EPS < self.distance {
            return false;
        }
        (self.pool.rank(), self.pool.bits()) < (other.pool.rank(), other.pool.bits())
    }
}

/// Exhaustive BHA: score every candidate with a full `O(2^N)` down-set mass
/// scan. `posterior` need not be normalized; masses are normalized by the
/// posterior total. Returns `None` when `candidates` is empty or the
/// posterior total is degenerate.
///
/// This is the baseline framework's selection path (and the ground truth
/// the fast path is tested against).
pub fn select_halving_exhaustive(
    posterior: &DensePosterior,
    candidates: &[State],
) -> Option<Selection> {
    let total = posterior.total();
    if !(total.is_finite() && total > 0.0) {
        return None;
    }
    let mut best: Option<Selection> = None;
    for &pool in candidates {
        if pool.is_empty() {
            continue;
        }
        let mass = posterior.pool_negative_mass(pool) / total;
        let cand = Selection {
            pool,
            negative_mass: mass,
            distance: (mass - 0.5).abs(),
        };
        if best.as_ref().is_none_or(|b| cand.better_than(b)) {
            best = Some(cand);
        }
    }
    best
}

/// Fast BHA over prefix pools of `order` (subjects in ascending-marginal
/// order), using the one-pass all-prefix mass kernel. Considers prefixes of
/// length `1..=max_pool_size` and returns the best.
///
/// ```
/// use sbgt_lattice::DensePosterior;
/// use sbgt_select::select_halving_prefix;
/// // Eight subjects at ~8% risk: (1-p)^8 ≈ 0.513 — pool them all.
/// let post = DensePosterior::from_risks(&[0.08; 8]);
/// let order: Vec<usize> = (0..8).collect();
/// let sel = select_halving_prefix(&post, &order, 16).unwrap();
/// assert_eq!(sel.pool.rank(), 8);
/// assert!((sel.negative_mass - 0.92f64.powi(8)).abs() < 1e-9);
/// ```
///
/// For an independent posterior, a pool's negative mass is the product of
/// its members' negative-marginals, so ascending-marginal prefixes sweep
/// that product monotonically from `max_i (1 - p_i)` down to `∏ (1 - p_i)`
/// with the finest steps available, and consecutive prefixes bracket ½.
/// The selected prefix is therefore near-optimal — exhaustive search can
/// improve the halving distance by at most the bracketing gap (tested) —
/// at `O(2^N)` total cost instead of `O(|C| · 2^N)`.
pub fn select_halving_prefix(
    posterior: &DensePosterior,
    order: &[usize],
    max_pool_size: usize,
) -> Option<Selection> {
    let masses = posterior.prefix_negative_masses(order);
    select_halving_from_masses(order, &masses, max_pool_size)
}

/// Parallel variant of [`select_halving_prefix`].
pub fn select_halving_prefix_par(
    posterior: &DensePosterior,
    order: &[usize],
    max_pool_size: usize,
    cfg: ParConfig,
) -> Option<Selection> {
    let masses = par_prefix_negative_masses(posterior, order, cfg);
    select_halving_from_masses(order, &masses, max_pool_size)
}

/// Sparse-posterior variant of [`select_halving_prefix`].
pub fn select_halving_prefix_sparse(
    posterior: &SparsePosterior,
    order: &[usize],
    max_pool_size: usize,
) -> Option<Selection> {
    let masses = posterior.prefix_negative_masses(order);
    select_halving_from_masses(order, &masses, max_pool_size)
}

/// Best prefix pool given precomputed all-prefix negative masses
/// (`masses[k]` = unnormalized mass of "first `k` subjects of `order` all
/// negative"; `masses[0]` = posterior total). This is the driver-side half
/// of the prefix rule, shared by the dense, sparse, parallel, and
/// engine-sharded selection paths.
///
/// Candidates are compared with [`Selection::better_than`] — the same
/// EPS-tolerant, smaller-pool-then-lex rule the exhaustive search uses —
/// so near-tied prefixes resolve identically everywhere.
pub fn select_halving_from_masses(
    order: &[usize],
    masses: &[f64],
    max_pool_size: usize,
) -> Option<Selection> {
    let total = masses.first().copied()?;
    if !(total.is_finite() && total > 0.0) {
        return None;
    }
    let cap = max_pool_size.min(order.len());
    if cap == 0 {
        return None;
    }
    // masses[k] is non-increasing in k, so the best prefix is where the
    // normalized mass crosses 1/2 — but with a size cap and ties we simply
    // scan the <= N+1 values (negligible next to the O(2^N) mass pass).
    let mut best: Option<Selection> = None;
    for k in 1..=cap {
        let mass = masses[k] / total;
        let cand = Selection {
            pool: State::from_subjects(order[..k].iter().copied()),
            negative_mass: mass,
            distance: (mass - 0.5).abs(),
        };
        if best.as_ref().is_none_or(|b| cand.better_than(b)) {
            best = Some(cand);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateStrategy;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn exhaustive_finds_exact_half_when_available() {
        // Two subjects at risk ~0.2929 make the pool {0,1} have negative
        // mass (1-p)^2 = 0.5 exactly.
        let p = 1.0 - 0.5f64.sqrt();
        let post = DensePosterior::from_risks(&[p, p]);
        let candidates = CandidateStrategy::Exhaustive { max_pool_size: 2 }.generate(&[0, 1]);
        let sel = select_halving_exhaustive(&post, &candidates).unwrap();
        assert_eq!(sel.pool, State::from_subjects([0, 1]));
        assert!(close(sel.negative_mass, 0.5));
        assert!(sel.distance < 1e-9);
    }

    #[test]
    fn prefix_is_near_exhaustive_on_independent_prior() {
        // The prefix rule is optimal among prefixes and within the
        // bracketing gap of the exhaustive optimum over all subsets.
        let risks = [0.02, 0.04, 0.07, 0.11, 0.16, 0.22, 0.3];
        let post = DensePosterior::from_risks(&risks);
        let order: Vec<usize> = (0..risks.len()).collect();
        let all = CandidateStrategy::Exhaustive { max_pool_size: 7 }.generate(&order);
        let ex = select_halving_exhaustive(&post, &all).unwrap();
        let fast = select_halving_prefix(&post, &order, 7).unwrap();
        // Exhaustive can only be better.
        assert!(ex.distance <= fast.distance + 1e-12);
        // ...and by no more than the bracketing gap between consecutive
        // prefix masses around 1/2.
        let masses = post.prefix_negative_masses(&order);
        let gap = masses
            .windows(2)
            .map(|w| w[0] - w[1])
            .fold(0.0f64, f64::max);
        assert!(
            fast.distance - ex.distance <= gap + 1e-12,
            "exhaustive {ex:?} vs prefix {fast:?} (gap {gap})"
        );
        // The prefix rule is exactly optimal among prefix candidates.
        let prefixes = CandidateStrategy::SortedPrefix { max_pool_size: 7 }.generate(&order);
        let best_prefix = select_halving_exhaustive(&post, &prefixes).unwrap();
        assert!(close(best_prefix.distance, fast.distance));
    }

    #[test]
    fn prefix_and_parallel_prefix_agree() {
        let risks = [0.01, 0.05, 0.03, 0.2, 0.12, 0.08, 0.02, 0.3, 0.07];
        let post = DensePosterior::from_risks(&risks);
        let mut order: Vec<usize> = (0..risks.len()).collect();
        order.sort_by(|&a, &b| risks[a].total_cmp(&risks[b]));
        let cfg = ParConfig {
            chunk_len: 11,
            threshold: 0,
        };
        let a = select_halving_prefix(&post, &order, 9).unwrap();
        let b = select_halving_prefix_par(&post, &order, 9, cfg).unwrap();
        assert_eq!(a.pool, b.pool);
        assert!(close(a.negative_mass, b.negative_mass));
    }

    #[test]
    fn sparse_prefix_matches_dense_when_unpruned() {
        let risks = [0.05, 0.1, 0.15, 0.2, 0.25];
        let post = DensePosterior::from_risks(&risks);
        let sparse = SparsePosterior::from_dense(&post, 0.0);
        let order: Vec<usize> = (0..risks.len()).collect();
        let a = select_halving_prefix(&post, &order, 5).unwrap();
        let b = select_halving_prefix_sparse(&sparse, &order, 5).unwrap();
        assert_eq!(a.pool, b.pool);
        assert!(close(a.negative_mass, b.negative_mass));
    }

    #[test]
    fn max_pool_size_is_respected() {
        let risks = [0.01; 10];
        let post = DensePosterior::from_risks(&risks);
        let order: Vec<usize> = (0..10).collect();
        let sel = select_halving_prefix(&post, &order, 4).unwrap();
        assert!(sel.pool.rank() <= 4);
        // With very low prevalence, bigger pools are better; the cap binds.
        assert_eq!(sel.pool.rank(), 4);
    }

    #[test]
    fn tie_break_prefers_smaller_pool() {
        // Uniform posterior: every pool of rank r has negative mass 2^-r,
        // so ranks 1 gives 0.5 exactly — multiple rank-1 pools tie; the
        // lexicographically smallest must win.
        let post = DensePosterior::new_uniform(4);
        let candidates = CandidateStrategy::Exhaustive { max_pool_size: 4 }.generate(&[0, 1, 2, 3]);
        let sel = select_halving_exhaustive(&post, &candidates).unwrap();
        assert_eq!(sel.pool, State::from_subjects([0]));
        assert!(close(sel.negative_mass, 0.5));
    }

    #[test]
    fn exact_half_half_tie_pins_smaller_pool() {
        // Subject 0 at risk 0.5, subject 1 at risk 0: prefixes {0} and
        // {0,1} both have negative mass exactly 0.5 (distance 0). The
        // unified tie-break must pin the smaller pool — in both the
        // prefix path and the exhaustive path.
        let post = DensePosterior::from_risks(&[0.5, 0.0]);
        let order = [0usize, 1];
        let masses = post.prefix_negative_masses(&order);
        assert_eq!(masses[1], 0.5, "prefix {{0}} mass is exactly 1/2");
        assert_eq!(masses[2], 0.5, "prefix {{0,1}} mass is exactly 1/2");

        let prefix = select_halving_prefix(&post, &order, 2).unwrap();
        assert_eq!(prefix.pool, State::from_subjects([0]));
        assert_eq!(prefix.negative_mass, 0.5);

        let candidates = vec![State::from_subjects([0]), State::from_subjects([0, 1])];
        let exhaustive = select_halving_exhaustive(&post, &candidates).unwrap();
        assert_eq!(exhaustive.pool, prefix.pool, "paths must agree on the tie");

        // And within equal rank the lexicographically smaller mask wins.
        let a = Selection {
            pool: State::from_subjects([1]),
            negative_mass: 0.5,
            distance: 0.0,
        };
        let b = Selection {
            pool: State::from_subjects([0]),
            negative_mass: 0.5,
            distance: 0.0,
        };
        assert!(b.better_than(&a));
        assert!(!a.better_than(&b));
    }

    #[test]
    fn empty_candidates_give_none() {
        let post = DensePosterior::new_uniform(3);
        assert!(select_halving_exhaustive(&post, &[]).is_none());
        assert!(select_halving_prefix(&post, &[], 3).is_none());
        assert!(select_halving_prefix(&post, &[0, 1], 0).is_none());
    }

    #[test]
    fn degenerate_posterior_gives_none() {
        let post = DensePosterior::from_probs(2, vec![0.0; 4]);
        let candidates = vec![State::from_subjects([0])];
        assert!(select_halving_exhaustive(&post, &candidates).is_none());
        assert!(select_halving_prefix(&post, &[0, 1], 2).is_none());
    }

    #[test]
    fn unnormalized_posterior_is_handled() {
        let mut post = DensePosterior::from_risks(&[0.2, 0.3, 0.1]);
        for p in post.probs_mut() {
            *p *= 17.0;
        }
        let order = [2usize, 0, 1];
        let sel = select_halving_prefix(&post, &order, 3).unwrap();
        assert!(sel.negative_mass <= 1.0 + 1e-12);
    }
}
