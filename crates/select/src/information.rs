//! Information-gain selection: entropy-optimal refinement of halving.
//!
//! The halving rule optimizes the *lattice-order* bisection of posterior
//! mass; the method paper shows this is asymptotically optimal. For an
//! imperfect assay, however, two pools with the same halving distance can
//! differ in how much the *outcome actually teaches* (a diluted pool's
//! positive outcome is weak evidence). The exact criterion is mutual
//! information: pick the pool maximizing
//!
//! `IG(A) = H(π) − E_y[ H(π | y) ]`.
//!
//! Computing IG for every candidate costs two full posterior updates per
//! candidate, so this module uses **shortlist refinement**: take the top-S
//! prefix pools by halving distance (one fused pass), then score only
//! those exactly. `S = 1` degenerates to plain halving; small `S` already
//! captures most of the available gain.

use sbgt_bayes::{update_dense, Observation};
use sbgt_lattice::{DensePosterior, State};
use sbgt_response::BinaryOutcomeModel;

/// A pool scored by exact expected information gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfoSelection {
    /// The chosen pool.
    pub pool: State,
    /// Exact expected information gain (nats) of testing this pool.
    pub information_gain: f64,
    /// Posterior probability the pool reads positive.
    pub predictive_positive: f64,
}

/// Select by expected information gain over a shortlist of the
/// `shortlist` best halving prefixes of `order`.
///
/// Returns `None` when `order` is empty, `max_pool_size == 0`, or the
/// posterior is degenerate.
///
/// # Panics
/// Panics when `shortlist == 0`.
pub fn select_information_gain<M: BinaryOutcomeModel>(
    posterior: &DensePosterior,
    model: &M,
    order: &[usize],
    max_pool_size: usize,
    shortlist: usize,
) -> Option<InfoSelection> {
    assert!(shortlist >= 1, "shortlist must be at least 1");
    let cap = max_pool_size.min(order.len());
    if cap == 0 {
        return None;
    }
    // Normalize a working copy once; entropy formulas below assume mass 1.
    let mut base = posterior.clone();
    base.try_normalize()?;
    let h_prior = base.entropy();

    // Rank prefix candidates by halving distance (one fused pass).
    let masses = base.prefix_negative_masses(order);
    let mut ranked: Vec<(usize, f64)> = (1..=cap).map(|k| (k, (masses[k] - 0.5).abs())).collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    ranked.truncate(shortlist);

    let mut best: Option<InfoSelection> = None;
    for (k, _) in ranked {
        let pool = State::from_subjects(order[..k].iter().copied());
        let mut expected_h = 0.0;
        let mut p_pos = 0.0;
        let mut feasible_mass = 0.0;
        for outcome in [true, false] {
            let mut branch = base.clone();
            // An impossible branch contributes zero mass.
            if let Ok(z) = update_dense(&mut branch, model, &Observation::new(pool, outcome)) {
                expected_h += z * branch.entropy();
                feasible_mass += z;
                if outcome {
                    p_pos = z;
                }
            }
        }
        if feasible_mass <= 0.0 {
            continue;
        }
        let ig = h_prior - expected_h;
        let cand = InfoSelection {
            pool,
            information_gain: ig,
            predictive_positive: p_pos,
        };
        let better = match &best {
            None => true,
            Some(b) => cand.information_gain > b.information_gain + 1e-12,
        };
        if better {
            best = Some(cand);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_response::{BinaryDilutionModel, Dilution};

    fn ascending(risks: &[f64]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..risks.len()).collect();
        order.sort_by(|&a, &b| risks[a].total_cmp(&risks[b]));
        order
    }

    #[test]
    fn perfect_test_ig_is_outcome_entropy() {
        // For a perfect test, H(π|y) splits exactly and IG equals the
        // binary entropy of the pool-negative mass.
        let risks = [0.2, 0.3, 0.15];
        let post = DensePosterior::from_risks(&risks);
        let model = BinaryDilutionModel::perfect();
        let order = ascending(&risks);
        let sel = select_information_gain(&post, &model, &order, 3, 3).unwrap();
        let m = post.pool_negative_mass(sel.pool) / post.total();
        let binary_entropy = -(m * m.ln() + (1.0 - m) * (1.0 - m).ln());
        assert!(
            (sel.information_gain - binary_entropy).abs() < 1e-9,
            "IG {} vs H_b {}",
            sel.information_gain,
            binary_entropy
        );
        assert!((sel.predictive_positive - (1.0 - m)).abs() < 1e-9);
    }

    #[test]
    fn ig_never_negative_and_bounded_by_one_bit() {
        let risks = [0.05, 0.12, 0.3, 0.22, 0.08];
        let post = DensePosterior::from_risks(&risks);
        let model = BinaryDilutionModel::pcr_like();
        let order = ascending(&risks);
        let sel = select_information_gain(&post, &model, &order, 5, 5).unwrap();
        assert!(sel.information_gain >= -1e-12);
        // A binary outcome carries at most ln 2 nats.
        assert!(sel.information_gain <= 2f64.ln() + 1e-12);
    }

    #[test]
    fn shortlist_one_scores_the_halving_choice() {
        let risks = [0.03, 0.09, 0.18, 0.27];
        let post = DensePosterior::from_risks(&risks);
        let model = BinaryDilutionModel::pcr_like();
        let order = ascending(&risks);
        let halving = crate::halving::select_halving_prefix(&post, &order, 4).unwrap();
        let ig1 = select_information_gain(&post, &model, &order, 4, 1).unwrap();
        assert_eq!(ig1.pool, halving.pool);
    }

    #[test]
    fn wider_shortlist_never_loses_information() {
        let risks = [0.02, 0.07, 0.13, 0.21, 0.3, 0.09];
        let post = DensePosterior::from_risks(&risks);
        let model = BinaryDilutionModel::new(0.9, 0.97, Dilution::Linear); // strong dilution
        let order = ascending(&risks);
        let narrow = select_information_gain(&post, &model, &order, 6, 1).unwrap();
        let wide = select_information_gain(&post, &model, &order, 6, 6).unwrap();
        assert!(wide.information_gain >= narrow.information_gain - 1e-12);
    }

    #[test]
    fn dilution_shifts_choice_toward_smaller_pools() {
        // Under strong linear dilution, large pools teach little even when
        // they halve the mass well; IG refinement should pick a pool no
        // larger than plain halving does.
        let risks = [0.04; 8];
        let post = DensePosterior::from_risks(&risks);
        let strong = BinaryDilutionModel::new(0.95, 0.99, Dilution::Linear);
        let order: Vec<usize> = (0..8).collect();
        let halving = crate::halving::select_halving_prefix(&post, &order, 8).unwrap();
        let ig = select_information_gain(&post, &strong, &order, 8, 8).unwrap();
        assert!(
            ig.pool.rank() <= halving.pool.rank(),
            "IG pool {} bigger than halving pool {}",
            ig.pool,
            halving.pool
        );
    }

    #[test]
    fn degenerate_inputs() {
        let post = DensePosterior::from_risks(&[0.1, 0.2]);
        let model = BinaryDilutionModel::pcr_like();
        assert!(select_information_gain(&post, &model, &[], 4, 2).is_none());
        assert!(select_information_gain(&post, &model, &[0, 1], 0, 2).is_none());
        let zero = DensePosterior::from_probs(2, vec![0.0; 4]);
        assert!(select_information_gain(&zero, &model, &[0, 1], 2, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "shortlist")]
    fn zero_shortlist_panics() {
        let post = DensePosterior::from_risks(&[0.1]);
        let model = BinaryDilutionModel::pcr_like();
        let _ = select_information_gain(&post, &model, &[0], 1, 0);
    }
}
