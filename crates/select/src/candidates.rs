//! Candidate-pool generation strategies.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use sbgt_lattice::iter::subsets_of;
use sbgt_lattice::State;

/// How to enumerate candidate pools over a set of eligible subjects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateStrategy {
    /// Every non-empty subset of the eligible subjects with at most
    /// `max_pool_size` members. Exponential in the eligible count — only
    /// viable for small cohorts; used as ground truth.
    Exhaustive {
        /// Largest pool size to consider (assay-constrained).
        max_pool_size: usize,
    },
    /// Prefixes `{o_1}, {o_1, o_2}, ...` of the supplied subject ordering,
    /// up to `max_pool_size`. With subjects ordered by ascending marginal,
    /// this contains the BHA optimum for independent posteriors.
    SortedPrefix {
        /// Largest prefix length to consider.
        max_pool_size: usize,
    },
    /// `count` pools drawn uniformly among subsets of size
    /// `1..=max_pool_size`, seeded for reproducibility.
    Random {
        /// Number of candidate pools to draw.
        count: usize,
        /// Largest pool size to draw.
        max_pool_size: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl CandidateStrategy {
    /// Generate the candidate pools over `eligible` subjects, which must be
    /// supplied in the intended priority order (for `SortedPrefix`, by
    /// ascending posterior marginal).
    ///
    /// Returns an empty vector when `eligible` is empty.
    pub fn generate(&self, eligible: &[usize]) -> Vec<State> {
        if eligible.is_empty() {
            return Vec::with_capacity(0);
        }
        match *self {
            CandidateStrategy::Exhaustive { max_pool_size } => {
                let mask = State::from_subjects(eligible.iter().copied());
                subsets_of(mask)
                    .filter(|s| {
                        let r = s.rank() as usize;
                        r >= 1 && r <= max_pool_size
                    })
                    .collect()
            }
            CandidateStrategy::SortedPrefix { max_pool_size } => {
                let cap = max_pool_size.min(eligible.len());
                (1..=cap)
                    .map(|k| State::from_subjects(eligible[..k].iter().copied()))
                    .collect()
            }
            CandidateStrategy::Random {
                count,
                max_pool_size,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let cap = max_pool_size.min(eligible.len()).max(1);
                let mut pools = Vec::with_capacity(count);
                let mut scratch: Vec<usize> = eligible.to_vec();
                for _ in 0..count {
                    let size = rng.random_range(1..=cap);
                    // Partial Fisher-Yates: the first `size` entries become
                    // a uniform size-`size` subset.
                    for i in 0..size {
                        let j = rng.random_range(i..scratch.len());
                        scratch.swap(i, j);
                    }
                    pools.push(State::from_subjects(scratch[..size].iter().copied()));
                }
                pools.sort_unstable_by_key(|s| s.bits());
                pools.dedup();
                pools
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_counts() {
        let c = CandidateStrategy::Exhaustive { max_pool_size: 2 };
        let pools = c.generate(&[0, 2, 5]);
        // C(3,1) + C(3,2) = 6
        assert_eq!(pools.len(), 6);
        for p in &pools {
            assert!(p.rank() >= 1 && p.rank() <= 2);
            assert!(p.is_subset_of(State::from_subjects([0, 2, 5])));
        }
    }

    #[test]
    fn exhaustive_unbounded_includes_full_set() {
        let c = CandidateStrategy::Exhaustive { max_pool_size: 99 };
        let pools = c.generate(&[1, 3]);
        assert_eq!(pools.len(), 3); // {1}, {3}, {1,3}
    }

    #[test]
    fn prefix_respects_order() {
        let c = CandidateStrategy::SortedPrefix { max_pool_size: 3 };
        let pools = c.generate(&[4, 1, 7, 2]);
        assert_eq!(
            pools,
            vec![
                State::from_subjects([4]),
                State::from_subjects([4, 1]),
                State::from_subjects([4, 1, 7]),
            ]
        );
    }

    #[test]
    fn prefix_caps_at_eligible_count() {
        let c = CandidateStrategy::SortedPrefix { max_pool_size: 10 };
        assert_eq!(c.generate(&[0, 1]).len(), 2);
    }

    #[test]
    fn random_is_reproducible_and_bounded() {
        let c = CandidateStrategy::Random {
            count: 20,
            max_pool_size: 3,
            seed: 9,
        };
        let eligible = [0usize, 1, 2, 3, 4, 5, 6, 7];
        let a = c.generate(&eligible);
        let b = c.generate(&eligible);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() <= 20);
        let mask = State::from_subjects(eligible.iter().copied());
        for p in &a {
            assert!(p.rank() >= 1 && p.rank() <= 3);
            assert!(p.is_subset_of(mask));
        }
    }

    #[test]
    fn empty_eligible_yields_no_pools() {
        for c in [
            CandidateStrategy::Exhaustive { max_pool_size: 2 },
            CandidateStrategy::SortedPrefix { max_pool_size: 2 },
            CandidateStrategy::Random {
                count: 5,
                max_pool_size: 2,
                seed: 1,
            },
        ] {
            assert!(c.generate(&[]).is_empty());
        }
    }
}
