//! # sbgt-select — sequential pooled-test selection
//!
//! The decision-theoretic heart of Bayesian group testing: given the
//! current lattice posterior, which pool should be tested next?
//!
//! * [`halving`] — the **Bayesian Halving Algorithm** (BHA): choose the pool
//!   whose pool-negative posterior mass is closest to ½. The method paper
//!   proves this rule is optimally convergent (the posterior mass of the
//!   true state contracts geometrically) even under strong dilution. Two
//!   implementations are provided:
//!   - an exhaustive candidate scan (`O(|C| · 2^N)`) — the baseline
//!     framework's approach and the test-suite ground truth;
//!   - the sorted-prefix search (`O(2^N + N log N)`) exploiting that, for
//!     independent-ish posteriors, the optimal halving pool is a prefix of
//!     subjects ordered by marginal — combined with the one-pass
//!     all-prefix mass kernel, this is where SBGT's test-selection speedup
//!     comes from.
//! * [`global`] — exact global halving in `O(N · 2^N)` via the zeta
//!   transform (every pool priced by one subset-sum pass);
//! * [`candidates`] — candidate-pool generators (exhaustive up to a size
//!   cap, sorted prefixes, random pools) shared by the selection rules.
//! * [`lookahead`] — the multi-pool look-ahead rules: select `L` pools to
//!   run in one stage (before any outcome is known) by greedily minimizing
//!   the *expected* halving distance over outcome branches. Trades more
//!   tests per stage for fewer stages — experiment E8. Besides the
//!   clone-per-branch baseline this now carries the **branch-fused** paths
//!   (serial and rayon) that score all `2^j` outcome branches in one
//!   lattice traversal per greedy step, plus the shared greedy driver the
//!   engine-sharded session path plugs into.
//! * [`plancache`] — memoized BHA decision plans: outcome-indexed selection
//!   trees keyed by a quantized [`PlanKey`], shared across cohorts so a
//!   config that hits the cache replays precomputed pool selections with
//!   zero search work, falling back to live selection (and extending the
//!   tree in place, under an LRU node budget) when it walks off the tree.

pub mod candidates;
pub mod global;
pub mod halving;
pub mod information;
pub mod lookahead;
pub mod plancache;

pub use candidates::CandidateStrategy;
pub use global::{select_halving_global, select_halving_global_par, GLOBAL_PAR_THRESHOLD};
pub use halving::{
    select_halving_exhaustive, select_halving_from_masses, select_halving_prefix,
    select_halving_prefix_par, select_halving_prefix_sparse, Selection,
};
pub use information::{select_information_gain, InfoSelection};
pub use lookahead::{
    drive_lookahead, select_stage_lookahead, select_stage_lookahead_fused,
    select_stage_lookahead_par, select_stage_lookahead_sparse, LookaheadConfig, SelectError,
};
pub use plancache::{
    PlanCache, PlanCacheStats, PlanCodecError, PlanHandle, PlanKey, PlanLineage, PlanTree,
    RiskQuantizer, PLAN_MAX_STAGE_POOLS,
};
