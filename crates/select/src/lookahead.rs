//! Look-ahead stage selection.
//!
//! A *stage* runs several pooled tests in parallel on the bench before the
//! next posterior update. The method paper's look-ahead rules pick all `L`
//! pools of a stage up front: the first by the ordinary halving rule, each
//! subsequent one by minimizing the **expected** halving distance over the
//! outcome branches of the pools already committed to the stage. More pools
//! per stage means fewer serial stages (lower turnaround time) at the cost
//! of more total tests — the trade-off of experiment E8.
//!
//! Three implementations share one greedy driver ([`drive_lookahead`]):
//!
//! * [`select_stage_lookahead`] — the clone-per-branch baseline: `2^j`
//!   materialized branch posteriors after `j` committed pools, each
//!   re-scored with a full prefix-mass pass. Kept as the reference the
//!   fused paths are pinned against (and as the bench baseline). Width 1
//!   fast-paths to plain prefix halving with **zero** posterior clones.
//! * [`select_stage_lookahead_fused`] — the branch-fused kernel
//!   ([`sbgt_lattice::LookaheadKernel`]): one traversal per greedy step
//!   accumulates every branch's prefix histogram at once; no branch
//!   posterior ever exists. `O(2^N · 2^j)` multiplies but `O(N · 2^j)`
//!   memory, and no allocation proportional to the lattice.
//! * [`select_stage_lookahead_par`] — the fused kernel over rayon chunks
//!   ([`sbgt_lattice::kernels::par_lookahead_histograms`]).
//!
//! The engine-sharded variant (`ShardedSession::select_stage` in the core
//! crate) reuses the same driver with a histogram closure that runs the
//! kernel as an aggregate stage over posterior partitions.

use std::collections::HashSet;

use sbgt_bayes::{update_dense, Observation};
use sbgt_lattice::branch::suffix_sum_rows;
use sbgt_lattice::kernels::{par_lookahead_histograms, ParConfig};
use sbgt_lattice::{simd, BranchPool, DensePosterior, LookaheadKernel, SparsePosterior, State};
use sbgt_response::BinaryOutcomeModel;

use crate::halving::{select_halving_from_masses, Selection};

/// Errors from selection-rule configuration, mirroring the engine crate's
/// `EngineError::InvalidArgument` convention: invalid configs are rejected
/// with a typed error at the API boundary instead of panicking mid-stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// A selection config failed validation (zero stage width, zero pool
    /// size cap, ...).
    InvalidArgument(String),
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for SelectError {}

/// Configuration for a look-ahead stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookaheadConfig {
    /// Number of pools to select for the stage (`L ≥ 1`); `L = 1`
    /// degenerates to the plain halving rule.
    pub width: usize,
    /// Largest admissible pool size.
    pub max_pool_size: usize,
}

impl Default for LookaheadConfig {
    fn default() -> Self {
        LookaheadConfig {
            width: 1,
            max_pool_size: 32,
        }
    }
}

impl LookaheadConfig {
    /// Validate the config. A zero `width` or `max_pool_size` cannot select
    /// anything and is a caller bug, rejected with
    /// [`SelectError::InvalidArgument`] (the pre-PR-3 behaviour was an
    /// `assert!` panic inside the selection loop).
    pub fn validate(&self) -> Result<(), SelectError> {
        if self.width == 0 {
            return Err(SelectError::InvalidArgument(
                "stage width must be at least 1".to_string(),
            ));
        }
        if self.max_pool_size == 0 {
            return Err(SelectError::InvalidArgument(
                "pool size cap must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// Build the fused-kernel form of a committed pool: its mask plus both
/// outcome likelihood tables.
fn branch_pool<M: BinaryOutcomeModel>(model: &M, pool: State) -> BranchPool {
    BranchPool {
        mask: pool.bits(),
        tables: [
            model.likelihood_table(false, pool.rank()),
            model.likelihood_table(true, pool.rank()),
        ],
    }
}

/// The greedy look-ahead driver shared by the fused, rayon, and
/// engine-sharded paths.
///
/// `histograms(pools)` must return the `(order.len() + 1) × 2^j`
/// branch-weighted first-positive histogram of the **initial, unnormalized**
/// posterior under the `j` committed `pools` (layout of
/// [`LookaheadKernel::histograms`]). The driver suffix-sums it into
/// per-branch prefix masses, normalizes each branch by its own total,
/// weights branches by their predictive probability (`branch total / step-0
/// total` — exactly the chained evidences of the clone-per-branch baseline),
/// and picks the prefix minimizing expected halving distance. Dead branches
/// (non-finite or zero total — impossible outcomes under a degenerate
/// model) are skipped, matching the baseline dropping failed updates.
pub fn drive_lookahead<M: BinaryOutcomeModel>(
    model: &M,
    order: &[usize],
    cfg: &LookaheadConfig,
    mut histograms: impl FnMut(&[BranchPool]) -> Vec<f64>,
) -> Result<Vec<Selection>, SelectError> {
    cfg.validate()?;
    let cap = cfg.max_pool_size.min(order.len());
    if cap == 0 {
        return Ok(Vec::new());
    }

    let mut pools: Vec<BranchPool> = Vec::new();
    let mut chosen: Vec<Selection> = Vec::with_capacity(cfg.width);
    let mut used: HashSet<u64> = HashSet::new();
    let mut z0 = 0.0f64;

    for step in 0..cfg.width {
        let nb = 1usize << pools.len();
        let hist = histograms(&pools);
        debug_assert_eq!(hist.len(), (order.len() + 1) * nb);
        let masses = suffix_sum_rows(&hist, nb);
        if step == 0 {
            z0 = masses[0];
            if !(z0.is_finite() && z0 > 0.0) {
                return Ok(Vec::new());
            }
        }

        let mut expected_mass = vec![0.0f64; cap + 1];
        let mut expected_dist = vec![0.0f64; cap + 1];
        let mut live = 0usize;
        for b in 0..nb {
            let total = masses[b];
            if !(total.is_finite() && total > 0.0) {
                continue;
            }
            live += 1;
            let w = total / z0;
            for k in 1..=cap {
                let m = masses[k * nb + b] / total;
                expected_mass[k] += w * m;
                expected_dist[k] += w * (m - 0.5).abs();
            }
        }
        if live == 0 {
            break;
        }

        let mut best: Option<(usize, State)> = None;
        for k in 1..=cap {
            let pool = State::from_subjects(order[..k].iter().copied());
            if used.contains(&pool.bits()) {
                continue;
            }
            let better = match best {
                None => true,
                Some((bk, _)) => expected_dist[k] + Selection::DISTANCE_EPS < expected_dist[bk],
            };
            if better {
                best = Some((k, pool));
            }
        }
        let Some((k, pool)) = best else { break };
        used.insert(pool.bits());
        chosen.push(Selection {
            pool,
            negative_mass: expected_mass[k],
            distance: expected_dist[k],
        });

        if chosen.len() == cfg.width {
            break;
        }
        pools.push(branch_pool(model, pool));
    }
    Ok(chosen)
}

/// Branch-fused look-ahead selection over the dense posterior, serial.
///
/// Selects the same pools as [`select_stage_lookahead`] (pinned bit-for-bit
/// by property tests) without ever materializing a branch posterior: each
/// greedy step is one fused traversal of the *initial* posterior
/// accumulating all `2^j` branch histograms at once.
pub fn select_stage_lookahead_fused<M: BinaryOutcomeModel>(
    posterior: &DensePosterior,
    model: &M,
    order: &[usize],
    cfg: &LookaheadConfig,
) -> Result<Vec<Selection>, SelectError> {
    cfg.validate()?;
    let kernel = LookaheadKernel::new(posterior.n_subjects(), order);
    drive_lookahead(model, order, cfg, |pools| {
        kernel.histograms(posterior.probs(), 0, pools)
    })
}

/// Parallel variant of [`select_stage_lookahead_fused`]: the fused kernel
/// runs over rayon chunks and the partial histograms are reduced
/// elementwise.
pub fn select_stage_lookahead_par<M: BinaryOutcomeModel>(
    posterior: &DensePosterior,
    model: &M,
    order: &[usize],
    cfg: &LookaheadConfig,
    par: ParConfig,
) -> Result<Vec<Selection>, SelectError> {
    cfg.validate()?;
    let kernel = LookaheadKernel::new(posterior.n_subjects(), order);
    drive_lookahead(model, order, cfg, |pools| {
        par_lookahead_histograms(posterior, &kernel, pools, par)
    })
}

/// Branch-fused look-ahead selection over a **sparse** (pruned) posterior —
/// the counterpart of [`select_stage_lookahead_fused`] that
/// [`crate::halving::select_halving_prefix_sparse`] was missing for
/// width > 1 stages.
///
/// Reuses the same greedy driver with a histogram closure that traverses
/// the retained entries only: per entry the committed pools' branch
/// products are built by the shared iterative-doubling primitive and
/// scattered into the entry's first-positive row. Cost per greedy step is
/// `O(support · 2^j)` instead of `O(2^N · 2^j)`. At ε = 0 (nothing pruned)
/// this selects exactly the pools of the dense fused path.
///
/// # Panics
/// Panics if `order` contains a duplicate or an index `>= n`, matching
/// [`LookaheadKernel::new`].
pub fn select_stage_lookahead_sparse<M: BinaryOutcomeModel>(
    posterior: &SparsePosterior,
    model: &M,
    order: &[usize],
    cfg: &LookaheadConfig,
) -> Result<Vec<Selection>, SelectError> {
    cfg.validate()?;
    let n = posterior.n_subjects();
    let m = order.len();
    let mut pos_of = vec![u32::MAX; n];
    for (k, &subj) in order.iter().enumerate() {
        assert!(subj < n, "subject {subj} out of range");
        assert!(
            pos_of[subj] == u32::MAX,
            "duplicate subject {subj} in order"
        );
        pos_of[subj] = k as u32;
    }
    drive_lookahead(model, order, cfg, |pools| {
        let nb = 1usize << pools.len();
        let mut hist = vec![0.0f64; (m + 1) * nb];
        let mut prod = vec![0.0f64; nb];
        for &(s, p) in posterior.entries() {
            prod[0] = p;
            let mut cur = 1usize;
            for pool in pools {
                let k = (s.bits() & pool.mask).count_ones() as usize;
                simd::lookahead_double_block(&mut prod, cur, pool.tables[0][k], pool.tables[1][k]);
                cur <<= 1;
            }
            let mut first = m as u32;
            for b in s.subjects() {
                let pos = pos_of[b];
                if pos < first {
                    first = pos;
                    if first == 0 {
                        break;
                    }
                }
            }
            let row = first as usize * nb;
            simd::add_assign_block(&mut hist[row..row + nb], &prod);
        }
        hist
    })
}

/// Select the pools of one stage by greedy expected-halving search over
/// prefix candidates of `order` (subjects by ascending marginal) — the
/// clone-per-branch baseline.
///
/// Returns up to `cfg.width` selections; each [`Selection`]'s
/// `negative_mass`/`distance` are the **expected** values over the outcome
/// branches of the previously committed pools (for the first pool they
/// coincide with the plain halving quantities). Fewer pools are returned
/// when candidates run out or every branch dies (impossible outcomes under
/// a degenerate model). An invalid config is rejected with
/// [`SelectError::InvalidArgument`].
///
/// `width == 1` fast-paths to plain prefix halving with zero posterior
/// clones. For `width > 1` prefer [`select_stage_lookahead_fused`] /
/// [`select_stage_lookahead_par`]: they select identical pools without the
/// `O(2^j · 2^N)` branch materialization.
pub fn select_stage_lookahead<M: BinaryOutcomeModel>(
    posterior: &DensePosterior,
    model: &M,
    order: &[usize],
    cfg: &LookaheadConfig,
) -> Result<Vec<Selection>, SelectError> {
    cfg.validate()?;
    let cap = cfg.max_pool_size.min(order.len());
    if cap == 0 {
        return Ok(Vec::new());
    }

    if cfg.width == 1 {
        // Degenerate stage: the expected halving distance over zero
        // committed pools IS the plain halving distance — reuse the
        // all-prefix kernel directly instead of cloning into a branch.
        let masses = posterior.prefix_negative_masses(order);
        return Ok(select_halving_from_masses(order, &masses, cap)
            .into_iter()
            .collect());
    }

    // Outcome branches: (normalized posterior, probability weight).
    let mut branches: Vec<(DensePosterior, f64)> = vec![(posterior.clone(), 1.0)];
    if branches[0].0.try_normalize().is_none() {
        return Ok(Vec::new());
    }

    let mut chosen: Vec<Selection> = Vec::with_capacity(cfg.width);
    let mut used: HashSet<u64> = HashSet::new();

    for _ in 0..cfg.width {
        // Score every prefix candidate against every branch in one
        // all-prefix pass per branch.
        let mut expected_mass = vec![0.0f64; cap + 1];
        let mut expected_dist = vec![0.0f64; cap + 1];
        for (post, w) in &branches {
            let masses = post.prefix_negative_masses(order);
            let total = masses[0];
            if !(total.is_finite() && total > 0.0) {
                continue;
            }
            for k in 1..=cap {
                let m = masses[k] / total;
                expected_mass[k] += w * m;
                expected_dist[k] += w * (m - 0.5).abs();
            }
        }
        let mut best: Option<(usize, State)> = None;
        for k in 1..=cap {
            let pool = State::from_subjects(order[..k].iter().copied());
            if used.contains(&pool.bits()) {
                continue;
            }
            let better = match best {
                None => true,
                Some((bk, _)) => expected_dist[k] + Selection::DISTANCE_EPS < expected_dist[bk],
            };
            if better {
                best = Some((k, pool));
            }
        }
        let Some((k, pool)) = best else { break };
        used.insert(pool.bits());
        chosen.push(Selection {
            pool,
            negative_mass: expected_mass[k],
            distance: expected_dist[k],
        });

        if chosen.len() == cfg.width {
            break;
        }

        // Branch every posterior on the chosen pool's two outcomes.
        let mut next: Vec<(DensePosterior, f64)> = Vec::with_capacity(branches.len() * 2);
        for (post, w) in branches {
            for outcome in [false, true] {
                let mut branched = post.clone();
                // An impossible branch has zero predictive mass.
                if let Ok(z) = update_dense(&mut branched, model, &Observation::new(pool, outcome))
                {
                    next.push((branched, w * z));
                }
            }
        }
        if next.is_empty() {
            break;
        }
        branches = next;
    }
    Ok(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halving::select_halving_prefix;
    use sbgt_response::BinaryDilutionModel;

    fn ascending_order(risks: &[f64]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..risks.len()).collect();
        order.sort_by(|&a, &b| risks[a].total_cmp(&risks[b]));
        order
    }

    #[test]
    fn width_one_matches_plain_halving() {
        let risks = [0.02, 0.08, 0.05, 0.15, 0.01];
        let post = DensePosterior::from_risks(&risks);
        let order = ascending_order(&risks);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig {
            width: 1,
            max_pool_size: 5,
        };
        let stage = select_stage_lookahead(&post, &model, &order, &cfg).unwrap();
        let plain = select_halving_prefix(&post, &order, 5).unwrap();
        assert_eq!(stage.len(), 1);
        assert_eq!(stage[0].pool, plain.pool);
        assert!((stage[0].negative_mass - plain.negative_mass).abs() < 1e-9);
    }

    #[test]
    fn wider_stage_returns_distinct_pools() {
        let risks = [0.03, 0.07, 0.12, 0.2, 0.04, 0.09, 0.15, 0.25];
        let post = DensePosterior::from_risks(&risks);
        let order = ascending_order(&risks);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig {
            width: 3,
            max_pool_size: 8,
        };
        let stage = select_stage_lookahead(&post, &model, &order, &cfg).unwrap();
        assert_eq!(stage.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for s in &stage {
            assert!(seen.insert(s.pool.bits()), "duplicate pool in stage");
            assert!(s.pool.rank() as usize <= 8);
        }
    }

    #[test]
    fn expected_distance_is_bounded() {
        let risks = [0.1, 0.2, 0.15, 0.05];
        let post = DensePosterior::from_risks(&risks);
        let order = ascending_order(&risks);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig {
            width: 2,
            max_pool_size: 4,
        };
        let stage = select_stage_lookahead(&post, &model, &order, &cfg).unwrap();
        for s in &stage {
            assert!(s.distance >= -1e-12 && s.distance <= 0.5 + 1e-12);
            assert!(s.negative_mass >= -1e-12 && s.negative_mass <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn empty_order_yields_empty_stage() {
        let post = DensePosterior::from_risks(&[0.1, 0.1]);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig::default();
        assert!(select_stage_lookahead(&post, &model, &[], &cfg)
            .unwrap()
            .is_empty());
        assert!(select_stage_lookahead_fused(&post, &model, &[], &cfg)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn degenerate_posterior_yields_empty_stage() {
        let post = DensePosterior::from_probs(2, vec![0.0; 4]);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig::default();
        assert!(select_stage_lookahead(&post, &model, &[0, 1], &cfg)
            .unwrap()
            .is_empty());
        assert!(select_stage_lookahead_fused(&post, &model, &[0, 1], &cfg)
            .unwrap()
            .is_empty());
        let wide = LookaheadConfig {
            width: 3,
            max_pool_size: 2,
        };
        assert!(select_stage_lookahead(&post, &model, &[0, 1], &wide)
            .unwrap()
            .is_empty());
        assert!(select_stage_lookahead_fused(&post, &model, &[0, 1], &wide)
            .unwrap()
            .is_empty());
    }

    /// Regression: a zero-width (or zero-cap) config used to `assert!`-panic
    /// inside the selection loop; it is now rejected with a typed error,
    /// matching the engine crate's `RetryPolicy::new(0)` convention.
    #[test]
    fn invalid_config_rejected_without_panicking() {
        let post = DensePosterior::from_risks(&[0.1]);
        let model = BinaryDilutionModel::pcr_like();
        let zero_width = LookaheadConfig {
            width: 0,
            max_pool_size: 1,
        };
        match select_stage_lookahead(&post, &model, &[0], &zero_width) {
            Err(SelectError::InvalidArgument(msg)) => {
                assert!(msg.contains("stage width"), "{msg}");
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
        let zero_cap = LookaheadConfig {
            width: 1,
            max_pool_size: 0,
        };
        match select_stage_lookahead_fused(&post, &model, &[0], &zero_cap) {
            Err(SelectError::InvalidArgument(msg)) => {
                assert!(msg.contains("pool size cap"), "{msg}");
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
        assert!(zero_width.validate().is_err());
        assert!(zero_cap.validate().is_err());
        assert!(LookaheadConfig::default().validate().is_ok());
    }

    #[test]
    fn fused_selects_identical_pools_to_baseline() {
        let risks = [0.03, 0.07, 0.12, 0.2, 0.04, 0.09, 0.15, 0.25, 0.02];
        let post = DensePosterior::from_risks(&risks);
        let order = ascending_order(&risks);
        let model = BinaryDilutionModel::pcr_like();
        for width in 1..=4 {
            let cfg = LookaheadConfig {
                width,
                max_pool_size: 6,
            };
            let base = select_stage_lookahead(&post, &model, &order, &cfg).unwrap();
            let fused = select_stage_lookahead_fused(&post, &model, &order, &cfg).unwrap();
            let par = select_stage_lookahead_par(
                &post,
                &model,
                &order,
                &cfg,
                ParConfig {
                    chunk_len: 64,
                    threshold: 0,
                },
            )
            .unwrap();
            assert_eq!(base.len(), fused.len(), "width {width}");
            for (b, f) in base.iter().zip(&fused) {
                assert_eq!(b.pool, f.pool, "width {width}");
                assert!((b.negative_mass - f.negative_mass).abs() < 1e-9);
                assert!((b.distance - f.distance).abs() < 1e-9);
            }
            for (f, p) in fused.iter().zip(&par) {
                assert_eq!(f.pool, p.pool, "width {width}");
                assert!((f.negative_mass - p.negative_mass).abs() < 1e-12);
                assert!((f.distance - p.distance).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sparse_unpruned_selects_identical_pools_to_fused() {
        let risks = [0.03, 0.07, 0.12, 0.2, 0.04, 0.09, 0.15, 0.25];
        let post = DensePosterior::from_risks(&risks);
        let sparse = SparsePosterior::from_dense(&post, 0.0);
        let order = ascending_order(&risks);
        let model = BinaryDilutionModel::pcr_like();
        for width in 1..=4 {
            let cfg = LookaheadConfig {
                width,
                max_pool_size: 6,
            };
            let fused = select_stage_lookahead_fused(&post, &model, &order, &cfg).unwrap();
            let sp = select_stage_lookahead_sparse(&sparse, &model, &order, &cfg).unwrap();
            assert_eq!(fused.len(), sp.len(), "width {width}");
            for (f, s) in fused.iter().zip(&sp) {
                assert_eq!(f.pool, s.pool, "width {width}");
                assert!((f.negative_mass - s.negative_mass).abs() < 1e-12);
                assert!((f.distance - s.distance).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sparse_pruned_posterior_still_selects() {
        // A heavily pruned posterior must keep producing valid, distinct
        // pools (scores reflect the retained mass only).
        let risks = [0.02, 0.05, 0.3, 0.08, 0.12, 0.07];
        let dense = DensePosterior::from_risks(&risks);
        let sparse = SparsePosterior::from_dense(&dense, 0.01);
        assert!(sparse.support() < dense.len());
        let order = ascending_order(&risks);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig {
            width: 3,
            max_pool_size: 4,
        };
        let stage = select_stage_lookahead_sparse(&sparse, &model, &order, &cfg).unwrap();
        assert_eq!(stage.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for s in &stage {
            assert!(seen.insert(s.pool.bits()));
            assert!(s.distance >= -1e-12 && s.distance <= 0.5 + 1e-12);
        }
    }

    #[test]
    fn fused_works_on_unnormalized_posterior() {
        // The fused path never normalizes; scale invariance must hold.
        let risks = [0.05, 0.11, 0.3, 0.08];
        let mut post = DensePosterior::from_risks(&risks);
        for p in post.probs_mut() {
            *p *= 7.25;
        }
        let order = ascending_order(&risks);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig {
            width: 2,
            max_pool_size: 4,
        };
        let base = select_stage_lookahead(&post, &model, &order, &cfg).unwrap();
        let fused = select_stage_lookahead_fused(&post, &model, &order, &cfg).unwrap();
        assert_eq!(base.len(), fused.len());
        for (b, f) in base.iter().zip(&fused) {
            assert_eq!(b.pool, f.pool);
            assert!((b.negative_mass - f.negative_mass).abs() < 1e-9);
        }
    }
}
