//! Look-ahead stage selection.
//!
//! A *stage* runs several pooled tests in parallel on the bench before the
//! next posterior update. The method paper's look-ahead rules pick all `L`
//! pools of a stage up front: the first by the ordinary halving rule, each
//! subsequent one by minimizing the **expected** halving distance over the
//! outcome branches of the pools already committed to the stage. More pools
//! per stage means fewer serial stages (lower turnaround time) at the cost
//! of more total tests — the trade-off of experiment E8.

use std::collections::HashSet;

use sbgt_bayes::{update_dense, Observation};
use sbgt_lattice::{DensePosterior, State};
use sbgt_response::BinaryOutcomeModel;

use crate::halving::Selection;

/// Configuration for a look-ahead stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookaheadConfig {
    /// Number of pools to select for the stage (`L ≥ 1`); `L = 1`
    /// degenerates to the plain halving rule.
    pub width: usize,
    /// Largest admissible pool size.
    pub max_pool_size: usize,
}

impl Default for LookaheadConfig {
    fn default() -> Self {
        LookaheadConfig {
            width: 1,
            max_pool_size: 32,
        }
    }
}

/// Select the pools of one stage by greedy expected-halving search over
/// prefix candidates of `order` (subjects by ascending marginal).
///
/// Returns up to `cfg.width` selections; each [`Selection`]'s
/// `negative_mass`/`distance` are the **expected** values over the outcome
/// branches of the previously committed pools (for the first pool they
/// coincide with the plain halving quantities). Fewer pools are returned
/// when candidates run out or every branch dies (impossible outcomes under
/// a degenerate model).
pub fn select_stage_lookahead<M: BinaryOutcomeModel>(
    posterior: &DensePosterior,
    model: &M,
    order: &[usize],
    cfg: &LookaheadConfig,
) -> Vec<Selection> {
    assert!(cfg.width >= 1, "stage width must be at least 1");
    let cap = cfg.max_pool_size.min(order.len());
    if cap == 0 {
        return Vec::with_capacity(0);
    }

    // Outcome branches: (normalized posterior, probability weight).
    let mut branches: Vec<(DensePosterior, f64)> = vec![(posterior.clone(), 1.0)];
    if branches[0].0.try_normalize().is_none() {
        return Vec::with_capacity(0);
    }

    let mut chosen: Vec<Selection> = Vec::with_capacity(cfg.width);
    let mut used: HashSet<u64> = HashSet::new();

    for _ in 0..cfg.width {
        // Score every prefix candidate against every branch in one
        // all-prefix pass per branch.
        let mut expected_mass = vec![0.0f64; cap + 1];
        let mut expected_dist = vec![0.0f64; cap + 1];
        for (post, w) in &branches {
            let masses = post.prefix_negative_masses(order);
            let total = masses[0];
            if !(total.is_finite() && total > 0.0) {
                continue;
            }
            for k in 1..=cap {
                let m = masses[k] / total;
                expected_mass[k] += w * m;
                expected_dist[k] += w * (m - 0.5).abs();
            }
        }
        let mut best: Option<(usize, State)> = None;
        for k in 1..=cap {
            let pool = State::from_subjects(order[..k].iter().copied());
            if used.contains(&pool.bits()) {
                continue;
            }
            let better = match best {
                None => true,
                Some((bk, _)) => expected_dist[k] + 1e-12 < expected_dist[bk],
            };
            if better {
                best = Some((k, pool));
            }
        }
        let Some((k, pool)) = best else { break };
        used.insert(pool.bits());
        chosen.push(Selection {
            pool,
            negative_mass: expected_mass[k],
            distance: expected_dist[k],
        });

        if chosen.len() == cfg.width {
            break;
        }

        // Branch every posterior on the chosen pool's two outcomes.
        let mut next: Vec<(DensePosterior, f64)> = Vec::with_capacity(branches.len() * 2);
        for (post, w) in branches {
            for outcome in [false, true] {
                let mut branched = post.clone();
                // An impossible branch has zero predictive mass.
                if let Ok(z) = update_dense(&mut branched, model, &Observation::new(pool, outcome))
                {
                    next.push((branched, w * z));
                }
            }
        }
        if next.is_empty() {
            break;
        }
        branches = next;
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halving::select_halving_prefix;
    use sbgt_response::BinaryDilutionModel;

    fn ascending_order(risks: &[f64]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..risks.len()).collect();
        order.sort_by(|&a, &b| risks[a].total_cmp(&risks[b]));
        order
    }

    #[test]
    fn width_one_matches_plain_halving() {
        let risks = [0.02, 0.08, 0.05, 0.15, 0.01];
        let post = DensePosterior::from_risks(&risks);
        let order = ascending_order(&risks);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig {
            width: 1,
            max_pool_size: 5,
        };
        let stage = select_stage_lookahead(&post, &model, &order, &cfg);
        let plain = select_halving_prefix(&post, &order, 5).unwrap();
        assert_eq!(stage.len(), 1);
        assert_eq!(stage[0].pool, plain.pool);
        assert!((stage[0].negative_mass - plain.negative_mass).abs() < 1e-9);
    }

    #[test]
    fn wider_stage_returns_distinct_pools() {
        let risks = [0.03, 0.07, 0.12, 0.2, 0.04, 0.09, 0.15, 0.25];
        let post = DensePosterior::from_risks(&risks);
        let order = ascending_order(&risks);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig {
            width: 3,
            max_pool_size: 8,
        };
        let stage = select_stage_lookahead(&post, &model, &order, &cfg);
        assert_eq!(stage.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for s in &stage {
            assert!(seen.insert(s.pool.bits()), "duplicate pool in stage");
            assert!(s.pool.rank() as usize <= 8);
        }
    }

    #[test]
    fn expected_distance_is_bounded() {
        let risks = [0.1, 0.2, 0.15, 0.05];
        let post = DensePosterior::from_risks(&risks);
        let order = ascending_order(&risks);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig {
            width: 2,
            max_pool_size: 4,
        };
        let stage = select_stage_lookahead(&post, &model, &order, &cfg);
        for s in &stage {
            assert!(s.distance >= -1e-12 && s.distance <= 0.5 + 1e-12);
            assert!(s.negative_mass >= -1e-12 && s.negative_mass <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn empty_order_yields_empty_stage() {
        let post = DensePosterior::from_risks(&[0.1, 0.1]);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig::default();
        assert!(select_stage_lookahead(&post, &model, &[], &cfg).is_empty());
    }

    #[test]
    fn degenerate_posterior_yields_empty_stage() {
        let post = DensePosterior::from_probs(2, vec![0.0; 4]);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig::default();
        assert!(select_stage_lookahead(&post, &model, &[0, 1], &cfg).is_empty());
    }

    #[test]
    #[should_panic(expected = "stage width")]
    fn zero_width_panics() {
        let post = DensePosterior::from_risks(&[0.1]);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = LookaheadConfig {
            width: 0,
            max_pool_size: 1,
        };
        let _ = select_stage_lookahead(&post, &model, &[0], &cfg);
    }
}
