//! Globally optimal Bayesian halving via the zeta transform.
//!
//! The prefix rule ([`crate::halving`]) is near-optimal and `Θ(2^N)`; the
//! naive exhaustive rule is exactly optimal but `Θ(4^N)`. This module gets
//! exact global optimality at `Θ(N · 2^N)`: one subset-sum (zeta)
//! transform prices the pool-negative mass of *every* possible pool at
//! once, after which the argmin over admissible pools is a linear scan.
//!
//! This is the strongest form of the paper's "lattice-model manipulation"
//! operations — the lattice algebra itself (not per-candidate rescans)
//! does the selection work.

use sbgt_lattice::transform::{all_pool_negative_masses, all_pool_negative_masses_par};
use sbgt_lattice::{DensePosterior, State};

use crate::halving::Selection;

/// State count above which [`select_halving_global_par`] runs its zeta
/// levels in parallel.
///
/// Each zeta level is a `Θ(2^N)` in-place butterfly pass; below ~4096
/// states (`N ≲ 12`) the pass is microseconds and rayon's fork/join
/// overhead dominates, while at `2^16` states and beyond the parallel
/// levels win clearly. `2^12` is the measured crossover neighborhood on
/// the bench boxes — close enough that either side of it is cheap, so a
/// compile-time constant (rather than a config knob threaded through every
/// caller) keeps the API surface flat.
pub const GLOBAL_PAR_THRESHOLD: usize = 1 << 12;

/// Exact global BHA: the best pool among **all** subsets of `eligible`
/// with `1 <= |pool| <= max_pool_size`, in `Θ(N · 2^N)`.
///
/// Ties break toward smaller pools, then lexicographically (matching the
/// exhaustive rule). Returns `None` for an empty eligible set or a
/// degenerate posterior.
pub fn select_halving_global(
    posterior: &DensePosterior,
    eligible: &[usize],
    max_pool_size: usize,
) -> Option<Selection> {
    select_impl(posterior, eligible, max_pool_size, false)
}

/// Parallel variant of [`select_halving_global`] (parallel zeta levels).
pub fn select_halving_global_par(
    posterior: &DensePosterior,
    eligible: &[usize],
    max_pool_size: usize,
) -> Option<Selection> {
    select_impl(posterior, eligible, max_pool_size, true)
}

fn select_impl(
    posterior: &DensePosterior,
    eligible: &[usize],
    max_pool_size: usize,
    parallel: bool,
) -> Option<Selection> {
    if eligible.is_empty() || max_pool_size == 0 {
        return None;
    }
    let total = posterior.total();
    if !(total.is_finite() && total > 0.0) {
        return None;
    }
    let masses = if parallel {
        all_pool_negative_masses_par(posterior, GLOBAL_PAR_THRESHOLD)
    } else {
        all_pool_negative_masses(posterior)
    };
    let eligible_mask = State::from_subjects(eligible.iter().copied());

    let mut best: Option<Selection> = None;
    // Enumerate subsets of the eligible mask directly (2^|eligible| pools,
    // not 2^N) — the mass lookup is O(1) thanks to the transform.
    let mut sub = eligible_mask.bits();
    loop {
        if sub != 0 {
            let pool = State(sub);
            let r = pool.rank() as usize;
            if r <= max_pool_size {
                let mass = masses[pool.index()] / total;
                let cand = Selection {
                    pool,
                    negative_mass: mass,
                    distance: (mass - 0.5).abs(),
                };
                let better = match &best {
                    None => true,
                    Some(b) => {
                        const EPS: f64 = 1e-12;
                        if cand.distance + EPS < b.distance {
                            true
                        } else if b.distance + EPS < cand.distance {
                            false
                        } else {
                            (cand.pool.rank(), cand.pool.bits()) < (b.pool.rank(), b.pool.bits())
                        }
                    }
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        if sub == 0 {
            break;
        }
        sub = (sub - 1) & eligible_mask.bits();
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateStrategy;
    use crate::halving::{select_halving_exhaustive, select_halving_prefix};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn global_matches_naive_exhaustive() {
        let risks = [0.04, 0.11, 0.02, 0.3, 0.17, 0.08, 0.22];
        let post = DensePosterior::from_risks(&risks);
        let eligible: Vec<usize> = (0..risks.len()).collect();
        for cap in [2usize, 4, 7] {
            let candidates =
                CandidateStrategy::Exhaustive { max_pool_size: cap }.generate(&eligible);
            let naive = select_halving_exhaustive(&post, &candidates).unwrap();
            let fast = select_halving_global(&post, &eligible, cap).unwrap();
            assert_eq!(naive.pool, fast.pool, "cap={cap}");
            assert!(close(naive.negative_mass, fast.negative_mass));
        }
    }

    #[test]
    fn global_never_worse_than_prefix() {
        let risks = [0.02, 0.04, 0.07, 0.11, 0.16, 0.22, 0.3];
        let post = DensePosterior::from_risks(&risks);
        let order: Vec<usize> = (0..risks.len()).collect();
        let prefix = select_halving_prefix(&post, &order, 7).unwrap();
        let global = select_halving_global(&post, &order, 7).unwrap();
        assert!(global.distance <= prefix.distance + 1e-12);
    }

    #[test]
    fn global_respects_eligible_subset() {
        let risks = [0.1, 0.2, 0.3, 0.4, 0.25];
        let post = DensePosterior::from_risks(&risks);
        // Only subjects 1 and 3 are still unclassified.
        let sel = select_halving_global(&post, &[1, 3], 5).unwrap();
        assert!(sel.pool.is_subset_of(State::from_subjects([1, 3])));
        assert!(!sel.pool.is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        let risks = [0.03, 0.12, 0.07, 0.28, 0.19, 0.05, 0.15, 0.09, 0.02];
        let post = DensePosterior::from_risks(&risks);
        let eligible: Vec<usize> = (0..risks.len()).collect();
        let a = select_halving_global(&post, &eligible, 9).unwrap();
        let b = select_halving_global_par(&post, &eligible, 9).unwrap();
        assert_eq!(a.pool, b.pool);
        assert!(close(a.negative_mass, b.negative_mass));
    }

    #[test]
    fn degenerate_cases() {
        let post = DensePosterior::from_risks(&[0.2, 0.3]);
        assert!(select_halving_global(&post, &[], 2).is_none());
        assert!(select_halving_global(&post, &[0, 1], 0).is_none());
        let zero = DensePosterior::from_probs(2, vec![0.0; 4]);
        assert!(select_halving_global(&zero, &[0, 1], 2).is_none());
    }

    #[test]
    fn global_can_beat_prefix_strictly() {
        // The regression case the prefix rule misses: a non-prefix subset
        // lands closer to 1/2 than any prefix.
        let risks = [0.02, 0.04, 0.07, 0.11, 0.16, 0.22, 0.3];
        let post = DensePosterior::from_risks(&risks);
        let order: Vec<usize> = (0..risks.len()).collect();
        let prefix = select_halving_prefix(&post, &order, 7).unwrap();
        let global = select_halving_global(&post, &order, 7).unwrap();
        assert!(
            global.distance < prefix.distance - 1e-6,
            "expected strict improvement: global {global:?} vs prefix {prefix:?}"
        );
    }
}
