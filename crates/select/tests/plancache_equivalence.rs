//! Cached ≡ live, bit for bit — the plan cache's entire correctness
//! contract, pinned by proptest across every session kind.
//!
//! For random priors, truths, widths, and models, a session attached to a
//! plan cache must produce **bit-for-bit** identical pools, posteriors,
//! and final reports to a cache-disabled run:
//!
//! * on the warming pass (every select step is a miss that extends the
//!   tree in place);
//! * on the replay pass (a second session over the warmed tree — select
//!   steps are hits with zero selection work);
//! * on a divergent pass (a different ground truth shares the tree's
//!   prefix, falls off it mid-session, and transparently goes live);
//! * under mid-session LRU eviction (a node budget far smaller than the
//!   tree forces constant churn while the session runs).
//!
//! A second property pins key soundness: two configurations that map to
//! the same quantized [`PlanKey`] must run identical live selections, and
//! any selection-relevant difference must change the key — failures name
//! the differing field via [`PlanKey::diff`].

use proptest::prelude::*;

use sbgt::{SbgtConfig, SbgtSession, ShardedSession, SparseSession, SparseSwitch};
use sbgt_bayes::{ClassificationRule, Prior, SubjectStatus};
use sbgt_engine::{Engine, EngineConfig};
use sbgt_lattice::State;
use sbgt_response::BinaryDilutionModel;
use sbgt_select::{PlanCache, PlanHandle, PlanKey, PlanLineage, RiskQuantizer};

/// Everything bit-level a run produces: committed pools with outcomes,
/// final posterior marginal bits, and the report's statuses/counters.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    history: Vec<(State, bool)>,
    marginal_bits: Vec<u64>,
    statuses: Vec<SubjectStatus>,
    tests: usize,
    stages: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Dense,
    Sharded {
        parts: usize,
    },
    /// Sharded session that switches to the pruned-sparse posterior
    /// mid-run when the support collapses.
    HybridSparse {
        parts: usize,
    },
    Sparse {
        epsilon: f64,
    },
}

/// One generated scenario: a cohort and the session shape it runs under.
#[derive(Debug, Clone)]
struct Scenario {
    risks: Vec<f64>,
    truth_mask: u16,
    stage_width: usize,
    perfect_assay: bool,
    mode: Mode,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let mode = prop_oneof![
        Just(Mode::Dense),
        (2usize..5).prop_map(|parts| Mode::Sharded { parts }),
        (2usize..4).prop_map(|parts| Mode::HybridSparse { parts }),
        Just(Mode::Sparse { epsilon: 1e-9 }),
    ];
    (
        prop::collection::vec(0.01f64..0.25, 4..=8),
        any::<u16>(),
        1usize..=3,
        any::<bool>(),
        mode,
    )
        .prop_map(
            |(risks, truth_mask, stage_width, perfect_assay, mode)| Scenario {
                risks,
                truth_mask,
                stage_width,
                perfect_assay,
                mode,
            },
        )
}

impl Scenario {
    fn truth(&self) -> State {
        let n = self.risks.len();
        State::from_subjects((0..n).filter(|i| self.truth_mask >> i & 1 == 1))
    }

    fn model(&self) -> BinaryDilutionModel {
        if self.perfect_assay {
            BinaryDilutionModel::perfect()
        } else {
            BinaryDilutionModel::pcr_like()
        }
    }

    fn config(&self) -> SbgtConfig {
        let cfg = SbgtConfig::default()
            .serial()
            .with_stage_width(self.stage_width);
        match self.mode {
            Mode::HybridSparse { .. } => cfg.with_sparse_switch(SparseSwitch {
                // Aggressive switch point so the hybrid transition fires
                // within these small sessions.
                max_support_fraction: 0.5,
                prune_epsilon: 1e-12,
            }),
            _ => cfg,
        }
    }

    fn key(&self) -> PlanKey {
        let cfg = self.config();
        let lineage = match self.mode {
            Mode::Dense => PlanLineage::DenseSerial,
            Mode::Sharded { parts } | Mode::HybridSparse { parts } => PlanLineage::Sharded {
                parts: parts as u32,
            },
            Mode::Sparse { epsilon } => PlanLineage::Sparse {
                epsilon_bits: epsilon.to_bits(),
            },
        };
        PlanKey::new(
            &self.risks,
            &self.model(),
            &cfg.rule,
            cfg.stage_width,
            cfg.max_pool_size,
            cfg.sparse_switch
                .map(|s| (s.max_support_fraction, s.prune_epsilon)),
            lineage,
        )
    }

    /// Run this scenario's session to classification, with or without a
    /// plan, against the deterministic truth-oracle lab.
    fn run(&self, engine: &Engine, truth: State, plan: Option<PlanHandle>) -> Trace {
        let prior = Prior::from_risks(&self.risks);
        let model = self.model();
        let cfg = self.config();
        let lab = |pool: State| truth.intersects(pool);
        match self.mode {
            Mode::Dense => {
                let mut s = SbgtSession::new(prior, model, cfg);
                if let Some(p) = plan {
                    s.attach_plan(p);
                }
                let out = s.run_to_classification(lab);
                Trace {
                    history: s.history().to_vec(),
                    marginal_bits: out.marginals.iter().map(|m| m.to_bits()).collect(),
                    statuses: out.classification.statuses.clone(),
                    tests: out.tests,
                    stages: out.stages,
                }
            }
            Mode::Sharded { parts } | Mode::HybridSparse { parts } => {
                let mut s = ShardedSession::new(engine, prior, model, cfg, parts);
                if let Some(p) = plan {
                    s.attach_plan(p);
                }
                let out = s.run_to_classification(engine, lab);
                Trace {
                    history: s.history().to_vec(),
                    marginal_bits: out.marginals.iter().map(|m| m.to_bits()).collect(),
                    statuses: out.classification.statuses.clone(),
                    tests: out.tests,
                    stages: out.stages,
                }
            }
            Mode::Sparse { epsilon } => {
                let mut s =
                    SparseSession::new(prior, model, cfg, epsilon).expect("epsilon in range");
                if let Some(p) = plan {
                    s.attach_plan(p);
                }
                let out = s.run_to_classification(lab);
                Trace {
                    history: s.history().to_vec(),
                    marginal_bits: out.marginals.iter().map(|m| m.to_bits()).collect(),
                    statuses: out.classification.statuses.clone(),
                    tests: out.tests,
                    stages: out.stages,
                }
            }
        }
    }
}

fn engine() -> Engine {
    Engine::new(EngineConfig::default().with_threads(2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: warming, replaying, and diverging off a
    /// shared tree all reproduce the cache-disabled run bit for bit.
    #[test]
    fn cached_runs_are_bit_identical_to_live_runs(sc in scenario(), other_mask in any::<u16>()) {
        let e = engine();
        let truth_a = sc.truth();
        let truth_b = State::from_subjects(
            (0..sc.risks.len()).filter(|i| other_mask >> i & 1 == 1),
        );

        // Cache-disabled references, one per truth.
        let live_a = sc.run(&e, truth_a, None);
        let live_b = sc.run(&e, truth_b, None);

        let cache = PlanCache::new(4096);
        let key = sc.key();

        // Warming pass: every select step misses live and extends.
        let warmed = sc.run(&e, truth_a, Some(cache.handle(key.clone())));
        prop_assert_eq!(&warmed, &live_a, "warming run diverged from live");
        let after_warm = cache.stats();
        prop_assert!(after_warm.extends > 0, "warming must extend the tree");

        // Replay pass: same truth walks the warmed tree end to end.
        let replayed = sc.run(&e, truth_a, Some(cache.handle(key.clone())));
        prop_assert_eq!(&replayed, &live_a, "replay diverged from live");
        let after_replay = cache.stats();
        prop_assert!(
            after_replay.hits > after_warm.hits,
            "replay of an identical trajectory must hit the tree"
        );

        // Divergent pass: a different truth shares the tree's prefix,
        // falls off it where outcomes differ, and goes live from there.
        let diverged = sc.run(&e, truth_b, Some(cache.handle(key)));
        prop_assert_eq!(&diverged, &live_b, "post-divergence rounds must match live");
    }

    /// Mid-session LRU eviction: a node budget of 2 — far below any real
    /// decision tree — forces eviction on every off-path extension. Runs
    /// over the thrashing tree, including a re-run of the first truth
    /// after a second truth's branches evicted its cold subtrees, must
    /// stay bit-identical to live.
    #[test]
    fn mid_session_eviction_never_changes_results(sc in scenario(), other_mask in any::<u16>()) {
        let e = engine();
        let truth_a = sc.truth();
        let truth_b = State::from_subjects(
            (0..sc.risks.len()).filter(|i| other_mask >> i & 1 == 1),
        );
        let live_a = sc.run(&e, truth_a, None);
        let live_b = sc.run(&e, truth_b, None);

        let cache = PlanCache::new(2);
        let key = sc.key();
        let thrashed = sc.run(&e, truth_a, Some(cache.handle(key.clone())));
        prop_assert_eq!(&thrashed, &live_a, "eviction churn changed a result");
        // Truth B's branches force the insert path off A's chain, evicting
        // A's now-cold subtrees mid-session.
        let crossed = sc.run(&e, truth_b, Some(cache.handle(key.clone())));
        prop_assert_eq!(&crossed, &live_b, "cross-truth churn changed a result");
        // A's partially evicted paths re-extend transparently.
        let reused = sc.run(&e, truth_a, Some(cache.handle(key)));
        prop_assert_eq!(&reused, &live_a, "reuse after eviction changed a result");
    }

    /// Key soundness under quantization collisions: risk vectors that
    /// snap to the same buckets produce equal keys and identical live
    /// selections, while any selection-relevant perturbation must change
    /// the key — reported loudly via the differing field.
    #[test]
    fn quantization_collisions_are_sound(
        risks in prop::collection::vec(0.01f64..0.25, 4..=8),
        fracs in prop::collection::vec(0.05f64..0.95, 8),
        buckets in 4u32..64,
        truth_mask in any::<u16>(),
        stage_width in 1usize..=3,
    ) {
        let q = RiskQuantizer::new(buckets);
        // A second cohort whose raw risks differ but live in the same
        // quantization cells: same cell index, different intra-cell
        // offset.
        let collided: Vec<f64> = risks
            .iter()
            .zip(&fracs)
            .map(|(&r, &f)| {
                let cell = (r * f64::from(buckets)).floor();
                (cell + f) / f64::from(buckets)
            })
            .collect();
        let snapped_a = q.snap_all(&risks);
        let snapped_b = q.snap_all(&collided);
        prop_assert_eq!(&snapped_a, &snapped_b, "same cells must snap identically");

        let model = BinaryDilutionModel::pcr_like();
        let rule = ClassificationRule::symmetric(0.99);
        let mk_key = |risks: &[f64], width: usize, cap: usize| {
            PlanKey::new(risks, &model, &rule, width, cap, None, PlanLineage::DenseSerial)
        };
        let key_a = mk_key(&snapped_a, stage_width, 16);
        let key_b = mk_key(&snapped_b, stage_width, 16);
        prop_assert!(
            key_a == key_b,
            "colliding configs split on field {:?}",
            key_a.diff(&key_b)
        );

        // Equal keys ⇒ identical live selection trajectories (both
        // sessions run on the snapped risks, per the service contract of
        // quantize-before-prior).
        let e = engine();
        let n = snapped_a.len();
        let truth = State::from_subjects((0..n).filter(|i| truth_mask >> i & 1 == 1));
        let sc = |risks: &[f64]| Scenario {
            risks: risks.to_vec(),
            truth_mask,
            stage_width,
            perfect_assay: false,
            mode: Mode::Dense,
        };
        let trace_a = sc(&snapped_a).run(&e, truth, None);
        let trace_b = sc(&snapped_b).run(&e, truth, None);
        prop_assert_eq!(trace_a, trace_b, "equal keys must select identically");

        // Selection-relevant perturbations each flip the key, and diff()
        // names the culprit field.
        for (expect, other) in [
            ("stage_width", mk_key(&snapped_a, stage_width + 1, 16)),
            ("max_pool_size", mk_key(&snapped_a, stage_width, 15)),
            (
                "pos_threshold_bits",
                PlanKey::new(
                    &snapped_a,
                    &model,
                    &ClassificationRule::symmetric(0.9975),
                    stage_width,
                    16,
                    None,
                    PlanLineage::DenseSerial,
                ),
            ),
            (
                "lineage",
                PlanKey::new(
                    &snapped_a,
                    &model,
                    &rule,
                    stage_width,
                    16,
                    None,
                    PlanLineage::Sharded { parts: 4 },
                ),
            ),
            (
                "model_fp",
                PlanKey::new(
                    &snapped_a,
                    &BinaryDilutionModel::perfect(),
                    &rule,
                    stage_width,
                    16,
                    None,
                    PlanLineage::DenseSerial,
                ),
            ),
        ] {
            prop_assert_eq!(
                key_a.diff(&other),
                Some(expect),
                "perturbing {} must change exactly that key field",
                expect
            );
        }
    }
}

/// Deterministic spot check that the tiny-budget churn in the proptest
/// above really does evict (the budget protects the active insert path,
/// so a purely linear tree never shrinks — cross-truth branching must).
#[test]
fn cross_truth_churn_actually_evicts() {
    let sc = Scenario {
        risks: vec![0.05, 0.11, 0.07, 0.03, 0.09, 0.13, 0.04, 0.08],
        truth_mask: 0b0110_1001,
        stage_width: 2,
        perfect_assay: true,
        mode: Mode::Dense,
    };
    let e = engine();
    let cache = PlanCache::new(2);
    let key = sc.key();
    sc.run(&e, sc.truth(), Some(cache.handle(key.clone())));
    for mask in [0u16, 0b1111_1111, 0b0000_0110, 0b1001_0000] {
        let truth = State::from_subjects((0..sc.risks.len()).filter(|i| mask >> i & 1 == 1));
        let cached = sc.run(&e, truth, Some(cache.handle(key.clone())));
        let live = sc.run(&e, truth, None);
        assert_eq!(cached, live, "churn changed a result for mask {mask:#b}");
    }
    let stats = cache.stats();
    assert!(
        stats.evictions > 0,
        "four divergent truths against a 2-node budget must evict ({stats:?})"
    );
    assert!(stats.hits > 0 && stats.extends > 0);
}

/// Deterministic (non-proptest) spot check that a cache shared across
/// *session kinds* never crosses trees: the same cohort run dense and
/// sharded gets distinct keys (lineage), so neither replays the other's
/// summation order.
#[test]
fn session_kinds_never_share_a_tree() {
    let risks = vec![0.03, 0.07, 0.02, 0.09, 0.05, 0.04];
    let sc_dense = Scenario {
        risks: risks.clone(),
        truth_mask: 0b10010,
        stage_width: 2,
        perfect_assay: true,
        mode: Mode::Dense,
    };
    let sc_sharded = Scenario {
        mode: Mode::Sharded { parts: 3 },
        ..sc_dense.clone()
    };
    assert_eq!(
        sc_dense.key().diff(&sc_sharded.key()),
        Some("lineage"),
        "dense and sharded sessions must key separate trees"
    );

    let e = engine();
    let cache = PlanCache::new(1024);
    let truth = sc_dense.truth();
    let live_dense = sc_dense.run(&e, truth, None);
    let live_sharded = sc_sharded.run(&e, truth, None);
    let cached_dense = sc_dense.run(&e, truth, Some(cache.handle(sc_dense.key())));
    let cached_sharded = sc_sharded.run(&e, truth, Some(cache.handle(sc_sharded.key())));
    assert_eq!(cached_dense, live_dense);
    assert_eq!(cached_sharded, live_sharded);
    assert_eq!(cache.tree_count(), 2, "one tree per lineage");
}
