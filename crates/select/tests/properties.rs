//! Property tests for the selection rules: optimality relations between
//! prefix, global, and exhaustive halving; look-ahead sanity; information
//! gain bounds.

use proptest::prelude::*;

use sbgt_lattice::kernels::ParConfig;
use sbgt_lattice::{DensePosterior, State};
use sbgt_response::{BinaryDilutionModel, Dilution};
use sbgt_select::{
    select_halving_exhaustive, select_halving_global, select_halving_prefix,
    select_information_gain, select_stage_lookahead, select_stage_lookahead_fused,
    select_stage_lookahead_par, CandidateStrategy, LookaheadConfig,
};

fn risks_strategy(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..0.45, 2..=max_n)
}

fn ascending(risks: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..risks.len()).collect();
    order.sort_by(|&a, &b| risks[a].total_cmp(&risks[b]));
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The optimality chain: exhaustive ≡ global ≤ prefix, all with
    /// distances in [0, 1/2] and masses in [0, 1].
    #[test]
    fn optimality_chain(risks in risks_strategy(8), cap in 1usize..9) {
        let post = DensePosterior::from_risks(&risks);
        let order = ascending(&risks);
        let cap = cap.min(risks.len());

        let prefix = select_halving_prefix(&post, &order, cap).unwrap();
        let global = select_halving_global(&post, &order, cap).unwrap();
        let candidates = CandidateStrategy::Exhaustive { max_pool_size: cap }.generate(&order);
        let exhaustive = select_halving_exhaustive(&post, &candidates).unwrap();

        prop_assert_eq!(global.pool, exhaustive.pool);
        prop_assert!(global.distance <= prefix.distance + 1e-12);
        for s in [&prefix, &global, &exhaustive] {
            prop_assert!(s.distance >= -1e-12 && s.distance <= 0.5 + 1e-12);
            prop_assert!(s.negative_mass >= -1e-12 && s.negative_mass <= 1.0 + 1e-12);
            prop_assert!(s.pool.rank() as usize <= cap);
            prop_assert!(!s.pool.is_empty());
        }
    }

    /// Selected pools only ever contain eligible subjects.
    #[test]
    fn selection_respects_eligibility(
        risks in risks_strategy(8),
        eligible_mask in 1u64..255,
    ) {
        let n = risks.len();
        let mask = eligible_mask & State::full(n).bits();
        prop_assume!(mask != 0);
        let eligible: Vec<usize> = State(mask).subjects().collect();
        let post = DensePosterior::from_risks(&risks);
        if let Some(sel) = select_halving_global(&post, &eligible, n) {
            prop_assert!(sel.pool.is_subset_of(State(mask)));
        }
        if let Some(sel) = select_halving_prefix(&post, &eligible, n) {
            prop_assert!(sel.pool.is_subset_of(State(mask)));
        }
    }

    /// Look-ahead stages produce distinct, admissible pools with bounded
    /// expected quantities.
    #[test]
    fn lookahead_stage_well_formed(
        risks in risks_strategy(7),
        width in 1usize..4,
        cap in 1usize..8,
    ) {
        let post = DensePosterior::from_risks(&risks);
        let model = BinaryDilutionModel::pcr_like();
        let order = ascending(&risks);
        let cfg = LookaheadConfig {
            width,
            max_pool_size: cap,
        };
        let stage = select_stage_lookahead(&post, &model, &order, &cfg).unwrap();
        prop_assert!(stage.len() <= width);
        let mut seen = std::collections::HashSet::new();
        for s in &stage {
            prop_assert!(seen.insert(s.pool.bits()), "duplicate pool");
            prop_assert!(s.pool.rank() as usize <= cap);
            prop_assert!(s.distance >= -1e-12 && s.distance <= 0.5 + 1e-12);
        }
    }

    /// The branch-fused look-ahead paths select bit-for-bit identical pools
    /// to the clone-per-branch baseline across random priors, dilution
    /// strengths, widths, and pool caps — the contract that lets the fast
    /// paths replace the baseline everywhere.
    #[test]
    fn lookahead_fused_matches_baseline(
        risks in risks_strategy(7),
        width in 1usize..5,
        cap in 1usize..8,
        dilution_alpha in 1.0f64..8.0,
    ) {
        let post = DensePosterior::from_risks(&risks);
        let model = BinaryDilutionModel::new(
            0.95,
            0.99,
            Dilution::Exponential { alpha: dilution_alpha },
        );
        let order = ascending(&risks);
        let cfg = LookaheadConfig {
            width,
            max_pool_size: cap,
        };
        let base = select_stage_lookahead(&post, &model, &order, &cfg).unwrap();
        let fused = select_stage_lookahead_fused(&post, &model, &order, &cfg).unwrap();
        let par = select_stage_lookahead_par(
            &post,
            &model,
            &order,
            &cfg,
            ParConfig { chunk_len: 32, threshold: 0 },
        ).unwrap();

        prop_assert_eq!(base.len(), fused.len());
        prop_assert_eq!(fused.len(), par.len());
        for (b, f) in base.iter().zip(&fused) {
            prop_assert_eq!(b.pool, f.pool);
            prop_assert!((b.negative_mass - f.negative_mass).abs() < 1e-9);
            prop_assert!((b.distance - f.distance).abs() < 1e-9);
        }
        for (f, p) in fused.iter().zip(&par) {
            prop_assert_eq!(f.pool, p.pool);
            prop_assert!((f.negative_mass - p.negative_mass).abs() < 1e-12);
            prop_assert!((f.distance - p.distance).abs() < 1e-12);
        }
    }

    /// Information gain is non-negative, bounded by ln 2, and weakly
    /// improves with shortlist width.
    #[test]
    fn information_gain_bounds(
        risks in risks_strategy(7),
        dilution_alpha in 1.0f64..8.0,
    ) {
        let post = DensePosterior::from_risks(&risks);
        let model = BinaryDilutionModel::new(
            0.95,
            0.99,
            Dilution::Exponential { alpha: dilution_alpha },
        );
        let order = ascending(&risks);
        let n = risks.len();
        let narrow = select_information_gain(&post, &model, &order, n, 1).unwrap();
        let wide = select_information_gain(&post, &model, &order, n, n).unwrap();
        for sel in [&narrow, &wide] {
            prop_assert!(sel.information_gain >= -1e-9);
            prop_assert!(sel.information_gain <= 2f64.ln() + 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&sel.predictive_positive));
        }
        prop_assert!(wide.information_gain >= narrow.information_gain - 1e-12);
    }

    /// Candidate generators only emit admissible pools, and the prefix
    /// family is nested.
    #[test]
    fn candidate_generators_admissible(
        eligible in prop::collection::vec(0usize..12, 1..8),
        cap in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut eligible = eligible;
        eligible.sort_unstable();
        eligible.dedup();
        let mask = State::from_subjects(eligible.iter().copied());
        for strategy in [
            CandidateStrategy::Exhaustive { max_pool_size: cap },
            CandidateStrategy::SortedPrefix { max_pool_size: cap },
            CandidateStrategy::Random { count: 10, max_pool_size: cap, seed },
        ] {
            let pools = strategy.generate(&eligible);
            for p in &pools {
                prop_assert!(!p.is_empty());
                prop_assert!(p.rank() as usize <= cap);
                prop_assert!(p.is_subset_of(mask));
            }
        }
        // Prefix nesting.
        let prefixes = CandidateStrategy::SortedPrefix { max_pool_size: cap }.generate(&eligible);
        for w in prefixes.windows(2) {
            prop_assert!(w[0].is_subset_of(w[1]));
        }
    }
}
