//! Named workload scenarios — the configuration table (E1).
//!
//! Each scenario bundles a cohort risk profile, an assay model, and episode
//! parameters. The benchmark harness sweeps these; the presets span the
//! regimes the SBGT evaluation motivates (routine low-prevalence screening,
//! outbreak investigation, mixed-risk clinic intake, strong dilution).

use serde::{Deserialize, Serialize};

use sbgt_response::{BinaryDilutionModel, Dilution};

use crate::population::RiskProfile;
use crate::runner::{EpisodeConfig, SelectionMethod};

/// A named, fully specified workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Short identifier used in reports.
    pub name: String,
    /// Cohort risk structure.
    pub profile: RiskProfile,
    /// Assay model.
    pub model: BinaryDilutionModel,
    /// Episode parameters.
    pub episode: EpisodeConfig,
}

impl Scenario {
    /// Routine screening: low flat prevalence, PCR-like assay.
    pub fn screening(n: usize, prevalence: f64, seed: u64) -> Scenario {
        Scenario {
            name: format!("screening-n{n}-p{prevalence}"),
            profile: RiskProfile::Flat { n, p: prevalence },
            model: BinaryDilutionModel::pcr_like(),
            episode: EpisodeConfig::standard(seed),
        }
    }

    /// Outbreak investigation: elevated prevalence, smaller pools.
    pub fn outbreak(n: usize, seed: u64) -> Scenario {
        Scenario {
            name: format!("outbreak-n{n}"),
            profile: RiskProfile::Flat { n, p: 0.15 },
            model: BinaryDilutionModel::pcr_like(),
            episode: EpisodeConfig {
                max_pool_size: 6,
                ..EpisodeConfig::standard(seed)
            },
        }
    }

    /// Clinic intake: a low-risk majority plus a high-risk contact group.
    pub fn mixed_risk(n_low: usize, n_high: usize, seed: u64) -> Scenario {
        Scenario {
            name: format!("mixed-{n_low}low-{n_high}high"),
            profile: RiskProfile::Groups(vec![(n_low, 0.01), (n_high, 0.25)]),
            model: BinaryDilutionModel::pcr_like(),
            episode: EpisodeConfig::standard(seed),
        }
    }

    /// Strong linear dilution: stresses the dilution-aware selection.
    pub fn strong_dilution(n: usize, seed: u64) -> Scenario {
        Scenario {
            name: format!("dilution-n{n}"),
            profile: RiskProfile::Flat { n, p: 0.05 },
            model: BinaryDilutionModel::new(0.95, 0.99, Dilution::Linear),
            episode: EpisodeConfig {
                max_pool_size: 8,
                ..EpisodeConfig::standard(seed)
            },
        }
    }

    /// Look-ahead turnaround optimization: several pools per stage.
    pub fn lookahead(n: usize, width: usize, seed: u64) -> Scenario {
        Scenario {
            name: format!("lookahead-n{n}-w{width}"),
            profile: RiskProfile::Flat { n, p: 0.05 },
            model: BinaryDilutionModel::pcr_like(),
            episode: EpisodeConfig {
                selection: SelectionMethod::Lookahead { width },
                ..EpisodeConfig::standard(seed)
            },
        }
    }

    /// The default scenario table (E1) at cohort size `n`.
    pub fn standard_table(n: usize, seed: u64) -> Vec<Scenario> {
        vec![
            Scenario::screening(n, 0.005, seed),
            Scenario::screening(n, 0.01, seed),
            Scenario::screening(n, 0.02, seed),
            Scenario::screening(n, 0.05, seed),
            Scenario::screening(n, 0.10, seed),
            Scenario::outbreak(n, seed),
            Scenario::mixed_risk(n.saturating_sub(n / 4).max(1), n / 4, seed),
            Scenario::strong_dilution(n, seed),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_well_formed() {
        for s in Scenario::standard_table(16, 1) {
            assert!(!s.name.is_empty());
            assert!(s.profile.n_subjects() > 0, "{}", s.name);
            assert!(s.episode.max_pool_size >= 1);
        }
    }

    #[test]
    fn mixed_risk_counts() {
        let s = Scenario::mixed_risk(12, 4, 0);
        assert_eq!(s.profile.n_subjects(), 16);
    }

    #[test]
    fn lookahead_scenario_selects_lookahead() {
        let s = Scenario::lookahead(10, 3, 0);
        assert_eq!(s.episode.selection, SelectionMethod::Lookahead { width: 3 });
    }
}
