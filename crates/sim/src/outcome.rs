//! The virtual lab: sample assay outcomes against the ground truth.

use rand::Rng;

use sbgt_lattice::State;
use sbgt_response::ResponseModel;

use crate::population::Population;

/// Run one pooled test in the virtual lab: count the true positives the
/// pool contains and draw an outcome from the response model.
///
/// # Panics
/// Panics on an empty pool (no sample to run).
pub fn run_test<M: ResponseModel, R: Rng + ?Sized>(
    population: &Population,
    model: &M,
    pool: State,
    rng: &mut R,
) -> M::Outcome {
    assert!(!pool.is_empty(), "cannot run a test on an empty pool");
    let k = population.positives_in(pool);
    model.sample(rng, k, pool.rank())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::RiskProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sbgt_response::BinaryDilutionModel;

    #[test]
    fn perfect_test_reflects_truth() {
        let profile = RiskProfile::Flat { n: 4, p: 0.5 };
        let pop = Population::with_truth(&profile, State::from_subjects([2]));
        let model = BinaryDilutionModel::perfect();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(run_test(
            &pop,
            &model,
            State::from_subjects([1, 2]),
            &mut rng
        ));
        assert!(!run_test(
            &pop,
            &model,
            State::from_subjects([0, 1]),
            &mut rng
        ));
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn empty_pool_rejected() {
        let profile = RiskProfile::Flat { n: 2, p: 0.5 };
        let pop = Population::with_truth(&profile, State::EMPTY);
        let model = BinaryDilutionModel::perfect();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = run_test(&pop, &model, State::EMPTY, &mut rng);
    }
}
