//! Ground-truth populations.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use sbgt_bayes::Prior;
use sbgt_lattice::State;

/// Risk structure of a cohort, used both to build the prior and to draw the
/// ground truth (so the prior is well-specified — the regime the method
/// papers analyze; misspecification experiments perturb the prior
/// afterwards).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RiskProfile {
    /// Every subject at prevalence `p`.
    Flat {
        /// Cohort size.
        n: usize,
        /// Prevalence in `(0, 1)`.
        p: f64,
    },
    /// Consecutive risk blocks `(count, risk)`.
    Groups(Vec<(usize, f64)>),
}

impl RiskProfile {
    /// The implied per-subject risks.
    pub fn risks(&self) -> Vec<f64> {
        match self {
            RiskProfile::Flat { n, p } => vec![*p; *n],
            RiskProfile::Groups(groups) => {
                let mut risks = Vec::new();
                for &(count, p) in groups {
                    risks.extend(std::iter::repeat_n(p, count));
                }
                risks
            }
        }
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        match self {
            RiskProfile::Flat { n, .. } => *n,
            RiskProfile::Groups(groups) => groups.iter().map(|(c, _)| c).sum(),
        }
    }

    /// The matching (well-specified) prior.
    pub fn prior(&self) -> Prior {
        Prior::from_risks(&self.risks())
    }
}

/// A cohort with known ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    risks: Vec<f64>,
    truth: State,
}

impl Population {
    /// Draw a ground truth: subject `i` is positive with probability
    /// `risks[i]`, independently, from a seeded RNG.
    pub fn sample(profile: &RiskProfile, seed: u64) -> Self {
        let risks = profile.risks();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut truth = State::EMPTY;
        for (i, &p) in risks.iter().enumerate() {
            if rng.random::<f64>() < p {
                truth = truth.with(i);
            }
        }
        Population { risks, truth }
    }

    /// A cohort with a fixed, known truth (for deterministic tests).
    pub fn with_truth(profile: &RiskProfile, truth: State) -> Self {
        let risks = profile.risks();
        assert!(
            truth.is_subset_of(State::full(risks.len())),
            "truth mentions subjects outside the cohort"
        );
        Population { risks, truth }
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        self.risks.len()
    }

    /// Per-subject risks used for the prior.
    pub fn risks(&self) -> &[f64] {
        &self.risks
    }

    /// The true infection state.
    pub fn truth(&self) -> State {
        self.truth
    }

    /// Number of truly positive subjects.
    pub fn n_positive(&self) -> usize {
        self.truth.rank() as usize
    }

    /// The well-specified prior for this cohort.
    pub fn prior(&self) -> Prior {
        Prior::from_risks(&self.risks)
    }

    /// Number of true positives a given pool contains.
    pub fn positives_in(&self, pool: State) -> u32 {
        self.truth.positives_in(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_profile() {
        let p = RiskProfile::Flat { n: 6, p: 0.1 };
        assert_eq!(p.n_subjects(), 6);
        assert_eq!(p.risks(), vec![0.1; 6]);
        assert_eq!(p.prior().n_subjects(), 6);
    }

    #[test]
    fn group_profile_layout() {
        let p = RiskProfile::Groups(vec![(2, 0.01), (3, 0.2)]);
        assert_eq!(p.n_subjects(), 5);
        assert_eq!(p.risks(), vec![0.01, 0.01, 0.2, 0.2, 0.2]);
    }

    #[test]
    fn sampling_is_reproducible() {
        let profile = RiskProfile::Flat { n: 20, p: 0.3 };
        let a = Population::sample(&profile, 7);
        let b = Population::sample(&profile, 7);
        assert_eq!(a.truth(), b.truth());
        let c = Population::sample(&profile, 8);
        // Different seeds almost surely differ for n=20, p=0.3.
        assert_ne!(a.truth(), c.truth());
    }

    #[test]
    fn sampling_matches_prevalence_statistically() {
        let profile = RiskProfile::Flat { n: 30, p: 0.2 };
        let mut total = 0usize;
        let reps = 400;
        for seed in 0..reps {
            total += Population::sample(&profile, seed).n_positive();
        }
        let rate = total as f64 / (reps as usize * 30) as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn fixed_truth_and_pool_counts() {
        let profile = RiskProfile::Flat { n: 5, p: 0.1 };
        let pop = Population::with_truth(&profile, State::from_subjects([1, 4]));
        assert_eq!(pop.n_positive(), 2);
        assert_eq!(pop.positives_in(State::from_subjects([0, 1])), 1);
        assert_eq!(pop.positives_in(State::from_subjects([2, 3])), 0);
    }

    #[test]
    #[should_panic(expected = "outside the cohort")]
    fn fixed_truth_validated() {
        let profile = RiskProfile::Flat { n: 3, p: 0.1 };
        let _ = Population::with_truth(&profile, State::from_subjects([5]));
    }
}
