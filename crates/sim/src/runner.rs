//! Sequential testing episodes and comparator procedures.
//!
//! [`run_episode`] drives the full Bayesian loop the SBGT framework
//! executes: classify → select pool(s) → assay → posterior update, until
//! every subject is classified (or a stage cap is hit). The comparators —
//! [`run_individual`] (one assay per subject) and [`run_dorfman`] (the
//! classical two-stage pooling of Dorfman 1943) — anchor the efficiency
//! experiments (E7).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sbgt_bayes::{
    classify_marginals, update_dense, ClassificationRule, CohortClassification, Observation,
    SubjectStatus,
};
use sbgt_lattice::{DensePosterior, State};
use sbgt_response::BinaryOutcomeModel;
use sbgt_select::{
    select_halving_exhaustive, select_halving_global, select_halving_prefix,
    select_information_gain, select_stage_lookahead_fused, CandidateStrategy, LookaheadConfig,
};

use crate::metrics::{ConfusionMatrix, EpisodeStats};
use crate::outcome::run_test;
use crate::population::Population;

/// Which selection rule drives the episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionMethod {
    /// Sorted-prefix Bayesian halving (the SBGT fast path).
    HalvingPrefix,
    /// Exhaustive Bayesian halving over all admissible pools of the
    /// undetermined subjects (ground truth; exponential — small cohorts
    /// only).
    HalvingExhaustive,
    /// Globally optimal halving via the zeta transform: exact like the
    /// exhaustive rule but `O(N · 2^N)` (see `sbgt_select::global`).
    HalvingGlobal,
    /// Look-ahead stage selection with `width` pools per stage.
    Lookahead {
        /// Pools per stage.
        width: usize,
    },
    /// Information-gain refinement over the `shortlist` best halving
    /// prefixes (see `sbgt_select::information`).
    InformationGain {
        /// Number of halving candidates to score exactly.
        shortlist: usize,
    },
}

/// Configuration of one sequential episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeConfig {
    /// Classification thresholds (the stopping rule).
    pub rule: ClassificationRule,
    /// Largest pool the assay supports.
    pub max_pool_size: usize,
    /// Selection rule.
    pub selection: SelectionMethod,
    /// Hard cap on stages (guards against non-termination when the assay
    /// is so noisy the posterior cannot reach the thresholds).
    pub max_stages: usize,
    /// RNG seed for the virtual lab.
    pub seed: u64,
}

impl EpisodeConfig {
    /// A sensible default: symmetric 99% thresholds, pools up to 16,
    /// prefix halving, generous stage cap.
    pub fn standard(seed: u64) -> Self {
        EpisodeConfig {
            rule: ClassificationRule::symmetric(0.99),
            max_pool_size: 16,
            selection: SelectionMethod::HalvingPrefix,
            max_stages: 200,
            seed,
        }
    }
}

/// Outcome of an episode.
#[derive(Debug, Clone)]
pub struct EpisodeResult {
    /// Cost metrics.
    pub stats: EpisodeStats,
    /// Confusion against the ground truth.
    pub confusion: ConfusionMatrix,
    /// Final classification.
    pub classification: CohortClassification,
    /// Final posterior marginals.
    pub marginals: Vec<f64>,
    /// Every `(pool, outcome)` in execution order.
    pub history: Vec<(State, bool)>,
}

/// Run one sequential Bayesian group-testing episode with the
/// well-specified prior (subject risks equal the generating risks).
///
/// ```
/// use sbgt_sim::{run_episode, Population, RiskProfile, EpisodeConfig};
/// use sbgt_response::BinaryDilutionModel;
/// let profile = RiskProfile::Flat { n: 8, p: 0.05 };
/// let pop = Population::sample(&profile, 42);
/// let model = BinaryDilutionModel::perfect();
/// let result = run_episode(&pop, &model, &EpisodeConfig::standard(42));
/// assert!(result.classification.is_terminal());
/// assert_eq!(result.confusion.accuracy(), 1.0); // perfect assay
/// ```
pub fn run_episode<M: BinaryOutcomeModel>(
    population: &Population,
    model: &M,
    cfg: &EpisodeConfig,
) -> EpisodeResult {
    run_episode_with_prior(population, &population.prior(), model, cfg)
}

/// Run one episode under an arbitrary (possibly misspecified) prior — the
/// robustness experiments (E11) perturb the assumed risks away from the
/// generating ones.
///
/// # Panics
/// Panics when the prior's cohort size differs from the population's.
pub fn run_episode_with_prior<M: BinaryOutcomeModel>(
    population: &Population,
    prior: &sbgt_bayes::Prior,
    model: &M,
    cfg: &EpisodeConfig,
) -> EpisodeResult {
    assert_eq!(
        prior.n_subjects(),
        population.n_subjects(),
        "prior and population cohort sizes differ"
    );
    let n = population.n_subjects();
    let mut posterior = prior.to_dense();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut history: Vec<(State, bool)> = Vec::new();
    let mut stages = 0usize;

    let (mut marginals, mut classification) = classify_now(&posterior, cfg.rule);
    while !classification.is_terminal() && stages < cfg.max_stages {
        let mut eligible = classification.undetermined();
        eligible.sort_by(|&a, &b| marginals[a].total_cmp(&marginals[b]).then(a.cmp(&b)));

        let pools = select_stage(&posterior, model, &eligible, cfg);
        if pools.is_empty() {
            break;
        }
        stages += 1;
        let mut progressed = false;
        for pool in pools {
            let outcome = run_test(population, model, pool, &mut rng);
            history.push((pool, outcome));
            match update_dense(&mut posterior, model, &Observation::new(pool, outcome)) {
                Ok(_) => progressed = true,
                // Impossible observation: only reachable with degenerate
                // (0/1-likelihood) models after contradictory outcomes.
                // Leave the posterior as-is and stop the stage.
                Err(_) => break,
            }
        }
        if !progressed {
            break;
        }
        (marginals, classification) = classify_now(&posterior, cfg.rule);
    }

    EpisodeResult {
        stats: EpisodeStats {
            tests: history.len(),
            stages,
            subjects: n,
        },
        confusion: ConfusionMatrix::from_statuses(&classification.statuses, population.truth()),
        classification,
        marginals,
        history,
    }
}

fn classify_now(
    posterior: &DensePosterior,
    rule: ClassificationRule,
) -> (Vec<f64>, CohortClassification) {
    let marginals = posterior.marginals();
    let classification = classify_marginals(&marginals, rule);
    (marginals, classification)
}

fn select_stage<M: BinaryOutcomeModel>(
    posterior: &DensePosterior,
    model: &M,
    eligible: &[usize],
    cfg: &EpisodeConfig,
) -> Vec<State> {
    match cfg.selection {
        SelectionMethod::HalvingPrefix => {
            select_halving_prefix(posterior, eligible, cfg.max_pool_size)
                .map(|s| vec![s.pool])
                .unwrap_or_default()
        }
        SelectionMethod::HalvingExhaustive => {
            let candidates = CandidateStrategy::Exhaustive {
                max_pool_size: cfg.max_pool_size,
            }
            .generate(eligible);
            select_halving_exhaustive(posterior, &candidates)
                .map(|s| vec![s.pool])
                .unwrap_or_default()
        }
        SelectionMethod::HalvingGlobal => {
            select_halving_global(posterior, eligible, cfg.max_pool_size)
                .map(|s| vec![s.pool])
                .unwrap_or_default()
        }
        SelectionMethod::Lookahead { width } => {
            let la = LookaheadConfig {
                width,
                max_pool_size: cfg.max_pool_size,
            };
            // Branch-fused fast path: identical pools to the
            // clone-per-branch rule without materializing branches.
            select_stage_lookahead_fused(posterior, model, eligible, &la)
                .expect("episode config guarantees a positive width")
                .into_iter()
                .map(|s| s.pool)
                .collect()
        }
        SelectionMethod::InformationGain { shortlist } => {
            select_information_gain(posterior, model, eligible, cfg.max_pool_size, shortlist)
                .map(|s| vec![s.pool])
                .unwrap_or_default()
        }
    }
}

/// Comparator: one assay per subject, classification by the raw outcome.
/// Always `n` tests in one stage; accuracy limited by the assay's neat
/// sensitivity/specificity.
pub fn run_individual<M: BinaryOutcomeModel>(
    population: &Population,
    model: &M,
    seed: u64,
) -> EpisodeResult {
    let n = population.n_subjects();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = Vec::with_capacity(n);
    let mut statuses = Vec::with_capacity(n);
    let mut marginals = Vec::with_capacity(n);
    for i in 0..n {
        let pool = State::EMPTY.with(i);
        let outcome = run_test(population, model, pool, &mut rng);
        history.push((pool, outcome));
        statuses.push(if outcome {
            SubjectStatus::Positive
        } else {
            SubjectStatus::Negative
        });
        marginals.push(if outcome { 1.0 } else { 0.0 });
    }
    let classification = CohortClassification { statuses };
    EpisodeResult {
        stats: EpisodeStats {
            tests: n,
            stages: 1,
            subjects: n,
        },
        confusion: ConfusionMatrix::from_statuses(&classification.statuses, population.truth()),
        classification,
        marginals,
        history,
    }
}

/// Comparator: Dorfman two-stage pooling with pools of size `group_size`.
/// Stage 1 tests disjoint pools; members of positive pools are retested
/// individually in stage 2 and classified by their individual outcome;
/// members of negative pools are classified negative.
pub fn run_dorfman<M: BinaryOutcomeModel>(
    population: &Population,
    model: &M,
    group_size: usize,
    seed: u64,
) -> EpisodeResult {
    assert!(group_size >= 1, "group size must be at least 1");
    let n = population.n_subjects();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = Vec::new();
    let mut statuses = vec![SubjectStatus::Undetermined; n];
    let mut marginals = vec![0.0f64; n];
    let mut any_retest = false;

    for start in (0..n).step_by(group_size) {
        let members: Vec<usize> = (start..(start + group_size).min(n)).collect();
        let pool = State::from_subjects(members.iter().copied());
        let outcome = run_test(population, model, pool, &mut rng);
        history.push((pool, outcome));
        if outcome {
            any_retest = true;
            for &i in &members {
                let single = State::EMPTY.with(i);
                let o = run_test(population, model, single, &mut rng);
                history.push((single, o));
                statuses[i] = if o {
                    SubjectStatus::Positive
                } else {
                    SubjectStatus::Negative
                };
                marginals[i] = if o { 1.0 } else { 0.0 };
            }
        } else {
            for &i in &members {
                statuses[i] = SubjectStatus::Negative;
            }
        }
    }
    let classification = CohortClassification { statuses };
    EpisodeResult {
        stats: EpisodeStats {
            tests: history.len(),
            stages: if any_retest { 2 } else { 1 },
            subjects: n,
        },
        confusion: ConfusionMatrix::from_statuses(&classification.statuses, population.truth()),
        classification,
        marginals,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::RiskProfile;
    use sbgt_response::{BinaryDilutionModel, Dilution};

    fn low_prev_profile(n: usize) -> RiskProfile {
        RiskProfile::Flat { n, p: 0.05 }
    }

    #[test]
    fn perfect_test_episode_classifies_exactly() {
        let profile = low_prev_profile(10);
        let pop = Population::with_truth(&profile, State::from_subjects([3, 7]));
        let model = BinaryDilutionModel::perfect();
        let cfg = EpisodeConfig::standard(1);
        let r = run_episode(&pop, &model, &cfg);
        assert!(r.classification.is_terminal());
        assert_eq!(r.confusion.tp, 2);
        assert_eq!(r.confusion.tn, 8);
        assert_eq!(r.confusion.fp + r.confusion.fn_, 0);
        assert_eq!(r.stats.tests, r.history.len());
        assert!(r.stats.stages >= 1);
    }

    #[test]
    fn group_testing_beats_individual_at_low_prevalence() {
        let profile = RiskProfile::Flat { n: 12, p: 0.02 };
        let model = BinaryDilutionModel::perfect();
        let mut bayes_tests = 0usize;
        let mut reps = 0usize;
        for seed in 0..10 {
            let pop = Population::sample(&profile, seed);
            let r = run_episode(&pop, &model, &EpisodeConfig::standard(seed));
            assert!(r.classification.is_terminal());
            bayes_tests += r.stats.tests;
            reps += 1;
        }
        let avg = bayes_tests as f64 / reps as f64;
        assert!(avg < 12.0 * 0.6, "avg tests {avg} not < 60% of individual");
    }

    #[test]
    fn all_negative_cohort_resolves_fast_with_perfect_test() {
        let profile = RiskProfile::Flat { n: 8, p: 0.05 };
        let pop = Population::with_truth(&profile, State::EMPTY);
        let model = BinaryDilutionModel::perfect();
        let r = run_episode(&pop, &model, &EpisodeConfig::standard(3));
        assert!(r.classification.is_terminal());
        assert_eq!(r.confusion.tn, 8);
        // A handful of all-negative pools suffice.
        assert!(
            r.stats.tests <= 4,
            "expected few tests, used {}",
            r.stats.tests
        );
    }

    #[test]
    fn exhaustive_and_prefix_agree_on_tiny_cohort_costs() {
        // Not necessarily the identical pools, but both must classify
        // perfectly with a perfect assay.
        let profile = low_prev_profile(6);
        let pop = Population::with_truth(&profile, State::from_subjects([2]));
        let model = BinaryDilutionModel::perfect();
        for selection in [
            SelectionMethod::HalvingPrefix,
            SelectionMethod::HalvingExhaustive,
        ] {
            let cfg = EpisodeConfig {
                selection,
                ..EpisodeConfig::standard(5)
            };
            let r = run_episode(&pop, &model, &cfg);
            assert!(r.classification.is_terminal(), "{selection:?}");
            assert_eq!(r.confusion.accuracy(), 1.0, "{selection:?}");
        }
    }

    #[test]
    fn lookahead_uses_fewer_stages() {
        let profile = RiskProfile::Flat { n: 12, p: 0.08 };
        let model = BinaryDilutionModel::new(0.98, 0.99, Dilution::Exponential { alpha: 4.0 });
        let mut stages_plain = 0usize;
        let mut stages_look = 0usize;
        let mut tests_plain = 0usize;
        let mut tests_look = 0usize;
        for seed in 0..8 {
            let pop = Population::sample(&profile, 100 + seed);
            let plain = run_episode(&pop, &model, &EpisodeConfig::standard(seed));
            let look = run_episode(
                &pop,
                &model,
                &EpisodeConfig {
                    selection: SelectionMethod::Lookahead { width: 3 },
                    ..EpisodeConfig::standard(seed)
                },
            );
            stages_plain += plain.stats.stages;
            stages_look += look.stats.stages;
            tests_plain += plain.stats.tests;
            tests_look += look.stats.tests;
        }
        assert!(
            stages_look < stages_plain,
            "lookahead stages {stages_look} !< plain {stages_plain}"
        );
        assert!(
            tests_look >= tests_plain,
            "lookahead should not use fewer tests ({tests_look} vs {tests_plain})"
        );
    }

    #[test]
    fn noisy_assay_hits_stage_cap_gracefully() {
        // A nearly uninformative assay cannot reach 99% confidence.
        let profile = low_prev_profile(5);
        let pop = Population::sample(&profile, 2);
        let model = BinaryDilutionModel::new(0.55, 0.55, Dilution::None);
        let cfg = EpisodeConfig {
            max_stages: 5,
            ..EpisodeConfig::standard(2)
        };
        let r = run_episode(&pop, &model, &cfg);
        assert_eq!(r.stats.stages, 5);
        assert!(!r.classification.is_terminal());
        assert!(r.confusion.undetermined > 0);
    }

    #[test]
    fn individual_testing_costs_exactly_n() {
        let profile = low_prev_profile(9);
        let pop = Population::sample(&profile, 4);
        let model = BinaryDilutionModel::perfect();
        let r = run_individual(&pop, &model, 4);
        assert_eq!(r.stats.tests, 9);
        assert_eq!(r.stats.stages, 1);
        assert_eq!(r.confusion.accuracy(), 1.0);
    }

    #[test]
    fn dorfman_structure() {
        let profile = low_prev_profile(10);
        let pop = Population::with_truth(&profile, State::from_subjects([4]));
        let model = BinaryDilutionModel::perfect();
        let r = run_dorfman(&pop, &model, 5, 7);
        // Two stage-1 pools + five retests of the positive pool.
        assert_eq!(r.stats.tests, 7);
        assert_eq!(r.stats.stages, 2);
        assert_eq!(r.confusion.tp, 1);
        assert_eq!(r.confusion.tn, 9);
        assert!(r.classification.is_terminal());
    }

    #[test]
    fn dorfman_all_negative_is_one_stage() {
        let profile = low_prev_profile(8);
        let pop = Population::with_truth(&profile, State::EMPTY);
        let model = BinaryDilutionModel::perfect();
        let r = run_dorfman(&pop, &model, 4, 7);
        assert_eq!(r.stats.tests, 2);
        assert_eq!(r.stats.stages, 1);
    }

    #[test]
    fn episodes_are_reproducible() {
        let profile = RiskProfile::Flat { n: 10, p: 0.1 };
        let pop = Population::sample(&profile, 11);
        let model = BinaryDilutionModel::pcr_like();
        let a = run_episode(&pop, &model, &EpisodeConfig::standard(11));
        let b = run_episode(&pop, &model, &EpisodeConfig::standard(11));
        assert_eq!(a.history, b.history);
        assert_eq!(a.stats, b.stats);
    }
}
