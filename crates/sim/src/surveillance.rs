//! The batched surveillance harness — the framework's Spark-style outer
//! loop.
//!
//! Population-scale surveillance splits a stream of specimens into cohorts
//! of a manageable lattice size, runs one sequential episode per cohort,
//! and aggregates program-level metrics. SBGT distributes this outer loop
//! across the cluster; here each cohort episode is one task on the
//! [`sbgt_engine`] executor pool, with the per-cohort results reduced on
//! the driver.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sbgt_engine::{Dataset, Engine};
use sbgt_response::BinaryDilutionModel;

use crate::metrics::{ConfusionMatrix, EpisodeStats, SummaryStats};
use crate::population::{Population, RiskProfile};
use crate::runner::{run_episode, EpisodeConfig};

/// Configuration of a surveillance run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveillanceConfig {
    /// Number of cohorts (batches) to process.
    pub cohorts: usize,
    /// Risk profile of each cohort.
    pub profile: RiskProfile,
    /// Assay model shared by all cohorts.
    pub model: BinaryDilutionModel,
    /// Episode parameters (the per-cohort seed is derived from `base_seed`
    /// and the cohort index).
    pub episode: EpisodeConfig,
    /// Base RNG seed.
    pub base_seed: u64,
}

/// Program-level aggregates of a surveillance run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveillanceReport {
    /// Pooled confusion matrix over all cohorts.
    pub confusion: ConfusionMatrix,
    /// Per-cohort cost metrics.
    pub per_cohort: Vec<EpisodeStats>,
    /// Summary of tests-per-subject across cohorts.
    pub tests_per_subject: SummaryStats,
    /// Summary of stages across cohorts.
    pub stages: SummaryStats,
    /// Total assays consumed.
    pub total_tests: usize,
    /// Total subjects screened.
    pub total_subjects: usize,
}

/// Run `cfg.cohorts` independent cohort episodes as parallel engine tasks
/// and aggregate.
pub fn run_surveillance(engine: &Engine, cfg: &SurveillanceConfig) -> SurveillanceReport {
    let shared = Arc::new(cfg.clone());
    let cohort_ids: Vec<usize> = (0..cfg.cohorts).collect();
    let dataset = Dataset::from_vec(cohort_ids, engine.default_partitions());

    let results = dataset.map_partitions(engine, move |_, ids| {
        ids.iter()
            .map(|&cohort| {
                let cfg = &*shared;
                let seed = cfg
                    .base_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(cohort as u64);
                let population = Population::sample(&cfg.profile, seed);
                let mut episode_cfg = cfg.episode;
                episode_cfg.seed = seed ^ 0x5bd1_e995;
                let r = run_episode(&population, &cfg.model, &episode_cfg);
                (r.stats, r.confusion)
            })
            .collect()
    });

    let collected: Vec<(EpisodeStats, ConfusionMatrix)> = results.collect();
    let mut confusion = ConfusionMatrix::default();
    let mut per_cohort = Vec::with_capacity(collected.len());
    let mut total_tests = 0usize;
    let mut total_subjects = 0usize;
    for (stats, c) in &collected {
        confusion.merge(c);
        per_cohort.push(*stats);
        total_tests += stats.tests;
        total_subjects += stats.subjects;
    }
    let tps: Vec<f64> = per_cohort.iter().map(|s| s.tests_per_subject()).collect();
    let stages: Vec<f64> = per_cohort.iter().map(|s| s.stages as f64).collect();
    SurveillanceReport {
        confusion,
        tests_per_subject: SummaryStats::from_samples(&tps),
        stages: SummaryStats::from_samples(&stages),
        per_cohort,
        total_tests,
        total_subjects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_engine::EngineConfig;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default().with_threads(2))
    }

    fn config(cohorts: usize) -> SurveillanceConfig {
        SurveillanceConfig {
            cohorts,
            profile: RiskProfile::Flat { n: 8, p: 0.03 },
            model: BinaryDilutionModel::perfect(),
            episode: EpisodeConfig::standard(0),
            base_seed: 42,
        }
    }

    #[test]
    fn aggregates_are_consistent() {
        let e = engine();
        let report = run_surveillance(&e, &config(6));
        assert_eq!(report.per_cohort.len(), 6);
        assert_eq!(report.total_subjects, 48);
        assert_eq!(report.confusion.total(), 48);
        let sum_tests: usize = report.per_cohort.iter().map(|s| s.tests).sum();
        assert_eq!(report.total_tests, sum_tests);
        assert_eq!(report.tests_per_subject.n, 6);
        // Perfect assay: no misclassifications.
        assert_eq!(report.confusion.fp + report.confusion.fn_, 0);
    }

    #[test]
    fn runs_are_reproducible() {
        let e = engine();
        let a = run_surveillance(&e, &config(4));
        let b = run_surveillance(&e, &config(4));
        assert_eq!(a, b);
    }

    #[test]
    fn cohorts_differ_from_each_other() {
        let e = engine();
        let report = run_surveillance(&e, &config(16));
        // With 16 cohorts at p=0.03, n=8, test counts should not all match.
        let first = report.per_cohort[0].tests;
        assert!(
            report.per_cohort.iter().any(|s| s.tests != first),
            "all cohorts identical — seeds not propagating"
        );
    }

    #[test]
    fn surveillance_recovers_from_injected_faults_identically() {
        use sbgt_engine::{FaultPlan, RetryPolicy};
        use std::time::Duration;

        let clean = run_surveillance(&engine(), &config(6));

        let e = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_retry(RetryPolicy::clamped(2)),
        );
        // Kill one cohort task's first attempt and straggle another; the
        // program-level report must come out identical to the clean run.
        e.set_fault_plan(FaultPlan::new().panic_at("map_partitions", 0, 0).delay_at(
            "map_partitions",
            1,
            0,
            Duration::from_millis(5),
        ));
        let chaotic = run_surveillance(&e, &config(6));
        assert_eq!(clean, chaotic);
        let totals = e.metrics().fault_totals();
        assert_eq!(totals.injected_panics, 1);
        assert_eq!(totals.injected_delays, 1);
        assert_eq!(totals.retries, 1);
    }

    #[test]
    fn group_testing_saves_tests_at_program_scale() {
        let e = engine();
        let report = run_surveillance(&e, &config(10));
        assert!(
            (report.total_tests as f64) < 0.7 * report.total_subjects as f64,
            "tests {} vs subjects {}",
            report.total_tests,
            report.total_subjects
        );
    }
}
