//! Multi-wave surveillance with prevalence drift and adaptive priors.
//!
//! Real surveillance is repeated: the same program screens wave after wave
//! while the epidemic's prevalence drifts. The Bayesian framework closes
//! the loop — each wave's classifications give a prevalence estimate that
//! seeds the next wave's prior. This module simulates that pipeline:
//!
//! 1. draw wave `t`'s cohorts at the (hidden) true prevalence `p_t`;
//! 2. run the Bayesian episodes with the *current* prior estimate;
//! 3. re-estimate prevalence from the wave's classified positives (with a
//!    Beta-style pseudo-count smoother so early waves don't collapse the
//!    prior to 0);
//! 4. drift `p_t` and repeat.
//!
//! The adaptive program is compared against a frozen-prior program in the
//! tests: once the truth drifts away from the initial guess, adaptation
//! must track it.

use serde::{Deserialize, Serialize};

use sbgt_bayes::{ClassificationRule, Prior};
use sbgt_engine::Engine;
use sbgt_response::BinaryDilutionModel;

use crate::metrics::ConfusionMatrix;
use crate::population::RiskProfile;
use crate::runner::EpisodeConfig;
use crate::surveillance::SurveillanceConfig;

/// How the true prevalence moves between waves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Drift {
    /// Constant prevalence.
    None,
    /// Multiplied by `factor` each wave (exponential growth/decay),
    /// clamped to `[floor, ceil]`.
    Exponential {
        /// Per-wave multiplier.
        factor: f64,
        /// Lower clamp.
        floor: f64,
        /// Upper clamp.
        ceil: f64,
    },
}

impl Drift {
    fn step(&self, p: f64) -> f64 {
        match *self {
            Drift::None => p,
            Drift::Exponential {
                factor,
                floor,
                ceil,
            } => (p * factor).clamp(floor, ceil),
        }
    }
}

/// Configuration of a multi-wave adaptive surveillance program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Number of waves.
    pub waves: usize,
    /// Cohorts per wave.
    pub cohorts_per_wave: usize,
    /// Cohort size.
    pub cohort_size: usize,
    /// True prevalence of the first wave.
    pub initial_prevalence: f64,
    /// Drift of the true prevalence.
    pub drift: Drift,
    /// The program's initial prevalence estimate (its first prior).
    pub initial_estimate: f64,
    /// Whether the program re-estimates its prior after each wave
    /// (`false` freezes the initial estimate — the non-adaptive control).
    pub adaptive: bool,
    /// Assay model.
    pub model: BinaryDilutionModel,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Smoothing pseudo-counts for re-estimation
    /// (`alpha` positives / `beta` negatives, Beta-prior style).
    pub pseudo_counts: (f64, f64),
}

impl StreamConfig {
    /// A small default program for tests/examples.
    pub fn standard() -> Self {
        StreamConfig {
            waves: 6,
            cohorts_per_wave: 8,
            cohort_size: 10,
            initial_prevalence: 0.02,
            drift: Drift::Exponential {
                factor: 1.6,
                floor: 0.005,
                ceil: 0.3,
            },
            initial_estimate: 0.02,
            adaptive: true,
            model: BinaryDilutionModel::pcr_like(),
            base_seed: 17,
            pseudo_counts: (1.0, 20.0),
        }
    }
}

/// Per-wave record of a stream run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveReport {
    /// Wave index.
    pub wave: usize,
    /// Hidden true prevalence of this wave.
    pub true_prevalence: f64,
    /// Prevalence estimate the program used for this wave's prior.
    pub used_estimate: f64,
    /// Classification confusion of the wave.
    pub confusion: ConfusionMatrix,
    /// Assays consumed this wave.
    pub tests: usize,
    /// Subjects screened this wave.
    pub subjects: usize,
}

/// Run the multi-wave program; returns one report per wave.
pub fn run_stream(engine: &Engine, cfg: &StreamConfig) -> Vec<WaveReport> {
    assert!(cfg.waves >= 1);
    assert!(cfg.initial_prevalence > 0.0 && cfg.initial_prevalence < 1.0);
    assert!(cfg.initial_estimate > 0.0 && cfg.initial_estimate < 1.0);
    let mut true_p = cfg.initial_prevalence;
    let mut estimate = cfg.initial_estimate;
    let mut reports = Vec::with_capacity(cfg.waves);

    for wave in 0..cfg.waves {
        let episode = EpisodeConfig {
            // Prevalence-aware thresholds, tied to the *current* estimate.
            rule: ClassificationRule::new(0.99, (estimate / 10.0).min(0.01)),
            ..EpisodeConfig::standard(0)
        };
        let sconf = SurveillanceConfig {
            cohorts: cfg.cohorts_per_wave,
            profile: RiskProfile::Flat {
                n: cfg.cohort_size,
                p: true_p,
            },
            model: cfg.model,
            episode,
            base_seed: cfg
                .base_seed
                .wrapping_add((wave as u64).wrapping_mul(0x9E37_79B9)),
        };
        // NOTE: the surveillance harness builds each cohort's prior from
        // the generating profile; to run under the *estimate* we substitute
        // the profile's risk with the estimate and keep the truth drawn at
        // the true prevalence by sampling populations explicitly.
        let report = run_wave_with_estimate(engine, &sconf, estimate);
        reports.push(WaveReport {
            wave,
            true_prevalence: true_p,
            used_estimate: estimate,
            confusion: report.0,
            tests: report.1,
            subjects: report.2,
        });

        if cfg.adaptive {
            // Beta-smoothed positive rate over the wave's classifications.
            let last = reports.last().expect("just pushed");
            let positives = last.confusion.tp + last.confusion.fp;
            let classified = last.confusion.total() - last.confusion.undetermined;
            let (a, b) = cfg.pseudo_counts;
            estimate = ((positives as f64 + a) / (classified as f64 + a + b)).clamp(1e-4, 0.5);
        }
        true_p = cfg.drift.step(true_p);
    }
    reports
}

/// Run one wave: cohorts drawn at the true prevalence, episodes run with a
/// flat prior at `estimate`. Returns (confusion, tests, subjects).
fn run_wave_with_estimate(
    engine: &Engine,
    cfg: &SurveillanceConfig,
    estimate: f64,
) -> (ConfusionMatrix, usize, usize) {
    use crate::population::Population;
    use crate::runner::run_episode_with_prior;
    use sbgt_engine::Dataset;
    use std::sync::Arc;

    let shared = Arc::new((cfg.clone(), estimate));
    let ids: Vec<usize> = (0..cfg.cohorts).collect();
    let dataset = Dataset::from_vec(ids, engine.default_partitions());
    let results = dataset.map_partitions(engine, move |_, ids| {
        let (cfg, estimate) = &*shared;
        ids.iter()
            .map(|&cohort| {
                let seed = cfg
                    .base_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(cohort as u64);
                let population = Population::sample(&cfg.profile, seed);
                let prior = Prior::flat(population.n_subjects(), *estimate);
                let mut episode = cfg.episode;
                episode.seed = seed ^ 0xA5A5_5A5A;
                let r = run_episode_with_prior(&population, &prior, &cfg.model, &episode);
                (r.confusion, r.stats.tests, r.stats.subjects)
            })
            .collect()
    });
    let mut confusion = ConfusionMatrix::default();
    let mut tests = 0;
    let mut subjects = 0;
    for (c, t, s) in results.collect() {
        confusion.merge(&c);
        tests += t;
        subjects += s;
    }
    (confusion, tests, subjects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_engine::EngineConfig;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default().with_threads(2))
    }

    #[test]
    fn stream_produces_one_report_per_wave() {
        let e = engine();
        let cfg = StreamConfig {
            waves: 4,
            cohorts_per_wave: 4,
            ..StreamConfig::standard()
        };
        let reports = run_stream(&e, &cfg);
        assert_eq!(reports.len(), 4);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.wave, i);
            assert_eq!(r.subjects, 4 * cfg.cohort_size);
            assert!(r.true_prevalence > 0.0);
        }
    }

    #[test]
    fn prevalence_drifts_as_configured() {
        let e = engine();
        let cfg = StreamConfig {
            waves: 5,
            drift: Drift::Exponential {
                factor: 2.0,
                floor: 0.001,
                ceil: 0.5,
            },
            ..StreamConfig::standard()
        };
        let reports = run_stream(&e, &cfg);
        for w in reports.windows(2) {
            assert!(
                w[1].true_prevalence >= w[0].true_prevalence,
                "growth drift must be monotone"
            );
        }
        assert!((reports[1].true_prevalence - 0.04).abs() < 1e-12);
    }

    #[test]
    fn adaptive_estimate_tracks_growth() {
        let e = engine();
        let cfg = StreamConfig {
            waves: 6,
            cohorts_per_wave: 10,
            initial_prevalence: 0.02,
            initial_estimate: 0.02,
            drift: Drift::Exponential {
                factor: 1.8,
                floor: 0.005,
                ceil: 0.3,
            },
            adaptive: true,
            ..StreamConfig::standard()
        };
        let reports = run_stream(&e, &cfg);
        let first = reports.first().unwrap();
        let last = reports.last().unwrap();
        assert!(
            last.used_estimate > first.used_estimate,
            "estimate must rise with the epidemic: {} -> {}",
            first.used_estimate,
            last.used_estimate
        );
    }

    #[test]
    fn frozen_prior_does_not_move() {
        let e = engine();
        let cfg = StreamConfig {
            adaptive: false,
            ..StreamConfig::standard()
        };
        let reports = run_stream(&e, &cfg);
        for r in &reports {
            assert!((r.used_estimate - cfg.initial_estimate).abs() < 1e-12);
        }
    }

    #[test]
    fn stream_is_reproducible() {
        let e = engine();
        let cfg = StreamConfig::standard();
        let a = run_stream(&e, &cfg);
        let b = run_stream(&e, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn drift_none_is_constant() {
        assert_eq!(Drift::None.step(0.07), 0.07);
    }
}
