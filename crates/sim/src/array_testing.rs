//! 2D array testing — the other classical non-adaptive comparator.
//!
//! Samples are arranged in an `r × c` grid; every row pool and every
//! column pool is tested in one stage. A sample is suspected iff its row
//! *and* its column both read positive; suspects are retested individually
//! in stage two. Array testing was widely deployed for COVID-19 screening
//! (it is non-adaptive within a stage, like Dorfman, but uses the grid
//! geometry to localize positives with fewer retests at moderate
//! prevalence) — another anchor for the efficiency experiments.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sbgt_bayes::{CohortClassification, SubjectStatus};
use sbgt_lattice::State;
use sbgt_response::BinaryOutcomeModel;

use crate::metrics::{ConfusionMatrix, EpisodeStats};
use crate::outcome::run_test;
use crate::population::Population;
use crate::runner::EpisodeResult;

/// Run two-stage array testing on an `rows × cols` grid.
///
/// Subjects are assigned to grid cells row-major: subject `i` sits at
/// `(i / cols, i % cols)`. A ragged final row is supported; empty row or
/// column pools are skipped. Subjects whose row or column pool reads
/// negative are classified negative; suspects (both pools positive) are
/// retested individually.
///
/// # Panics
/// Panics when `rows == 0 || cols == 0` or the grid is smaller than the
/// cohort.
pub fn run_array_testing<M: BinaryOutcomeModel>(
    population: &Population,
    model: &M,
    rows: usize,
    cols: usize,
    seed: u64,
) -> EpisodeResult {
    assert!(rows >= 1 && cols >= 1, "grid must be non-empty");
    let n = population.n_subjects();
    assert!(
        rows * cols >= n,
        "grid {rows}x{cols} too small for {n} subjects"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = Vec::new();

    // Build row and column pools.
    let mut row_pools = vec![State::EMPTY; rows];
    let mut col_pools = vec![State::EMPTY; cols];
    for i in 0..n {
        row_pools[i / cols] = row_pools[i / cols].with(i);
        col_pools[i % cols] = col_pools[i % cols].with(i);
    }

    // Stage 1: all row and column pools (skipping empty ones).
    let mut row_positive = vec![false; rows];
    let mut col_positive = vec![false; cols];
    for (r, pool) in row_pools.iter().enumerate() {
        if !pool.is_empty() {
            let outcome = run_test(population, model, *pool, &mut rng);
            history.push((*pool, outcome));
            row_positive[r] = outcome;
        }
    }
    for (c, pool) in col_pools.iter().enumerate() {
        if !pool.is_empty() {
            let outcome = run_test(population, model, *pool, &mut rng);
            history.push((*pool, outcome));
            col_positive[c] = outcome;
        }
    }

    // Stage 2: retest intersections of positive rows and columns.
    let mut statuses = vec![SubjectStatus::Negative; n];
    let mut marginals = vec![0.0f64; n];
    let mut any_retest = false;
    for i in 0..n {
        if row_positive[i / cols] && col_positive[i % cols] {
            any_retest = true;
            let single = State::EMPTY.with(i);
            let outcome = run_test(population, model, single, &mut rng);
            history.push((single, outcome));
            statuses[i] = if outcome {
                SubjectStatus::Positive
            } else {
                SubjectStatus::Negative
            };
            marginals[i] = if outcome { 1.0 } else { 0.0 };
        }
    }

    let classification = CohortClassification { statuses };
    EpisodeResult {
        stats: EpisodeStats {
            tests: history.len(),
            stages: if any_retest { 2 } else { 1 },
            subjects: n,
        },
        confusion: ConfusionMatrix::from_statuses(&classification.statuses, population.truth()),
        classification,
        marginals,
        history,
    }
}

/// A square-ish grid for `n` subjects: `ceil(sqrt(n))` columns.
pub fn square_grid(n: usize) -> (usize, usize) {
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols.max(1));
    (rows.max(1), cols.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::RiskProfile;
    use sbgt_response::BinaryDilutionModel;

    #[test]
    fn single_positive_found_with_row_col_and_one_retest() {
        // 3x3 grid, subject 4 positive (row 1, col 1): 3 rows + 3 cols +
        // 1 retest = 7 tests.
        let profile = RiskProfile::Flat { n: 9, p: 0.1 };
        let pop = Population::with_truth(&profile, State::from_subjects([4]));
        let model = BinaryDilutionModel::perfect();
        let r = run_array_testing(&pop, &model, 3, 3, 1);
        assert_eq!(r.stats.tests, 7);
        assert_eq!(r.stats.stages, 2);
        assert_eq!(r.confusion.tp, 1);
        assert_eq!(r.confusion.tn, 8);
        assert_eq!(r.confusion.fp + r.confusion.fn_, 0);
    }

    #[test]
    fn all_negative_needs_only_stage_one() {
        let profile = RiskProfile::Flat { n: 9, p: 0.1 };
        let pop = Population::with_truth(&profile, State::EMPTY);
        let model = BinaryDilutionModel::perfect();
        let r = run_array_testing(&pop, &model, 3, 3, 1);
        assert_eq!(r.stats.tests, 6);
        assert_eq!(r.stats.stages, 1);
        assert_eq!(r.confusion.tn, 9);
    }

    #[test]
    fn two_positives_same_row() {
        // Positives at (0,0) and (0,2): row 0 positive, cols 0 and 2
        // positive -> suspects are exactly those two cells (row 1/2
        // negative kills the other intersections).
        let profile = RiskProfile::Flat { n: 9, p: 0.1 };
        let pop = Population::with_truth(&profile, State::from_subjects([0, 2]));
        let model = BinaryDilutionModel::perfect();
        let r = run_array_testing(&pop, &model, 3, 3, 5);
        assert_eq!(r.confusion.tp, 2);
        assert_eq!(r.confusion.fp + r.confusion.fn_, 0);
        // 6 stage-1 pools + 2 retests.
        assert_eq!(r.stats.tests, 8);
    }

    #[test]
    fn ragged_grid_handles_partial_last_row() {
        let profile = RiskProfile::Flat { n: 7, p: 0.1 };
        let pop = Population::with_truth(&profile, State::from_subjects([6]));
        let model = BinaryDilutionModel::perfect();
        let (rows, cols) = square_grid(7);
        assert_eq!((rows, cols), (3, 3));
        let r = run_array_testing(&pop, &model, rows, cols, 2);
        assert!(r.classification.is_terminal());
        assert_eq!(r.confusion.tp, 1);
        assert_eq!(r.confusion.total(), 7);
    }

    #[test]
    fn square_grid_shapes() {
        assert_eq!(square_grid(1), (1, 1));
        assert_eq!(square_grid(4), (2, 2));
        assert_eq!(square_grid(16), (4, 4));
        assert_eq!(square_grid(17), (4, 5));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn grid_size_validated() {
        let profile = RiskProfile::Flat { n: 10, p: 0.1 };
        let pop = Population::with_truth(&profile, State::EMPTY);
        let model = BinaryDilutionModel::perfect();
        let _ = run_array_testing(&pop, &model, 3, 3, 0);
    }

    #[test]
    fn array_saves_over_individual_and_localizes_retests() {
        // Array vs Dorfman is regime-dependent with thin margins (their
        // expected costs differ by a few percent at these sizes), so the
        // robust claims are: (a) array clearly beats individual testing at
        // moderate prevalence, and (b) its stage-2 retest count stays near
        // the number of suspect intersections rather than whole pools.
        let profile = RiskProfile::Flat { n: 16, p: 0.1 };
        let model = BinaryDilutionModel::perfect();
        let mut array_tests = 0usize;
        let mut retests = 0usize;
        let mut positives = 0usize;
        let reps = 30;
        for seed in 0..reps {
            let pop = Population::sample(&profile, 900 + seed);
            let r = run_array_testing(&pop, &model, 4, 4, seed);
            assert_eq!(
                r.confusion.fp + r.confusion.fn_,
                0,
                "perfect assay must be exact"
            );
            array_tests += r.stats.tests;
            retests += r.stats.tests - 8; // 8 stage-1 pools on a 4x4 grid
            positives += pop.n_positive();
        }
        assert!(
            array_tests < reps as usize * 16,
            "array {array_tests} !< individual {}",
            reps * 16
        );
        // Geometric localization: averaged over cohorts, retests stay
        // within a small factor of the true positive count (Dorfman with
        // g=4 would retest 4 per positive pool).
        assert!(
            retests <= positives * 3 + reps as usize,
            "retests {retests} vs positives {positives}"
        );
    }
}
