//! Human-readable report rendering for surveillance results.
//!
//! Public-health consumers of the framework read program summaries, not
//! structs. These renderers produce compact markdown for the
//! [`crate::SurveillanceReport`] and multi-wave [`crate::WaveReport`]
//! streams — the textual equivalent of the paper's dashboard figures.
//! Pure string formatting: no engine, no RNG, fully unit-testable.

use std::fmt::Write as _;

use crate::metrics::ConfusionMatrix;
use crate::stream::WaveReport;
use crate::surveillance::SurveillanceReport;

/// Render a confusion matrix as a one-line summary.
pub fn confusion_summary(c: &ConfusionMatrix) -> String {
    format!(
        "sens {:.3} / spec {:.3} / acc {:.1}% ({} subjects, {} undetermined)",
        c.sensitivity(),
        c.specificity(),
        100.0 * c.accuracy(),
        c.total(),
        c.undetermined
    )
}

/// Render a surveillance report as markdown.
pub fn render_surveillance(report: &SurveillanceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Surveillance program summary");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "* screened **{}** subjects in **{}** cohorts using **{}** assays",
        report.total_subjects,
        report.per_cohort.len(),
        report.total_tests
    );
    let _ = writeln!(
        out,
        "* tests/subject: **{:.3} ± {:.3}** (savings vs individual testing: {:.1}%)",
        report.tests_per_subject.mean,
        report.tests_per_subject.sd,
        100.0 * (1.0 - report.tests_per_subject.mean)
    );
    let _ = writeln!(
        out,
        "* stages/cohort: {:.2} ± {:.2}",
        report.stages.mean, report.stages.sd
    );
    let _ = writeln!(
        out,
        "* classification: {}",
        confusion_summary(&report.confusion)
    );
    out
}

/// Render a multi-wave stream as a markdown table.
pub fn render_stream(waves: &[WaveReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Adaptive surveillance stream");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| wave | true p | assumed p | sens | spec | tests | tests/subject |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for w in waves {
        let tps = if w.subjects > 0 {
            w.tests as f64 / w.subjects as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {:.3} |",
            w.wave,
            w.true_prevalence,
            w.used_estimate,
            w.confusion.sensitivity(),
            w.confusion.specificity(),
            w.tests,
            tps
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{EpisodeStats, SummaryStats};

    fn confusion() -> ConfusionMatrix {
        ConfusionMatrix {
            tp: 3,
            fp: 0,
            tn: 45,
            fn_: 1,
            undetermined: 1,
        }
    }

    #[test]
    fn confusion_line_contains_rates() {
        let s = confusion_summary(&confusion());
        assert!(s.contains("sens 0.750"));
        assert!(s.contains("spec 1.000"));
        assert!(s.contains("50 subjects"));
        assert!(s.contains("1 undetermined"));
    }

    #[test]
    fn surveillance_markdown_has_key_figures() {
        let report = SurveillanceReport {
            confusion: confusion(),
            per_cohort: vec![
                EpisodeStats {
                    tests: 5,
                    stages: 3,
                    subjects: 10,
                },
                EpisodeStats {
                    tests: 7,
                    stages: 4,
                    subjects: 10,
                },
            ],
            tests_per_subject: SummaryStats::from_samples(&[0.5, 0.7]),
            stages: SummaryStats::from_samples(&[3.0, 4.0]),
            total_tests: 12,
            total_subjects: 20,
        };
        let md = render_surveillance(&report);
        assert!(md.contains("**20** subjects"));
        assert!(md.contains("**2** cohorts"));
        assert!(md.contains("**12** assays"));
        assert!(md.contains("0.600 ± 0.141"));
        assert!(md.starts_with("## Surveillance"));
    }

    #[test]
    fn stream_markdown_has_one_row_per_wave() {
        let waves = vec![
            WaveReport {
                wave: 0,
                true_prevalence: 0.02,
                used_estimate: 0.02,
                confusion: confusion(),
                tests: 40,
                subjects: 80,
            },
            WaveReport {
                wave: 1,
                true_prevalence: 0.04,
                used_estimate: 0.025,
                confusion: confusion(),
                tests: 55,
                subjects: 80,
            },
        ];
        let md = render_stream(&waves);
        assert!(md.matches("| 0.0").count() >= 2);
        assert!(md.contains("| 0 | 0.020 | 0.020 |"));
        assert!(md.contains("| 1 | 0.040 | 0.025 |"));
        assert!(md.contains("| 40 | 0.500 |"));
    }

    #[test]
    fn empty_stream_renders_header_only() {
        let md = render_stream(&[]);
        assert!(md.contains("| wave |"));
        assert_eq!(md.lines().count(), 4);
    }
}
