//! # sbgt-sim — simulation substrate for disease surveillance
//!
//! The SBGT paper evaluates on COVID-19 surveillance workloads. Those
//! cohorts and assay traces are not redistributable, so this crate builds
//! the synthetic equivalent that exercises identical code paths (the
//! substitution recorded in DESIGN.md): the Bayesian machinery consumes
//! only prior risks and test outcomes, both of which are generated here
//! under controlled prevalence/risk/dilution regimes.
//!
//! * [`population`] — ground-truth cohorts: flat prevalence, risk-group
//!   mixtures, seeded and reproducible;
//! * [`outcome`] — the virtual lab: samples assay outcomes for a pool given
//!   the ground truth and a response model;
//! * [`runner`] — sequential testing episodes: Bayesian halving /
//!   look-ahead loops run to classification, plus the *individual-testing*
//!   and *Dorfman two-stage* comparator procedures;
//! * [`surveillance`] — the batched surveillance harness: a large
//!   population is split into cohorts and episodes run as parallel jobs on
//!   the [`sbgt_engine`] (the framework's Spark-style outer loop);
//! * [`metrics`] — confusion matrices, tests-per-subject, stage counts, and
//!   aggregation across replicates;
//! * [`scenario`] — named workload configurations (the E1 table);
//! * [`traffic`] — open-loop Poisson specimen arrivals driving the
//!   surveillance service experiments (E13).

pub mod array_testing;
pub mod dorfman;
pub mod metrics;
pub mod outcome;
pub mod population;
pub mod reporting;
pub mod robustness;
pub mod runner;
pub mod scenario;
pub mod stream;
pub mod surveillance;
pub mod traffic;

pub use array_testing::{run_array_testing, square_grid};
pub use dorfman::{dorfman_expected_tests_per_subject, optimal_dorfman_pool};
pub use metrics::{ConfusionMatrix, EpisodeStats, SummaryStats};
pub use population::{Population, RiskProfile};
pub use robustness::{misspecification_sweep, RobustnessRow};
pub use runner::{
    run_dorfman, run_episode, run_episode_with_prior, run_individual, EpisodeConfig, EpisodeResult,
};
pub use scenario::Scenario;
pub use stream::{run_stream, Drift, StreamConfig, WaveReport};
pub use surveillance::{run_surveillance, SurveillanceConfig, SurveillanceReport};
pub use traffic::{generate_arrivals, Arrival, TrafficClass, TrafficConfig};
