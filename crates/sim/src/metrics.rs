//! Episode metrics and aggregation.

use serde::{Deserialize, Serialize};

use sbgt_bayes::SubjectStatus;
use sbgt_lattice::State;

/// Classification confusion matrix against the ground truth. Undetermined
/// subjects (episodes truncated by a test budget) are counted separately
/// and excluded from the rate denominators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Truly positive, classified positive.
    pub tp: usize,
    /// Truly negative, classified positive.
    pub fp: usize,
    /// Truly negative, classified negative.
    pub tn: usize,
    /// Truly positive, classified negative.
    pub fn_: usize,
    /// Subjects left undetermined.
    pub undetermined: usize,
}

impl ConfusionMatrix {
    /// Tally statuses against the truth.
    pub fn from_statuses(statuses: &[SubjectStatus], truth: State) -> Self {
        let mut m = ConfusionMatrix::default();
        for (i, s) in statuses.iter().enumerate() {
            let positive = truth.contains(i);
            match (s, positive) {
                (SubjectStatus::Positive, true) => m.tp += 1,
                (SubjectStatus::Positive, false) => m.fp += 1,
                (SubjectStatus::Negative, false) => m.tn += 1,
                (SubjectStatus::Negative, true) => m.fn_ += 1,
                (SubjectStatus::Undetermined, _) => m.undetermined += 1,
            }
        }
        m
    }

    /// Merge another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
        self.undetermined += other.undetermined;
    }

    /// `TP / (TP + FN)`; 1.0 when there are no true positives (vacuous).
    pub fn sensitivity(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// `TN / (TN + FP)`; 1.0 when there are no true negatives (vacuous).
    pub fn specificity(&self) -> f64 {
        let denom = self.tn + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tn as f64 / denom as f64
        }
    }

    /// Fraction of classified subjects that are classified correctly.
    pub fn accuracy(&self) -> f64 {
        let classified = self.tp + self.fp + self.tn + self.fn_;
        if classified == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / classified as f64
    }

    /// Number of subjects counted.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_ + self.undetermined
    }
}

/// Cost metrics of one testing episode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EpisodeStats {
    /// Total assays consumed.
    pub tests: usize,
    /// Sequential stages (posterior-update rounds with a lab turnaround).
    pub stages: usize,
    /// Cohort size.
    pub subjects: usize,
}

impl EpisodeStats {
    /// Tests per subject — the headline efficiency metric (individual
    /// testing costs exactly 1.0).
    pub fn tests_per_subject(&self) -> f64 {
        if self.subjects == 0 {
            0.0
        } else {
            self.tests as f64 / self.subjects as f64
        }
    }
}

/// Mean/standard-deviation summary over replicate episodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased; 0 for fewer than 2 samples).
    pub sd: f64,
    /// Number of samples.
    pub n: usize,
}

impl SummaryStats {
    /// Summarize a sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return SummaryStats::default();
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let sd = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        SummaryStats { mean, sd, n }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_from_statuses() {
        use SubjectStatus::*;
        let truth = State::from_subjects([0, 1]);
        let statuses = [Positive, Negative, Negative, Positive, Undetermined];
        let m = ConfusionMatrix::from_statuses(&statuses, truth);
        assert_eq!(m.tp, 1);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.tn, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.undetermined, 1);
        assert_eq!(m.total(), 5);
        assert!((m.sensitivity() - 0.5).abs() < 1e-12);
        assert!((m.specificity() - 0.5).abs() < 1e-12);
        assert!((m.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn vacuous_rates_are_one() {
        let m = ConfusionMatrix {
            tn: 5,
            ..Default::default()
        };
        assert_eq!(m.sensitivity(), 1.0);
        let m = ConfusionMatrix {
            tp: 5,
            ..Default::default()
        };
        assert_eq!(m.specificity(), 1.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = ConfusionMatrix {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
            undetermined: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.tp, 2);
        assert_eq!(a.undetermined, 10);
    }

    #[test]
    fn episode_stats() {
        let s = EpisodeStats {
            tests: 5,
            stages: 3,
            subjects: 20,
        };
        assert!((s.tests_per_subject() - 0.25).abs() < 1e-12);
        assert_eq!(EpisodeStats::default().tests_per_subject(), 0.0);
    }

    #[test]
    fn summary_stats() {
        let s = SummaryStats::from_samples(&[2.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.sd - 2.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
        assert_eq!(SummaryStats::from_samples(&[]).n, 0);
        assert_eq!(SummaryStats::from_samples(&[1.0]).sd, 0.0);
    }
}
