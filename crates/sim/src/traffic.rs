//! Open-loop traffic generation for the surveillance service.
//!
//! The service experiments (E13) need specimen *arrivals*, not pre-built
//! cohorts: an open-loop Poisson process whose rate is independent of how
//! fast the service drains its queue, so overload actually sheds instead of
//! silently back-pressuring the generator. Each arrival carries a risk
//! class (sampled from a weighted mix) and a ground-truth infection flag,
//! both seeded and reproducible.

use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Duration;

/// One risk class in the arrival mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficClass {
    /// Relative weight of this class in the mix (need not be normalized).
    pub weight: f64,
    /// Prior infection risk assigned to specimens of this class.
    pub risk: f64,
    /// Lab tenant submitting specimens of this class (QoS lane). The
    /// service's WFQ scheduler and per-tenant SLOs key on this; single-lab
    /// scenarios leave it 0.
    pub tenant: u32,
}

/// Configuration of an open-loop Poisson arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Mean arrival rate in specimens per second.
    pub rate_per_sec: f64,
    /// Total specimens to generate.
    pub specimens: usize,
    /// Risk-class mix; must be non-empty with positive total weight.
    pub classes: Vec<TrafficClass>,
    /// RNG seed; the whole trace is a pure function of the config.
    pub seed: u64,
}

impl TrafficConfig {
    /// A screening-like default: 2% baseline risk with a small high-risk
    /// tail, matching the mixed-risk scenario used across the experiments.
    pub fn mixed(rate_per_sec: f64, specimens: usize, seed: u64) -> Self {
        TrafficConfig {
            rate_per_sec,
            specimens,
            classes: vec![
                TrafficClass {
                    weight: 0.85,
                    risk: 0.02,
                    tenant: 0,
                },
                TrafficClass {
                    weight: 0.15,
                    risk: 0.12,
                    tenant: 0,
                },
            ],
            seed,
        }
    }

    /// A large-cohort stress profile for the approximate backends:
    /// `cohorts` batches of `n` specimens each (typically 64, 128, or 256
    /// — far past the exact backends' `2^16` lattice wall) at a flat,
    /// configurable `prevalence`. The arrival rate is high relative to
    /// any sane batch deadline, so a service consuming this trace closes
    /// its batches by **size** and actually forms `n`-subject cohorts.
    ///
    /// Panics on `n <= 16` (that regime belongs to the exact profiles) or
    /// a prevalence outside `(0, 1)`.
    pub fn large_cohort(n: usize, cohorts: usize, prevalence: f64, seed: u64) -> Self {
        assert!(
            n > 16,
            "large-cohort profile starts past the exact 2^N wall (n > 16), got {n}"
        );
        assert!(
            prevalence > 0.0 && prevalence < 1.0,
            "prevalence {prevalence} outside (0, 1)"
        );
        TrafficConfig {
            rate_per_sec: 10_000.0,
            specimens: n * cohorts,
            classes: vec![TrafficClass {
                weight: 1.0,
                risk: prevalence,
                tenant: 0,
            }],
            seed,
        }
    }

    /// A two-lab QoS scenario: both tenants submit the same screening-like
    /// mix, tenant 0 at `share` of the arrival mass and tenant 1 at the
    /// rest. Used by the WFQ fairness experiments, where the service gives
    /// the tenants different weights and the traffic must not.
    pub fn two_tenant(rate_per_sec: f64, specimens: usize, share: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&share),
            "tenant-0 share must be in [0, 1]"
        );
        TrafficConfig {
            rate_per_sec,
            specimens,
            classes: vec![
                TrafficClass {
                    weight: share,
                    risk: 0.02,
                    tenant: 0,
                },
                TrafficClass {
                    weight: 1.0 - share,
                    risk: 0.02,
                    tenant: 1,
                },
            ],
            seed,
        }
    }
}

/// One specimen arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Offset from the start of the trace.
    pub at: Duration,
    /// Prior risk from the specimen's class.
    pub risk: f64,
    /// Ground-truth infection status (Bernoulli draw at `risk`).
    pub infected: bool,
    /// Lab tenant from the specimen's class (QoS lane).
    pub tenant: u32,
}

/// Generate the full arrival trace: exponential inter-arrival gaps
/// (inverse-CDF sampling, so the trace is a deterministic function of the
/// seed), class sampled by weight, truth sampled at the class risk.
///
/// Panics if the rate is not positive or the class mix is empty/weightless
/// — both are programming errors in experiment setup, not runtime inputs.
pub fn generate_arrivals(cfg: &TrafficConfig) -> Vec<Arrival> {
    assert!(
        cfg.rate_per_sec > 0.0 && cfg.rate_per_sec.is_finite(),
        "arrival rate must be positive and finite"
    );
    let total_weight: f64 = cfg.classes.iter().map(|c| c.weight).sum();
    assert!(
        !cfg.classes.is_empty() && total_weight > 0.0,
        "traffic mix needs at least one positively-weighted class"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut clock = 0.0f64;
    let mut out = Vec::with_capacity(cfg.specimens);
    for _ in 0..cfg.specimens {
        // Exponential gap via inverse CDF; 1 - u keeps ln's argument in
        // (0, 1] so the gap is finite.
        let u: f64 = rng.random();
        clock += -(1.0 - u).ln() / cfg.rate_per_sec;
        let mut pick = rng.random::<f64>() * total_weight;
        let mut chosen = &cfg.classes[cfg.classes.len() - 1];
        for class in &cfg.classes {
            pick -= class.weight;
            if pick <= 0.0 {
                chosen = class;
                break;
            }
        }
        let infected = rng.random_bool(chosen.risk);
        out.push(Arrival {
            at: Duration::from_secs_f64(clock),
            risk: chosen.risk,
            infected,
            tenant: chosen.tenant,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_ordered() {
        let cfg = TrafficConfig::mixed(50.0, 500, 7);
        let a = generate_arrivals(&cfg);
        let b = generate_arrivals(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        for pair in a.windows(2) {
            assert!(pair[0].at <= pair[1].at, "arrivals must be time-ordered");
        }
    }

    #[test]
    fn mean_gap_tracks_rate() {
        let cfg = TrafficConfig::mixed(100.0, 4000, 11);
        let arrivals = generate_arrivals(&cfg);
        let span = arrivals.last().unwrap().at.as_secs_f64();
        let empirical_rate = arrivals.len() as f64 / span;
        assert!(
            (empirical_rate - 100.0).abs() < 10.0,
            "empirical rate {empirical_rate} should be near 100/s"
        );
    }

    #[test]
    fn class_mix_and_prevalence_are_respected() {
        let cfg = TrafficConfig::mixed(10.0, 8000, 3);
        let arrivals = generate_arrivals(&cfg);
        let high = arrivals.iter().filter(|a| a.risk > 0.1).count() as f64;
        let frac = high / arrivals.len() as f64;
        assert!((frac - 0.15).abs() < 0.03, "high-risk fraction {frac}");
        let infected = arrivals.iter().filter(|a| a.infected).count() as f64;
        let prevalence = infected / arrivals.len() as f64;
        // Mix prevalence = 0.85*0.02 + 0.15*0.12 = 0.035.
        assert!((prevalence - 0.035).abs() < 0.01, "prevalence {prevalence}");
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn zero_rate_rejected() {
        let cfg = TrafficConfig::mixed(0.0, 10, 1);
        generate_arrivals(&cfg);
    }

    #[test]
    fn large_cohort_profile_covers_the_approx_sizes() {
        for n in [64, 128, 256] {
            let cfg = TrafficConfig::large_cohort(n, 4, 0.03, 17);
            let arrivals = generate_arrivals(&cfg);
            assert_eq!(arrivals.len(), n * 4, "4 full cohorts of {n}");
            assert!(arrivals.iter().all(|a| a.risk == 0.03 && a.tenant == 0));
            // Arrivals land densely enough that size-based batching wins
            // over any deadline in the tens of milliseconds.
            let span = arrivals.last().unwrap().at.as_secs_f64();
            assert!(span < n as f64, "trace spans {span}s for n={n}");
        }
        let cfg = TrafficConfig::large_cohort(256, 8, 0.1, 5);
        let arrivals = generate_arrivals(&cfg);
        let prevalence =
            arrivals.iter().filter(|a| a.infected).count() as f64 / arrivals.len() as f64;
        assert!((prevalence - 0.1).abs() < 0.03, "prevalence {prevalence}");
    }

    #[test]
    #[should_panic(expected = "exact 2^N wall")]
    fn large_cohort_rejects_exact_sized_cohorts() {
        TrafficConfig::large_cohort(16, 1, 0.05, 1);
    }

    #[test]
    fn two_tenant_mix_splits_by_share() {
        let cfg = TrafficConfig::two_tenant(100.0, 6000, 0.5, 9);
        let arrivals = generate_arrivals(&cfg);
        let t0 = arrivals.iter().filter(|a| a.tenant == 0).count() as f64;
        let frac = t0 / arrivals.len() as f64;
        assert!((frac - 0.5).abs() < 0.03, "tenant-0 share {frac}");
        assert!(arrivals.iter().all(|a| a.tenant <= 1));
    }
}
