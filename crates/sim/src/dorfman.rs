//! Analytic Dorfman (two-stage) pooling theory.
//!
//! Dorfman 1943 is the classical comparator for every group-testing
//! paper: pools of size `g` are tested, and members of positive pools are
//! retested individually. Under a perfect assay and prevalence `p`, the
//! expected tests per subject are
//!
//! `E[T]/n = 1/g + 1 − (1−p)^g`,
//!
//! minimized near `g ≈ 1/√p`. These closed forms anchor the efficiency
//! experiments (E7): the simulated Dorfman runner must agree with them,
//! and the Bayesian procedure must beat them at low prevalence.

/// Expected tests per subject for Dorfman pooling with pool size `g` at
/// prevalence `p`, assuming a perfect assay and `n` divisible into pools
/// of `g` (the classical asymptotic form).
///
/// # Panics
/// Panics when `g == 0` or `p ∉ [0, 1]`.
pub fn dorfman_expected_tests_per_subject(g: usize, p: f64) -> f64 {
    assert!(g >= 1, "pool size must be at least 1");
    assert!((0.0..=1.0).contains(&p), "prevalence {p} outside [0,1]");
    if g == 1 {
        return 1.0;
    }
    1.0 / g as f64 + 1.0 - (1.0 - p).powi(g as i32)
}

/// The pool size minimizing [`dorfman_expected_tests_per_subject`] over
/// `1..=max_g`, with its expected tests per subject.
pub fn optimal_dorfman_pool(p: f64, max_g: usize) -> (usize, f64) {
    assert!(max_g >= 1);
    let mut best = (1usize, 1.0f64);
    for g in 2..=max_g {
        let e = dorfman_expected_tests_per_subject(g, p);
        if e < best.1 {
            best = (g, e);
        }
    }
    best
}

/// Whether Dorfman pooling beats individual testing at prevalence `p`
/// (classically requires `p < 1 − 3^{-1/3} ≈ 0.3066`).
pub fn dorfman_is_beneficial(p: f64, max_g: usize) -> bool {
    optimal_dorfman_pool(p, max_g).1 < 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{Population, RiskProfile};
    use crate::runner::run_dorfman;
    use sbgt_response::BinaryDilutionModel;

    #[test]
    fn formula_basics() {
        // g=1 is individual testing.
        assert_eq!(dorfman_expected_tests_per_subject(1, 0.1), 1.0);
        // At p=0: only the pool tests remain.
        assert!((dorfman_expected_tests_per_subject(10, 0.0) - 0.1).abs() < 1e-12);
        // At p=1: every pool retests everyone.
        assert!((dorfman_expected_tests_per_subject(10, 1.0) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn optimal_pool_tracks_inverse_sqrt_prevalence() {
        for &(p, expected_range) in &[(0.01f64, (8usize, 12usize)), (0.04, (4, 7)), (0.10, (3, 5))]
        {
            let (g, e) = optimal_dorfman_pool(p, 64);
            assert!(
                g >= expected_range.0 && g <= expected_range.1,
                "p={p}: g={g} outside {expected_range:?}"
            );
            assert!(e < 1.0);
            // Close to the 1/sqrt(p) rule of thumb.
            let rule = 1.0 / p.sqrt();
            assert!(
                (g as f64 - rule).abs() <= 2.0,
                "p={p}: g={g} vs rule {rule:.1}"
            );
        }
    }

    #[test]
    fn benefit_threshold() {
        assert!(dorfman_is_beneficial(0.05, 64));
        assert!(dorfman_is_beneficial(0.29, 64));
        assert!(!dorfman_is_beneficial(0.35, 64));
    }

    #[test]
    fn simulation_agrees_with_formula() {
        // Perfect assay, many replicates: the simulated Dorfman runner's
        // mean tests/subject must approach the closed form.
        let p = 0.05;
        let g = 5;
        let n = 20; // divisible by g
        let profile = RiskProfile::Flat { n, p };
        let model = BinaryDilutionModel::perfect();
        let reps = 400u64;
        let mut total = 0.0;
        for seed in 0..reps {
            let pop = Population::sample(&profile, 5000 + seed);
            total += run_dorfman(&pop, &model, g, seed).stats.tests_per_subject();
        }
        let mean = total / reps as f64;
        let expected = dorfman_expected_tests_per_subject(g, p);
        assert!(
            (mean - expected).abs() < 0.03,
            "simulated {mean:.4} vs formula {expected:.4}"
        );
    }
}
