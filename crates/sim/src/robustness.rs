//! Prior-misspecification robustness (experiment E11).
//!
//! Surveillance priors are estimates: the assumed prevalence rarely equals
//! the true one. The Bayesian procedure's guarantees are stated for a
//! well-specified prior, so a reproduction must check how gracefully cost
//! and accuracy degrade when the assumed risk is off by a factor. This
//! module sweeps `assumed prevalence = bias × true prevalence` and reports
//! the accuracy/efficiency envelope.

use serde::{Deserialize, Serialize};

use sbgt_bayes::Prior;
use sbgt_response::BinaryDilutionModel;

use crate::metrics::{ConfusionMatrix, SummaryStats};
use crate::population::{Population, RiskProfile};
use crate::runner::{run_episode_with_prior, EpisodeConfig};

/// One row of the misspecification sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Multiplicative bias applied to the true prevalence when forming the
    /// assumed prior (`1.0` = well-specified).
    pub bias: f64,
    /// Assumed prevalence used by the prior.
    pub assumed_prevalence: f64,
    /// Pooled confusion over all replicates.
    pub confusion: ConfusionMatrix,
    /// Tests-per-subject summary.
    pub tests_per_subject: SummaryStats,
    /// Stage-count summary.
    pub stages: SummaryStats,
}

/// Sweep prior bias factors at a fixed true prevalence.
///
/// The population is always drawn at `true_prevalence`; the episode runs
/// with a flat prior at `bias × true_prevalence` (clamped into `(0, 0.95]`).
pub fn misspecification_sweep(
    n: usize,
    true_prevalence: f64,
    biases: &[f64],
    model: BinaryDilutionModel,
    episode: &EpisodeConfig,
    replicates: u64,
) -> Vec<RobustnessRow> {
    assert!(true_prevalence > 0.0 && true_prevalence < 1.0);
    let profile = RiskProfile::Flat {
        n,
        p: true_prevalence,
    };
    biases
        .iter()
        .map(|&bias| {
            assert!(bias > 0.0, "bias must be positive");
            let assumed = (bias * true_prevalence).clamp(1e-6, 0.95);
            let prior = Prior::flat(n, assumed);
            let mut confusion = ConfusionMatrix::default();
            let mut tps = Vec::with_capacity(replicates as usize);
            let mut stages = Vec::with_capacity(replicates as usize);
            for seed in 0..replicates {
                let pop = Population::sample(&profile, 11_000 + seed);
                let mut cfg = *episode;
                cfg.seed = seed;
                let r = run_episode_with_prior(&pop, &prior, &model, &cfg);
                confusion.merge(&r.confusion);
                tps.push(r.stats.tests_per_subject());
                stages.push(r.stats.stages as f64);
            }
            RobustnessRow {
                bias,
                assumed_prevalence: assumed,
                confusion,
                tests_per_subject: SummaryStats::from_samples(&tps),
                stages: SummaryStats::from_samples(&stages),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_bayes::ClassificationRule;

    fn episode() -> EpisodeConfig {
        EpisodeConfig {
            rule: ClassificationRule::new(0.99, 0.005),
            ..EpisodeConfig::standard(0)
        }
    }

    #[test]
    fn well_specified_is_present_and_sane() {
        let rows = misspecification_sweep(
            10,
            0.05,
            &[1.0],
            BinaryDilutionModel::perfect(),
            &episode(),
            20,
        );
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!((r.assumed_prevalence - 0.05).abs() < 1e-12);
        // Perfect assay: classification must be exact regardless.
        assert_eq!(r.confusion.fp + r.confusion.fn_, 0);
        assert!(r.tests_per_subject.mean > 0.0);
    }

    #[test]
    fn misspecification_cannot_break_perfect_assay_accuracy() {
        let rows = misspecification_sweep(
            8,
            0.05,
            &[0.2, 1.0, 5.0],
            BinaryDilutionModel::perfect(),
            &episode(),
            15,
        );
        for r in &rows {
            assert_eq!(
                r.confusion.fp + r.confusion.fn_,
                0,
                "bias {} misclassified",
                r.bias
            );
        }
        // Overestimating prevalence shrinks pools => more tests than the
        // well-specified prior on average.
        let well = rows[1].tests_per_subject.mean;
        let over = rows[2].tests_per_subject.mean;
        assert!(
            over >= well - 1e-9,
            "overestimate {over} unexpectedly cheaper than well-specified {well}"
        );
    }

    #[test]
    fn assumed_prevalence_is_clamped() {
        let rows = misspecification_sweep(
            6,
            0.4,
            &[5.0],
            BinaryDilutionModel::perfect(),
            &episode(),
            3,
        );
        assert!(rows[0].assumed_prevalence <= 0.95);
    }

    #[test]
    #[should_panic(expected = "bias must be positive")]
    fn rejects_non_positive_bias() {
        let _ = misspecification_sweep(
            4,
            0.1,
            &[0.0],
            BinaryDilutionModel::perfect(),
            &episode(),
            2,
        );
    }
}
