//! Property tests for the simulation substrate: comparator procedures,
//! episode accounting across selection rules, and the Dorfman formula.

use proptest::prelude::*;

use sbgt_lattice::State;
use sbgt_response::BinaryDilutionModel;
use sbgt_sim::runner::{EpisodeConfig, SelectionMethod};
use sbgt_sim::{
    dorfman_expected_tests_per_subject, run_array_testing, run_dorfman, run_episode,
    run_individual, square_grid, Population, RiskProfile,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All comparator procedures classify every subject and count their
    /// tests consistently with their structure.
    #[test]
    fn comparators_account_consistently(
        n in 4usize..14,
        p in 0.01f64..0.3,
        seed in 0u64..300,
        g in 2usize..6,
    ) {
        let profile = RiskProfile::Flat { n, p };
        let pop = Population::sample(&profile, seed);
        let model = BinaryDilutionModel::perfect();

        let ind = run_individual(&pop, &model, seed);
        prop_assert_eq!(ind.stats.tests, n);
        prop_assert!(ind.classification.is_terminal());
        prop_assert_eq!(ind.confusion.accuracy(), 1.0);

        let dorf = run_dorfman(&pop, &model, g, seed);
        prop_assert!(dorf.classification.is_terminal());
        prop_assert_eq!(dorf.confusion.accuracy(), 1.0);
        let n_pools = n.div_ceil(g);
        prop_assert!(dorf.stats.tests >= n_pools);
        prop_assert!(dorf.stats.tests <= n_pools + n);

        let (rows, cols) = square_grid(n);
        let arr = run_array_testing(&pop, &model, rows, cols, seed);
        prop_assert!(arr.classification.is_terminal());
        prop_assert_eq!(arr.confusion.accuracy(), 1.0);
        prop_assert!(arr.stats.stages <= 2);
    }

    /// Every selection rule terminates exactly with a perfect assay.
    #[test]
    fn all_selection_rules_exact_with_perfect_assay(
        n in 4usize..9,
        truth_bits in any::<u64>(),
        method_idx in 0usize..4,
    ) {
        let truth = State(truth_bits & ((1 << n) - 1));
        let profile = RiskProfile::Flat { n, p: 0.15 };
        let pop = Population::with_truth(&profile, truth);
        let model = BinaryDilutionModel::perfect();
        let selection = match method_idx {
            0 => SelectionMethod::HalvingPrefix,
            1 => SelectionMethod::HalvingGlobal,
            2 => SelectionMethod::Lookahead { width: 2 },
            _ => SelectionMethod::InformationGain { shortlist: 3 },
        };
        let cfg = EpisodeConfig {
            selection,
            ..EpisodeConfig::standard(7)
        };
        let r = run_episode(&pop, &model, &cfg);
        prop_assert!(r.classification.is_terminal(), "{:?}", selection);
        prop_assert_eq!(r.confusion.fp + r.confusion.fn_, 0);
        prop_assert_eq!(r.confusion.tp, truth.rank() as usize);
    }

    /// The Dorfman closed form is an upper envelope consistency check:
    /// simulated means stay within a few standard errors for a perfect
    /// assay (coarse bound; the exact agreement test lives in the crate).
    #[test]
    fn dorfman_formula_brackets_simulation(
        g in 2usize..7,
        p in 0.02f64..0.25,
    ) {
        let n = g * 4;
        let profile = RiskProfile::Flat { n, p };
        let model = BinaryDilutionModel::perfect();
        let reps = 60u64;
        let mut total = 0.0;
        for seed in 0..reps {
            let pop = Population::sample(&profile, 40_000 + seed);
            total += run_dorfman(&pop, &model, g, seed).stats.tests_per_subject();
        }
        let mean = total / reps as f64;
        let expected = dorfman_expected_tests_per_subject(g, p);
        prop_assert!(
            (mean - expected).abs() < 0.12,
            "g={} p={}: simulated {} vs formula {}",
            g, p, mean, expected
        );
    }

    /// Episode histories never test classified-negative-by-construction
    /// empty pools, and per-pool sizes respect the cap.
    #[test]
    fn episode_pools_respect_cap(
        n in 4usize..11,
        p in 0.02f64..0.2,
        seed in 0u64..200,
        cap in 2usize..6,
    ) {
        let profile = RiskProfile::Flat { n, p };
        let pop = Population::sample(&profile, seed);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = EpisodeConfig {
            max_pool_size: cap,
            ..EpisodeConfig::standard(seed)
        };
        let r = run_episode(&pop, &model, &cfg);
        for (pool, _) in &r.history {
            prop_assert!(!pool.is_empty());
            prop_assert!(pool.rank() as usize <= cap);
        }
    }
}
