//! Community surveillance at program scale.
//!
//! A health department screens 480 people per day in cohorts of 12 at 2%
//! prevalence. Each cohort runs a full sequential Bayesian episode; cohorts
//! execute as parallel tasks on the dataflow engine (SBGT's Spark-style
//! outer loop). The report compares assay consumption against individual
//! testing and shows the engine's stage metrics.
//!
//! Run: `cargo run --release --example surveillance`

use sbgt_repro::sbgt_engine::{Engine, EngineConfig};
use sbgt_repro::sbgt_response::BinaryDilutionModel;
use sbgt_repro::sbgt_sim::runner::EpisodeConfig;
use sbgt_repro::sbgt_sim::{run_surveillance, RiskProfile, SurveillanceConfig};

fn main() {
    let engine = Engine::new(EngineConfig::default());
    println!(
        "engine: {} executor thread(s), {} default partitions",
        engine.threads(),
        engine.default_partitions()
    );

    let cfg = SurveillanceConfig {
        cohorts: 40,
        profile: RiskProfile::Flat { n: 12, p: 0.02 },
        model: BinaryDilutionModel::pcr_like(),
        episode: EpisodeConfig::standard(0),
        base_seed: 7,
    };
    let report = run_surveillance(&engine, &cfg);

    println!();
    println!(
        "screened {} subjects in {} cohorts using {} assays",
        report.total_subjects, cfg.cohorts, report.total_tests
    );
    println!(
        "tests/subject: {:.3} ± {:.3}  (individual testing = 1.000, savings {:.1}%)",
        report.tests_per_subject.mean,
        report.tests_per_subject.sd,
        100.0 * (1.0 - report.tests_per_subject.mean)
    );
    println!(
        "stages/cohort: {:.2} ± {:.2}",
        report.stages.mean, report.stages.sd
    );
    println!(
        "classification: sensitivity {:.3}, specificity {:.3}, accuracy {:.1}%, {} undetermined",
        report.confusion.sensitivity(),
        report.confusion.specificity(),
        100.0 * report.confusion.accuracy(),
        report.confusion.undetermined
    );

    println!();
    println!("engine stage metrics (Spark-UI analogue):");
    let jobs = engine.metrics().jobs();
    let total_tasks: usize = jobs.iter().map(|j| j.tasks.len()).sum();
    println!("  {} jobs, {} tasks", jobs.len(), total_tasks);
    for job in jobs.iter().take(3) {
        println!(
            "  job `{}`: {} tasks, wall {:?}, max task {:?}, skew {:.2}",
            job.name,
            job.tasks.len(),
            job.wall,
            job.max_task_time(),
            job.skew()
        );
    }
}
