//! End-to-end telemetry: trace a surveillance run, export it, validate it.
//!
//! Runs a short specimen stream through the full service stack with
//! tracing at `Full` (explicitly, so the demo does not depend on the
//! `SBGT_TRACE` environment variable), then writes the two exporter
//! outputs and self-validates both with the in-repo parsers:
//!
//! * `target/obs/trace.json` — Chrome trace-event JSON. Open it in
//!   `chrome://tracing` or <https://ui.perfetto.dev>: one lane per
//!   engine/service thread, service rounds over session rounds over
//!   engine stages, counter tracks for ingress depth and live cohorts.
//! * `target/obs/metrics.prom` — Prometheus text exposition of the
//!   engine's metrics registry (stage families, fault counters, service
//!   counters, and the round-latency histogram).
//!
//! Run: `cargo run --release --example trace`

use std::time::Duration;

use sbgt_repro::sbgt_engine::obs::{parse_prometheus, render_chrome_trace, validate_chrome_trace};
use sbgt_repro::sbgt_engine::{EngineConfig, ObsConfig, SharedEngine};
use sbgt_repro::sbgt_service::{ServiceConfig, Specimen, SurveillanceService};
use sbgt_repro::sbgt_sim::traffic::{generate_arrivals, TrafficConfig};

fn main() {
    let engine = SharedEngine::new(
        EngineConfig::default()
            .with_threads(2)
            .with_obs(ObsConfig::full()),
    );
    let config = ServiceConfig {
        workers: 2,
        queue_capacity: 128,
        batch_size: 8,
        batch_deadline: Duration::from_millis(50),
        dense_threshold: 7,
        parts: 4,
        base_seed: 23,
        ..ServiceConfig::default()
    };

    let arrivals = generate_arrivals(&TrafficConfig::mixed(2000.0, 96, 5));
    let service = SurveillanceService::start(engine.clone(), config).unwrap();
    for a in &arrivals {
        service
            .submit(Specimen {
                risk: a.risk,
                infected: a.infected,
            })
            .unwrap();
    }
    let reports = service.drain();
    println!("classified {} cohort(s)\n", reports.len());

    // The timeline now ends with the recorder's own summary line.
    println!("{}", engine.render_timeline());

    let out_dir = std::path::Path::new("target/obs");
    std::fs::create_dir_all(out_dir).expect("create target/obs");

    // Chrome trace: render, self-validate, write.
    let trace = render_chrome_trace(engine.obs());
    let summary = validate_chrome_trace(&trace).expect("exported trace must validate");
    let trace_path = out_dir.join("trace.json");
    std::fs::write(&trace_path, &trace).expect("write trace.json");
    println!(
        "wrote {} ({} bytes): {} span(s), {} counter sample(s), {} mark(s) \
         across {} lane(s), max depth {}",
        trace_path.display(),
        trace.len(),
        summary.spans,
        summary.counters,
        summary.marks,
        summary.lanes,
        summary.max_depth,
    );

    // Prometheus scrape: render, self-validate, write.
    let prom = engine.metrics().render_prometheus();
    let samples = parse_prometheus(&prom).expect("exported scrape must parse");
    let prom_path = out_dir.join("metrics.prom");
    std::fs::write(&prom_path, &prom).expect("write metrics.prom");
    println!(
        "wrote {} ({} bytes): {} sample(s)",
        prom_path.display(),
        prom.len(),
        samples.len(),
    );

    // The smoke gate: a traced service run must actually produce spans,
    // counters, and a consistent latency histogram.
    assert!(summary.spans > 0, "no spans recorded");
    assert!(summary.counters > 0, "no counter samples recorded");
    let count = samples
        .iter()
        .find(|s| s.name == "sbgt_round_latency_seconds_count")
        .expect("latency histogram exported");
    let inf_bucket = samples
        .iter()
        .find(|s| s.name == "sbgt_round_latency_seconds_bucket" && s.label("le") == Some("+Inf"))
        .expect("+Inf bucket exported");
    assert_eq!(count.value, inf_bucket.value, "histogram count invariant");
    println!("\ntrace validated: OK");
}
