//! Adaptive surveillance through an epidemic wave.
//!
//! The true prevalence grows 1.6x per wave while the program screens
//! cohorts continuously. The adaptive program re-estimates prevalence from
//! each wave's classifications and feeds it into the next wave's prior and
//! thresholds; the frozen program keeps its day-one prior. Watch the
//! adaptive estimate track the epidemic and the frozen program's
//! sensitivity degrade.
//!
//! Run: `cargo run --release --example adaptive_stream`

use sbgt_repro::sbgt_engine::{Engine, EngineConfig};
use sbgt_repro::sbgt_sim::{run_stream, StreamConfig};

fn main() {
    let engine = Engine::new(EngineConfig::default());
    let base = StreamConfig {
        waves: 7,
        cohorts_per_wave: 12,
        cohort_size: 10,
        ..StreamConfig::standard()
    };

    for adaptive in [true, false] {
        let cfg = StreamConfig {
            adaptive,
            ..base.clone()
        };
        println!(
            "=== {} program ===",
            if adaptive { "ADAPTIVE" } else { "FROZEN-PRIOR" }
        );
        println!(
            "{:>5} {:>8} {:>10} {:>8} {:>8} {:>10} {:>12}",
            "wave", "true p", "assumed p", "sens", "spec", "tests", "t/subject"
        );
        for r in run_stream(&engine, &cfg) {
            println!(
                "{:>5} {:>8.3} {:>10.3} {:>8.3} {:>8.3} {:>10} {:>12.3}",
                r.wave,
                r.true_prevalence,
                r.used_estimate,
                r.confusion.sensitivity(),
                r.confusion.specificity(),
                r.tests,
                r.tests as f64 / r.subjects as f64
            );
        }
        println!();
    }
    println!(
        "the adaptive program's assumed prevalence follows the epidemic; the frozen\n\
         program keeps pooling as if prevalence were still low, spending its tests on\n\
         pools that keep coming back positive."
    );
}
