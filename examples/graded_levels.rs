//! Graded infection levels: beyond binary classification.
//!
//! The lattice framework is not limited to positive/negative: each subject
//! can occupy ordered levels (here negative / low viral load / high viral
//! load), the joint state space being a product of chains. Pooled tests
//! respond to the *total* analyte level. This example classifies a small
//! cohort into three levels from pooled binary outcomes alone and prints
//! the per-level posterior.
//!
//! Run: `cargo run --release --example graded_levels`

use sbgt_repro::sbgt_lattice::{ChainPosterior, ChainShape};
use sbgt_repro::sbgt_response::GradedBinaryModel;

fn main() {
    // Five subjects, three levels each: 3^5 = 243 joint states.
    let n = 5;
    let shape = ChainShape::uniform(n, 3);
    println!(
        "{} subjects × 3 levels = {} joint lattice states",
        n,
        shape.num_states()
    );

    // Prior: 90% negative, 7% low, 3% high.
    let priors = vec![vec![0.90, 0.07, 0.03]; n];
    let mut post = ChainPosterior::from_priors(shape.clone(), &priors);
    let model = GradedBinaryModel::pcr_like();

    // Hidden truth: subject 1 low (level 1), subject 3 high (level 2).
    let truth = [0u8, 1, 0, 2, 0];
    println!("hidden truth: {truth:?} (0 = negative, 1 = low, 2 = high)\n");

    // A fixed panel of pools; the lab reports a deterministic outcome from
    // the expected detection probability (outcome = detect prob > 1/2) to
    // keep the example reproducible without an RNG.
    let pools: Vec<Vec<usize>> = vec![
        vec![0, 1, 2, 3, 4],
        vec![0, 1],
        vec![2, 3],
        vec![3],
        vec![1],
        vec![0, 4],
        vec![1, 3],
    ];
    for pool in &pools {
        let total: u32 = pool.iter().map(|&i| u32::from(truth[i])).sum();
        let max = shape.max_pool_level(pool);
        let outcome = model.positive_prob(total, max) > 0.5;
        let table = model.likelihood_table(outcome, max);
        post.mul_likelihood_fused(pool, &table);
        post.try_normalize().expect("consistent outcomes");
        println!(
            "pool {:?}: outcome {}  (entropy now {:.3} nats)",
            pool,
            if outcome { "POSITIVE" } else { "negative" },
            post.entropy()
        );
    }

    println!("\nposterior level marginals:");
    println!(
        "{:>8} {:>10} {:>10} {:>10}  truth",
        "subject", "P(neg)", "P(low)", "P(high)"
    );
    let marginals = post.level_marginals();
    for (i, row) in marginals.iter().enumerate() {
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>10.3}  {}",
            i, row[0], row[1], row[2], truth[i]
        );
    }
    let (map, p) = post.map_state();
    println!(
        "\nMAP joint state: {:?} with probability {:.3}",
        shape.decode(map),
        p
    );
}
