//! Quickstart: drive one cohort from prior to classification.
//!
//! A clinic has 16 intake samples: twelve routine (1% risk) and four from a
//! contact-traced group (20% risk). The assay is PCR-like with dilution.
//! SBGT proposes pools; a simulated lab runs them; the loop stops when every
//! subject is classified at 99% confidence.
//!
//! Run: `cargo run --release --example quickstart`

use sbgt_repro::sbgt::prelude::*;
use sbgt_repro::sbgt_sim::{Population, RiskProfile};

fn main() {
    // Cohort: heterogeneous prior risks (a headline feature of the
    // Bayesian framework — pooling adapts to the risk structure).
    let profile = RiskProfile::Groups(vec![(12, 0.01), (4, 0.20)]);
    let population = Population::sample(&profile, 2024);
    println!(
        "ground truth (hidden from the algorithm): {} positives {}",
        population.n_positive(),
        population.truth()
    );

    let model = BinaryDilutionModel::pcr_like();
    let mut session = SbgtSession::new(population.prior(), model, SbgtConfig::default());

    // The lab oracle: samples an outcome from the assay model against the
    // hidden ground truth.
    let mut rng_state = 7u64;
    let mut lab = |pool: State| {
        // Tiny deterministic RNG so the example is reproducible without
        // threading a generator through the closure.
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = ((rng_state >> 33) as f64) / ((1u64 << 31) as f64);
        let k = population.positives_in(pool);
        let p_pos = {
            use sbgt_repro::sbgt_response::BinaryOutcomeModel;
            model.positive_prob(k, pool.rank())
        };
        u < p_pos
    };

    let outcome = session.run_to_classification(&mut lab);

    println!();
    println!("{}", outcome.to_table());
    println!(
        "individual testing would have used {} tests; SBGT used {} ({}% savings) in {} stages",
        outcome.subjects,
        outcome.tests,
        (100.0 * (1.0 - outcome.tests_per_subject())).round(),
        outcome.stages,
    );

    // Full statistical readout of the final posterior.
    let report = session.report(3);
    println!(
        "posterior entropy {:.4} nats; MAP state {} (p = {:.3}); E[#positives] = {:.2}",
        report.entropy, report.map_state.0, report.map_state.1, report.expected_positives
    );
}
