//! Pool planner — the reproduction of the method paper's web calculator.
//!
//! The Biostatistics companion paper ships a calculator that helps a lab
//! decide *whether and how to pool* under its local conditions: cohort
//! size, prevalence, assay sensitivity/specificity, dilution behaviour,
//! and confidence thresholds. This example does the same from the command
//! line: it simulates the Bayesian procedure at the given operating point,
//! compares it against individual testing and the analytically-optimal
//! Dorfman scheme, and prints a recommendation.
//!
//! Run (defaults shown):
//!   cargo run --release --example pool_planner -- \
//!       [n=12] [prevalence=0.02] [sensitivity=0.99] [specificity=0.995] [alpha=4.0]

use sbgt_repro::sbgt_bayes::ClassificationRule;
use sbgt_repro::sbgt_response::{BinaryDilutionModel, Dilution};
use sbgt_repro::sbgt_sim::runner::EpisodeConfig;
use sbgt_repro::sbgt_sim::{
    dorfman_expected_tests_per_subject, optimal_dorfman_pool, run_episode, ConfusionMatrix,
    Population, RiskProfile, SummaryStats,
};

fn arg(n: usize, default: f64) -> f64 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = arg(1, 12.0) as usize;
    let prevalence = arg(2, 0.02);
    let sensitivity = arg(3, 0.99);
    let specificity = arg(4, 0.995);
    let alpha = arg(5, 4.0);
    assert!((2..=20).contains(&n), "cohort size must be in 2..=20");
    assert!(prevalence > 0.0 && prevalence < 0.5);

    let model = BinaryDilutionModel::new(sensitivity, specificity, Dilution::Exponential { alpha });
    println!("pool planner — operating point:");
    println!(
        "  cohort {n}, prevalence {prevalence}, sens {sensitivity}, spec {specificity}, \
         exponential dilution α={alpha}"
    );
    println!();

    // Bayesian procedure, simulated.
    let reps = 60u64;
    let profile = RiskProfile::Flat { n, p: prevalence };
    let episode = EpisodeConfig {
        rule: ClassificationRule::new(0.99, (prevalence / 10.0).min(0.01)),
        ..EpisodeConfig::standard(0)
    };
    let mut confusion = ConfusionMatrix::default();
    let mut tps = Vec::new();
    let mut stages = Vec::new();
    for seed in 0..reps {
        let pop = Population::sample(&profile, 31_000 + seed);
        let mut cfg = episode;
        cfg.seed = seed;
        let r = run_episode(&pop, &model, &cfg);
        confusion.merge(&r.confusion);
        tps.push(r.stats.tests_per_subject());
        stages.push(r.stats.stages as f64);
    }
    let t = SummaryStats::from_samples(&tps);
    let s = SummaryStats::from_samples(&stages);

    // Dorfman, analytic (idealized: no dilution penalty in the formula).
    let (g_opt, dorfman_tps) = optimal_dorfman_pool(prevalence, n);

    println!("strategy comparison (tests per subject; individual = 1.000):");
    println!(
        "  Bayesian halving : {:.3} ± {:.3}  in {:.1} ± {:.1} stages; \
         sens {:.3}, spec {:.3}, accuracy {:.1}%",
        t.mean,
        t.sd,
        s.mean,
        s.sd,
        confusion.sensitivity(),
        confusion.specificity(),
        100.0 * confusion.accuracy()
    );
    println!(
        "  Dorfman (g = {g_opt})   : {:.3}  (analytic, perfect-assay idealization)",
        dorfman_tps
    );
    println!("  individual       : 1.000  in 1 stage");
    println!();

    // Recommendation logic: pooling pays when the Bayesian tests/subject
    // undercuts individual testing with acceptable sensitivity.
    let sens_ok = confusion.sensitivity() >= 0.9;
    if t.mean < 0.8 && sens_ok {
        println!(
            "recommendation: POOL — expect ~{:.0}% assay savings at this operating point.",
            100.0 * (1.0 - t.mean)
        );
    } else if !sens_ok {
        println!(
            "recommendation: CAUTION — dilution at this pool size costs sensitivity \
             ({:.3}); consider smaller max pools or tighter thresholds.",
            confusion.sensitivity()
        );
    } else {
        println!(
            "recommendation: INDIVIDUAL TESTING — prevalence too high for pooling to pay \
             (Dorfman bound {:.3}, Bayesian {:.3}).",
            dorfman_expected_tests_per_subject(g_opt, prevalence),
            t.mean
        );
    }
}
