//! Look-ahead pool selection: trading assays for lab turnaround time.
//!
//! Sequential halving is assay-optimal but each stage costs a full lab
//! round-trip (hours for PCR). The look-ahead rules pick several pools per
//! stage *before* any outcome is known. This example sweeps the stage
//! width and prints the stages/tests trade-off curve (experiment E8's
//! figure as text).
//!
//! Run: `cargo run --release --example lookahead_stages`

use sbgt_repro::sbgt_response::BinaryDilutionModel;
use sbgt_repro::sbgt_sim::runner::{EpisodeConfig, SelectionMethod};
use sbgt_repro::sbgt_sim::{run_episode, Population, RiskProfile, SummaryStats};

fn main() {
    let profile = RiskProfile::Flat { n: 12, p: 0.05 };
    let model = BinaryDilutionModel::pcr_like();
    let reps = 30;

    println!("N=12, p=0.05, PCR-like assay, {reps} replicates per width");
    println!(
        "{:>12} {:>14} {:>14} {:>16} {:>18}",
        "stage width", "stages", "tests", "tests/subject", "turnaround (h)*"
    );
    let mut base_stages = None;
    for width in [1usize, 2, 3, 4] {
        let mut stages = Vec::new();
        let mut tests = Vec::new();
        for seed in 0..reps {
            let pop = Population::sample(&profile, 900 + seed);
            let cfg = EpisodeConfig {
                selection: if width == 1 {
                    SelectionMethod::HalvingPrefix
                } else {
                    SelectionMethod::Lookahead { width }
                },
                ..EpisodeConfig::standard(seed)
            };
            let r = run_episode(&pop, &model, &cfg);
            stages.push(r.stats.stages as f64);
            tests.push(r.stats.tests as f64);
        }
        let s = SummaryStats::from_samples(&stages);
        let t = SummaryStats::from_samples(&tests);
        base_stages.get_or_insert(s.mean);
        // One PCR round ≈ 4 hours of lab turnaround.
        println!(
            "{:>12} {:>8.2} ± {:<4.2} {:>8.2} ± {:<4.2} {:>14.3} {:>16.1}",
            width,
            s.mean,
            s.sd,
            t.mean,
            t.sd,
            t.mean / 12.0,
            s.mean * 4.0
        );
    }
    println!();
    println!("*assuming a 4-hour assay round; wider stages buy turnaround with extra assays");
}
