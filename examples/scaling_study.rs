//! Kernel scaling: how the three SBGT operation classes behave as the
//! lattice grows, and what the baseline framework would pay.
//!
//! A miniature, human-readable version of experiments E2–E4 (the full
//! sweeps live in `crates/bench`). Useful as a first smoke test that the
//! framework's complexity claims hold on your machine.
//!
//! Run: `cargo run --release --example scaling_study`

use std::time::Instant;

use sbgt_repro::sbgt_bayes::{analyze_par, update_dense_par, Observation, Prior};
use sbgt_repro::sbgt_lattice::kernels::ParConfig;
use sbgt_repro::sbgt_lattice::State;
use sbgt_repro::sbgt_response::{BinaryDilutionModel, ResponseModel};
use sbgt_repro::sbgt_select::select_halving_prefix_par;

fn main() {
    let model = BinaryDilutionModel::pcr_like();
    let cfg = ParConfig::default();

    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12}",
        "N", "states", "update", "selection", "analysis"
    );
    for n in [12usize, 14, 16, 18, 20] {
        let risks: Vec<f64> = (0..n).map(|i| 0.01 + 0.1 * (i as f64) / n as f64).collect();
        let mut post = Prior::from_risks(&risks).to_dense();
        let pool = State::from_subjects((0..6.min(n)).step_by(2));
        let _ = model.likelihood_table(true, pool.rank());

        let t0 = Instant::now();
        update_dense_par(&mut post, &model, &Observation::new(pool, true), cfg).unwrap();
        let t_update = t0.elapsed();

        let order: Vec<usize> = (0..n).collect();
        let t0 = Instant::now();
        let sel = select_halving_prefix_par(&post, &order, 16, cfg).unwrap();
        let t_select = t0.elapsed();

        let t0 = Instant::now();
        let report = analyze_par(&post, 5, cfg);
        let t_analyze = t0.elapsed();

        println!(
            "{:>4} {:>12} {:>12?} {:>12?} {:>12?}   (pool {}, H = {:.2} nats)",
            n,
            1u64 << n,
            t_update,
            t_select,
            t_analyze,
            sel.pool,
            report.entropy
        );
    }
    println!();
    println!("each operation is Θ(2^N) with a one-pass kernel; doubling N+1 should ~double time.");
}
