//! The surveillance service end-to-end: stream specimens in, get cohort
//! reports out.
//!
//! A clinic submits specimens one at a time as couriers arrive. The
//! service batches them into cohorts of 8 (closing a partial batch after
//! a deadline), schedules Bayesian sessions fairly across two workers on
//! one shared engine, and — halfway through — suspends to a checkpoint
//! and resumes, without changing a single output bit. The engine's
//! service summary at the end shows the queueing view.
//!
//! Run: `cargo run --release --example service`

use std::time::Duration;

use sbgt_repro::sbgt_engine::{timeline::render_service_summary, EngineConfig, SharedEngine};
use sbgt_repro::sbgt_service::{ServiceConfig, Specimen, SurveillanceService};
use sbgt_repro::sbgt_sim::traffic::{generate_arrivals, TrafficConfig};

fn main() {
    let engine = SharedEngine::new(EngineConfig::default().with_threads(2));
    let config = ServiceConfig {
        workers: 2,
        queue_capacity: 128,
        batch_size: 8,
        batch_deadline: Duration::from_millis(50),
        dense_threshold: 7,
        parts: 4,
        base_seed: 11,
        ..ServiceConfig::default()
    };

    // Open-loop Poisson traffic: 120 specimens from a two-class risk mix
    // (85% routine at 2% risk, 15% high-risk contacts at 12%).
    let arrivals = generate_arrivals(&TrafficConfig::mixed(2000.0, 120, 3));

    let service = SurveillanceService::start(engine.clone(), config.clone()).unwrap();
    for a in arrivals.iter().take(60) {
        service
            .submit(Specimen {
                risk: a.risk,
                infected: a.infected,
            })
            .unwrap();
    }

    // Shift change: freeze every live cohort at its next round boundary.
    let checkpoint = service.suspend();
    println!(
        "suspended: {} cohort(s) classified, {} frozen mid-session",
        checkpoint.completed.len(),
        checkpoint.cohorts.len()
    );

    // Restore and keep going — bit-for-bit, as if nothing happened.
    let service = SurveillanceService::resume(engine.clone(), config, checkpoint).unwrap();
    for a in arrivals.iter().skip(60) {
        service
            .submit(Specimen {
                risk: a.risk,
                infected: a.infected,
            })
            .unwrap();
    }
    let reports = service.drain();

    println!();
    let mut positives = 0usize;
    let mut tests = 0usize;
    for report in &reports {
        positives += report
            .outcome
            .classification
            .statuses
            .iter()
            .filter(|s| matches!(s, sbgt_repro::sbgt_bayes::SubjectStatus::Positive))
            .count();
        tests += report.outcome.tests;
    }
    let subjects: usize = reports.iter().map(|r| r.subjects).sum();
    println!(
        "classified {subjects} subjects in {} cohorts: {positives} positive, \
         {tests} assays ({:.3} tests/subject)",
        reports.len(),
        tests as f64 / subjects as f64
    );

    println!();
    print!(
        "{}",
        render_service_summary(&engine.metrics().service_stats())
    );
}
