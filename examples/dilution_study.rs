//! Dilution effects: how pooling limits depend on the assay's attenuation
//! curve, and what that does to group-testing efficiency.
//!
//! Reproduces the method paper's qualitative story: without dilution
//! modeling, large pools look free; under strong dilution, sensitivity
//! collapses with pool size and the Bayesian framework must (and does)
//! adapt pool sizes automatically.
//!
//! Run: `cargo run --release --example dilution_study`

use sbgt_repro::sbgt_response::calibrate::{
    fit_exponential_alpha, max_pool_for_sensitivity, DetectionPoint,
};
use sbgt_repro::sbgt_response::{BinaryDilutionModel, BinaryOutcomeModel, Dilution};
use sbgt_repro::sbgt_sim::runner::EpisodeConfig;
use sbgt_repro::sbgt_sim::{run_episode, Population, RiskProfile, SummaryStats};

fn main() {
    let curves = [
        ("none", Dilution::None),
        ("exponential(α=4)", Dilution::Exponential { alpha: 4.0 }),
        (
            "hill(γ=2, κ=0.3)",
            Dilution::Hill {
                gamma: 2.0,
                kappa: 0.3,
            },
        ),
        ("linear", Dilution::Linear),
    ];

    println!("single-positive detection probability by pool size:");
    println!(
        "{:>20} {:>6} {:>6} {:>6} {:>6}",
        "curve", "n=1", "n=4", "n=8", "n=16"
    );
    for (name, dilution) in curves {
        let m = BinaryDilutionModel::new(0.99, 0.995, dilution);
        println!(
            "{:>20} {:>6.3} {:>6.3} {:>6.3} {:>6.3}",
            name,
            m.positive_prob(1, 1),
            m.positive_prob(1, 4),
            m.positive_prob(1, 8),
            m.positive_prob(1, 16)
        );
    }

    println!();
    println!("largest pool keeping single-positive sensitivity ≥ 0.75:");
    for (name, dilution) in curves {
        match max_pool_for_sensitivity(0.99, dilution, 0.75, 64) {
            Some(n) => println!("  {name:>20}: {n}"),
            None => println!("  {name:>20}: unreachable even neat"),
        }
    }

    // Calibration demo: recover the exponential α from noisy spike-in data.
    let truth = Dilution::Exponential { alpha: 4.0 };
    let points: Vec<DetectionPoint> = [2u32, 4, 8, 16, 32]
        .iter()
        .map(|&n| DetectionPoint {
            pool_size: n,
            rate: 0.99 * truth.attenuation(1, n),
        })
        .collect();
    println!();
    println!(
        "calibration: fitted α = {:.2} from 5 spike-in points (truth 4.0)",
        fit_exponential_alpha(&points, 0.99)
    );

    // Efficiency impact: same cohorts, different dilution regimes.
    println!();
    println!("episode cost at N=12, p=0.05 (20 replicates):");
    println!(
        "{:>20} {:>14} {:>12} {:>10}",
        "curve", "tests/subject", "stages", "accuracy"
    );
    for (name, dilution) in curves {
        let model = BinaryDilutionModel::new(0.99, 0.995, dilution);
        let profile = RiskProfile::Flat { n: 12, p: 0.05 };
        let mut tps = Vec::new();
        let mut stages = Vec::new();
        let mut correct = 0usize;
        let mut classified = 0usize;
        for seed in 0..20 {
            let pop = Population::sample(&profile, 500 + seed);
            let r = run_episode(&pop, &model, &EpisodeConfig::standard(seed));
            tps.push(r.stats.tests_per_subject());
            stages.push(r.stats.stages as f64);
            correct += r.confusion.tp + r.confusion.tn;
            classified += r.confusion.total() - r.confusion.undetermined;
        }
        let t = SummaryStats::from_samples(&tps);
        let s = SummaryStats::from_samples(&stages);
        println!(
            "{:>20} {:>7.3} ± {:<4.3} {:>6.1} ± {:<4.1} {:>8.1}%",
            name,
            t.mean,
            t.sd,
            s.mean,
            s.sd,
            100.0 * correct as f64 / classified.max(1) as f64
        );
    }
}
