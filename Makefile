# Offline verification pipeline. The build environment has no network
# access; all dependencies are vendored (see vendor/README.md), so every
# target below must pass with `CARGO_NET_OFFLINE=true`.

CARGO := CARGO_NET_OFFLINE=true cargo

.PHONY: verify fmt fmt-check clippy build test chaos service-smoke obs-smoke bench bench-smoke kernels-smoke plancache-smoke soak-smoke approx-smoke fleet-obs-smoke

verify: fmt-check clippy build test chaos service-smoke obs-smoke bench-smoke kernels-smoke plancache-smoke soak-smoke approx-smoke fleet-obs-smoke
	@echo "verify: OK"

fmt:
	$(CARGO) fmt --all

fmt-check:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release

test:
	$(CARGO) test --workspace -q

# Fault-injection suite: seeded panics/stragglers/poisons into every stage
# variant of the posterior hot loop must recover bit-for-bit (offline,
# in-process — no network or external chaos tooling involved).
chaos:
	$(CARGO) test -p sbgt --test chaos_equivalence -q
	$(CARGO) test -p sbgt-engine -q -- stage:: chaos:: retry::

# Surveillance-service smoke: a short seeded load through the full service
# stack (bounded ingress -> batcher -> round-robin workers -> shared
# engine) must drain with every cohort classified and nothing shed.
service-smoke:
	$(CARGO) test -p sbgt-service --test smoke -q

# Telemetry smoke: a fully-traced service run must export a Chrome trace
# and a Prometheus scrape that both pass the in-repo validators (the
# example asserts this and exits nonzero otherwise), writing the
# artifacts to target/obs/ for inspection.
obs-smoke:
	$(CARGO) run --release --example trace

# Criterion benches (plain-text report; pass FILTER=<substring> to select).
bench:
	$(CARGO) bench -p sbgt-bench $(if $(FILTER),--bench $(FILTER),)

# One-shot smoke of the look-ahead selection bench: `--test` runs every
# benchmark once without measurement, and SBGT_BENCH_SMOKE=1 shrinks the
# sweep to a 4096-state lattice — seconds, not minutes, so it rides in
# `verify` to keep the bench harness compiling and running.
bench-smoke:
	SBGT_BENCH_SMOKE=1 $(CARGO) bench -p sbgt-bench --bench lookahead -- --test
	SBGT_BENCH_SMOKE=1 $(CARGO) bench -p sbgt-bench --bench service -- --test
	SBGT_BENCH_SMOKE=1 $(CARGO) test -p sbgt --release --test obs_overhead -q

# Plan-cache smoke: the cached≡live equivalence harness (dense, sharded,
# hybrid-sparse, mid-session eviction, quantization collisions) plus one
# smoke pass of the warm/cold service bench, so the memoized decision
# trees stay bit-for-bit honest in `verify`.
plancache-smoke:
	$(CARGO) test -p sbgt-select --test plancache_equivalence -q
	SBGT_BENCH_SMOKE=1 $(CARGO) bench -p sbgt-bench --bench plancache -- --test

# Shard-fabric smoke: a short seeded soak through the real wire path —
# 3 shard processes behind the binary protocol, client-side cohort
# formation on the consistent-hash ring, one mid-run drain whose live
# cohorts relocate by checkpoint handoff. The binary itself asserts the
# specimen ledger balances (zero lost, including across the drain), that
# the fleet scrape stitches one validated Chrome trace across all three
# processes (artifacts under target/obs/), and bounds the shed rate,
# exiting nonzero otherwise.
soak-smoke:
	$(CARGO) run --release -p sbgt-bench --bin soak -- --smoke

# Fleet-observability smoke: the in-process loopback version of the same
# bar — trace contexts ride the wire trailers, a relocated cohort leaves
# spans on two trace processes under one deterministic trace id, the
# FleetScraper's histogram merge equals the sum of the shard scrapes, and
# the engine-side export/overhead contracts (SBGT_TRACE env gating,
# tracing-off wire equivalence) hold.
fleet-obs-smoke:
	$(CARGO) test -p sbgt-net --test fleet_obs -q
	$(CARGO) test -p sbgt-engine --test obs_export -q

# SIMD/sparse kernel smoke: run the per-round kernels bench once in smoke
# mode, then replay the SIMD-vs-scalar and sparse-equivalence suites with
# the dispatcher forced to the scalar path (SBGT_FORCE_SCALAR=1), so a CI
# machine without AVX2/AVX-512 still validates both sides of the dispatch.
kernels-smoke:
	SBGT_BENCH_SMOKE=1 $(CARGO) bench -p sbgt-bench --bench kernels -- --test
	SBGT_FORCE_SCALAR=1 $(CARGO) test -p sbgt-lattice --test properties -q
	SBGT_FORCE_SCALAR=1 $(CARGO) test -p sbgt --test sparse_equivalence -q

# Approximate-backend smoke: the exact-vs-approx accuracy harness (>=99%
# per-specimen agreement with the dense reference, assay budget within 5%,
# BP marginals on top of the exact posterior, seeded particle
# reproducibility across snapshot/restore) plus one smoke pass of the
# large-cohort bench so the past-the-2^N-wall service path stays green.
approx-smoke:
	$(CARGO) test -p sbgt-approx --test accuracy -q
	SBGT_BENCH_SMOKE=1 $(CARGO) bench -p sbgt-bench --bench approx -- --test
