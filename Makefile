# Offline verification pipeline. The build environment has no network
# access; all dependencies are vendored (see vendor/README.md), so every
# target below must pass with `CARGO_NET_OFFLINE=true`.

CARGO := CARGO_NET_OFFLINE=true cargo

.PHONY: verify fmt fmt-check clippy build test chaos bench

verify: fmt-check clippy build test chaos
	@echo "verify: OK"

fmt:
	$(CARGO) fmt --all

fmt-check:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release

test:
	$(CARGO) test --workspace -q

# Fault-injection suite: seeded panics/stragglers/poisons into every stage
# variant of the posterior hot loop must recover bit-for-bit (offline,
# in-process — no network or external chaos tooling involved).
chaos:
	$(CARGO) test -p sbgt --test chaos_equivalence -q
	$(CARGO) test -p sbgt-engine -q -- stage:: chaos:: retry::

# Criterion benches (plain-text report; pass FILTER=<substring> to select).
bench:
	$(CARGO) bench -p sbgt-bench $(if $(FILTER),--bench $(FILTER),)
