# Offline verification pipeline. The build environment has no network
# access; all dependencies are vendored (see vendor/README.md), so every
# target below must pass with `CARGO_NET_OFFLINE=true`.

CARGO := CARGO_NET_OFFLINE=true cargo

.PHONY: verify fmt fmt-check clippy build test bench

verify: fmt-check clippy build test
	@echo "verify: OK"

fmt:
	$(CARGO) fmt --all

fmt-check:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release

test:
	$(CARGO) test --workspace -q

# Criterion benches (plain-text report; pass FILTER=<substring> to select).
bench:
	$(CARGO) bench -p sbgt-bench $(if $(FILTER),--bench $(FILTER),)
