//! Offline vendored subset of the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, [`Strategy`] with
//! `prop_map` and `boxed`, `any::<T>()`, integer/float range strategies,
//! tuple strategies, [`prelude::Just`], `prop::collection::vec`,
//! [`prop_oneof!`], `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, and
//! `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs (via the panic
//!   message and the `PROPTEST_CASE` line printed on failure) but is not
//!   minimized.
//! * **Deterministic seeding** — case `i` of every test derives its RNG
//!   from a fixed base seed and `i`, so failures reproduce without a
//!   persistence file. Set `PROPTEST_BASE_SEED` to explore other streams.
//! * `prop_assume!` skips the case (continuing the loop) rather than
//!   feeding back into generation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration (`proptest::test_runner::Config` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Base seed for case derivation (`PROPTEST_BASE_SEED` env override).
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_BASE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5BD1E995)
}

/// RNG for one test case.
pub fn case_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(base_seed() ^ case.wrapping_mul(0x9E3779B97F4A7C15))
}

pub mod strategy {
    use super::*;

    /// A generator of random values (`proptest::strategy::Strategy` subset;
    /// generation only, no value trees / shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<W, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> W,
        {
            Map { base: self, f }
        }

        /// Filter generated values; `generate` retries until `f` accepts
        /// (bounded; panics if the predicate is pathologically selective).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                f,
                whence,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, W> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> W,
    {
        type Value = W;
        fn generate(&self, rng: &mut StdRng) -> W {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        base: S,
        f: F,
        whence: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.base.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({}) rejected 1000 consecutive values",
                self.whence
            );
        }
    }

    /// Strategy yielding one fixed value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut StdRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (backs [`crate::prop_oneof!`]).
    pub struct OneOf<V> {
        /// The alternatives (must be non-empty).
        pub options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            assert!(
                !self.options.is_empty(),
                "prop_oneof! needs at least one option"
            );
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )+};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);
}

pub mod arbitrary {
    use super::*;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random()
                }
            }
        )+};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

    /// Strategy produced by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> crate::strategy::Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// The `prop::` module namespace (`proptest::prelude::prop`).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::RngExt;

        /// Element-count specification accepted by [`vec`]: a fixed size, a
        /// `Range<usize>`, or a `RangeInclusive<usize>`.
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

pub mod test_runner {
    pub use super::ProptestConfig as Config;
}

pub mod prelude {
    pub use super::arbitrary::{any, Arbitrary};
    pub use super::prop;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Skip the rest of the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Signal handled by the proptest! runner loop.
            continue;
        }
    };
}

/// Assert inside a property (panics with the formatted message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            options: vec![$($crate::strategy::Strategy::boxed($strategy)),+],
        }
    };
}

/// Declare property tests (`proptest::proptest!` subset: `name in strategy`
/// bindings, optional leading `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)) => {};
    (@impl ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..u64::from(config.cases) {
                let mut proptest_rng = $crate::case_rng(case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut proptest_rng);)+
                // A `prop_assume!` failure `continue`s this loop; assertion
                // failures panic with the case number recoverable from
                // PROPTEST_BASE_SEED + case order.
                $body
            }
        }
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn tuples_and_ranges(x in 0usize..10, (a, b) in (0.0f64..1.0, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&a));
            let _ = b;
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(1u32),
            (10u32..20).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 1 || (20..40).contains(&v), "v = {v}");
        }

        #[test]
        fn assume_skips(mask in any::<u64>()) {
            prop_assume!(mask != 0);
            prop_assert!(mask.count_ones() >= 1);
        }
    }

    #[test]
    fn fixed_size_vec() {
        use crate::strategy::Strategy;
        let mut rng = crate::case_rng(0);
        let v = prop::collection::vec(any::<bool>(), 4).generate(&mut rng);
        assert_eq!(v.len(), 4);
    }
}
