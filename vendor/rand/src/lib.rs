//! Offline vendored subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the thin slice of the `rand` API it actually uses:
//! [`Rng`] / [`RngExt`] (`random`, `random_range`, `random_bool`),
//! [`SeedableRng`] (`seed_from_u64`, `from_seed`), and [`rngs::StdRng`].
//!
//! `StdRng` is a deterministic xoshiro256++ generator seeded through
//! SplitMix64, so seeded streams are reproducible across runs and platforms
//! — the property every simulation and test in this workspace relies on.
//! It is **not** cryptographically secure, which matches how the workspace
//! uses it (simulation and property testing only).

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a generator's raw 64-bit output.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Ranges a generator can sample uniformly. Mirrors `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(reject_sample(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i64).wrapping_add(reject_sample(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

/// Uniform `[0, bound)` by rejection from the top of the 64-bit stream
/// (Lemire-style multiply-shift without bias).
#[inline]
fn reject_sample<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Power-of-two fast path keeps low-discrepancy masks exact.
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Core random-number-generator interface: the raw bit stream.
pub trait Rng {
    /// Next raw 64 bits from the stream.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience samplers over any [`Rng`] (`random`, `random_range`,
/// `random_bool`), blanket-implemented so importing `RngExt` alone makes the
/// methods available on every generator.
pub trait RngExt: Rng {
    /// Uniform sample of `T` (full integer range, `[0,1)` for floats).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to [0,1]).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 key expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and as a cheap standalone stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Advance and return the next value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, slot) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *slot = u64::from_le_bytes(bytes);
            }
            // The all-zero state is a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_are_bounded_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.random_range(2usize..9);
            assert!((2..9).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit");
        for _ in 0..100 {
            let v = rng.random_range(1usize..=4);
            assert!((1..=4).contains(&v));
        }
        let x = rng.random_range(-5i64..5);
        assert!((-5..5).contains(&x));
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }
}
