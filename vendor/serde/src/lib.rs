//! Offline vendored subset of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` for forward
//! compatibility but never drives them through a serializer (no data-format
//! crate is an allowed dependency). This facade therefore exposes marker
//! traits plus the no-op derive macros from the vendored `serde_derive`;
//! swapping in real serde later requires no source changes in the
//! workspace, only a dependency change.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
