//! Offline vendored subset of the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). A poisoned std lock means a panic
//! happened while holding it; matching parking_lot semantics, we continue
//! with the inner data rather than propagating poison.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // no poison propagation
    }
}
