//! Offline vendored subset of the `criterion` benchmark harness.
//!
//! Implements the API surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::measurement_time`] / `bench_function` /
//! `bench_with_input` / `finish`, [`Bencher::iter`], [`BenchmarkId::new`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with a simple wall-clock measurement loop and a plain-text
//! median/mean report instead of statistical analysis and HTML output.
//!
//! Measurement model: per benchmark, one warm-up batch, then `sample_size`
//! timed batches (batch iteration count auto-calibrated so a batch takes
//! roughly `measurement_time / sample_size`). The median per-iteration time
//! is reported.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value identity (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle (`criterion::Criterion` subset).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo's bench runner passes `--bench` plus any user filter; treat
        // the first free argument as a substring filter like criterion does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "benches");
        Criterion { filter }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// Benchmark identifier; `new(function, parameter)` renders as
/// `function/parameter` (`criterion::BenchmarkId` subset).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let full = self.full_name(&id.into());
        if !self.criterion.matches(&full) {
            return;
        }
        let report = run_benchmark(self.sample_size, self.measurement_time, |b| f(b));
        println!("{full:<60} {report}");
    }

    /// Run one benchmark receiving a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let full = self.full_name(&id.into());
        if !self.criterion.matches(&full) {
            return;
        }
        let report = run_benchmark(self.sample_size, self.measurement_time, |b| f(b, input));
        println!("{full:<60} {report}");
    }

    /// End the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}

    fn full_name(&self, id: &BenchmarkId) -> String {
        if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this batch's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    sample_size: usize,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) -> String {
    // Calibration: time a single iteration to size batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = measurement_time / sample_size as u32;
    let iters_per_sample =
        (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 24) as u64;

    let mut per_iter_nanos: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_nanos.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_nanos.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_nanos[per_iter_nanos.len() / 2];
    let mean = per_iter_nanos.iter().sum::<f64>() / per_iter_nanos.len() as f64;
    format!(
        "median {:>12}  mean {:>12}  ({} samples x {} iters)",
        fmt_nanos(median),
        fmt_nanos(mean),
        sample_size,
        iters_per_sample
    )
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a named group runner
/// (`criterion::criterion_group!`; config-expression form unsupported).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups (`criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("other".into()),
        };
        let mut group = c.benchmark_group("smoke");
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| ())
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_renders() {
        let id = BenchmarkId::new("f", 22);
        assert_eq!(id.id, "f/22");
    }
}
