//! Offline vendored no-op `serde` derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and report
//! types but never serializes through a data format (serde_json is not an
//! allowed dependency), so the derives only need to *exist*. They accept
//! the `#[serde(...)]` helper attribute and expand to nothing; the marker
//! traits in the vendored `serde` crate are never used as bounds.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
