//! Offline vendored subset of the `rayon` crate.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the slice of rayon the workspace uses: `par_chunks`, `par_chunks_mut`,
//! `into_par_iter` on integer ranges, the `map` / `enumerate` / `for_each` /
//! `sum` / `reduce` / `collect` combinators, and `ThreadPoolBuilder` /
//! `ThreadPool::install` for pinning a thread count.
//!
//! Execution model: a parallel iterator is split into at most
//! `current_num_threads()` contiguous pieces, each piece is folded
//! sequentially on a scoped worker thread (`std::thread::scope`), and the
//! per-piece results are combined on the caller in piece order — so ordered
//! terminals (`collect`, `enumerate`) preserve rayon's ordering guarantees
//! and float reductions are deterministic for a fixed thread count. There is
//! no work stealing; the SBGT kernels feed uniform chunks, where contiguous
//! splitting is already balanced.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

// ---------------------------------------------------------------------------
// Thread-count plumbing
// ---------------------------------------------------------------------------

std::thread_local! {
    static POOL_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let pinned = POOL_THREADS.with(|t| t.get());
    if pinned > 0 {
        pinned
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`] (construction cannot fail
/// here; the type exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with the default (ambient) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the thread count (0 means the ambient default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool" that pins the thread count for closures run under
/// [`ThreadPool::install`]. Workers are scoped threads spawned per
/// operation, so the pool itself holds no OS resources.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count pinned.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        let result = f();
        POOL_THREADS.with(|t| t.set(prev));
        result
    }

    /// The pinned thread count (ambient default if 0).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

// ---------------------------------------------------------------------------
// Producers: splittable sources of items
// ---------------------------------------------------------------------------

/// A splittable, sequentially-drainable source of items. The engine splits a
/// producer into one piece per worker and drains each piece on its own
/// scoped thread.
pub trait Producer: Sized + Send {
    /// Item type produced.
    type Item: Send;
    /// Remaining item count.
    fn len(&self) -> usize;
    /// Whether the producer is exhausted.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, at)` and `[at, len)`.
    fn split_at(self, at: usize) -> (Self, Self);
    /// Drain this piece sequentially, feeding each item to `sink`.
    fn drain(self, sink: &mut impl FnMut(Self::Item));
}

/// Immutable chunks of a slice.
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let mid = (at * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at(mid);
        (
            ChunksProducer {
                slice: l,
                chunk: self.chunk,
            },
            ChunksProducer {
                slice: r,
                chunk: self.chunk,
            },
        )
    }

    fn drain(self, sink: &mut impl FnMut(Self::Item)) {
        for c in self.slice.chunks(self.chunk) {
            sink(c);
        }
    }
}

/// Mutable chunks of a slice.
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let mid = (at * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(mid);
        (
            ChunksMutProducer {
                slice: l,
                chunk: self.chunk,
            },
            ChunksMutProducer {
                slice: r,
                chunk: self.chunk,
            },
        )
    }

    fn drain(self, sink: &mut impl FnMut(Self::Item)) {
        for c in self.slice.chunks_mut(self.chunk) {
            sink(c);
        }
    }
}

/// Integer range producer.
pub struct RangeProducer<T> {
    start: T,
    /// Count of remaining items (avoids end-of-domain overflow for
    /// inclusive ranges).
    count: usize,
}

macro_rules! impl_range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                self.count
            }

            fn split_at(self, at: usize) -> (Self, Self) {
                let at = at.min(self.count);
                (
                    RangeProducer { start: self.start, count: at },
                    RangeProducer {
                        start: self.start + at as $t,
                        count: self.count - at,
                    },
                )
            }

            fn drain(self, sink: &mut impl FnMut(Self::Item)) {
                let mut v = self.start;
                for _ in 0..self.count {
                    sink(v);
                    v = v.wrapping_add(1);
                }
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeProducer<$t>>;

            fn into_par_iter(self) -> Self::Iter {
                let count = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParIter {
                    producer: RangeProducer { start: self.start, count },
                }
            }
        }

        impl IntoParallelIterator for RangeInclusive<$t> {
            type Item = $t;
            type Iter = ParIter<RangeProducer<$t>>;

            fn into_par_iter(self) -> Self::Iter {
                let (start, end) = (*self.start(), *self.end());
                let count = if end >= start {
                    (end - start) as usize + 1
                } else {
                    0
                };
                ParIter {
                    producer: RangeProducer { start, count },
                }
            }
        }
    )*};
}
impl_range_producer!(u32, u64, usize, i32, i64);

/// Owned vector producer (for `Vec::into_par_iter`).
pub struct VecProducer<T> {
    items: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn split_at(mut self, at: usize) -> (Self, Self) {
        let right = self.items.split_off(at.min(self.items.len()));
        (self, VecProducer { items: right })
    }

    fn drain(self, sink: &mut impl FnMut(Self::Item)) {
        for item in self.items {
            sink(item);
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<VecProducer<T>>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            producer: VecProducer { items: self },
        }
    }
}

// ---------------------------------------------------------------------------
// Combinator producers
// ---------------------------------------------------------------------------

/// `map` applied lazily per item on the worker thread.
pub struct MapProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, F, R> Producer for MapProducer<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Send + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(at);
        (
            MapProducer {
                base: l,
                f: Arc::clone(&self.f),
            },
            MapProducer { base: r, f: self.f },
        )
    }

    fn drain(self, sink: &mut impl FnMut(Self::Item)) {
        let f = self.f;
        self.base.drain(&mut |item| sink(f(item)));
    }
}

/// Global-index `enumerate`.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(at);
        (
            EnumerateProducer {
                base: l,
                offset: self.offset,
            },
            EnumerateProducer {
                base: r,
                offset: self.offset + at,
            },
        )
    }

    fn drain(self, sink: &mut impl FnMut(Self::Item)) {
        let mut idx = self.offset;
        self.base.drain(&mut |item| {
            sink((idx, item));
            idx += 1;
        });
    }
}

// ---------------------------------------------------------------------------
// The parallel iterator facade
// ---------------------------------------------------------------------------

/// The single parallel-iterator type; combinators wrap the producer.
pub struct ParIter<P> {
    producer: P,
}

/// Conversion into a parallel iterator (`rayon::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel-iterator combinators and terminals (one trait; the workspace
/// does not distinguish `IndexedParallelIterator`).
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;
    /// Underlying producer type.
    type Producer: Producer<Item = Self::Item>;

    /// Unwrap the producer.
    fn into_producer(self) -> Self::Producer;

    /// Lazy per-item transform.
    fn map<R, F>(self, f: F) -> ParIter<MapProducer<Self::Producer, F>>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        ParIter {
            producer: MapProducer {
                base: self.into_producer(),
                f: Arc::new(f),
            },
        }
    }

    /// Pair each item with its global index.
    fn enumerate(self) -> ParIter<EnumerateProducer<Self::Producer>> {
        ParIter {
            producer: EnumerateProducer {
                base: self.into_producer(),
                offset: 0,
            },
        }
    }

    /// Run `f` on every item (parallel, unordered side effects).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_pieces(self.into_producer(), &|piece| {
            piece.drain(&mut |item| f(item));
        });
    }

    /// Sum all items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let partials = run_pieces(self.into_producer(), &|piece| {
            let mut items = Vec::new();
            piece.drain(&mut |item| items.push(item));
            items.into_iter().sum::<S>()
        });
        partials.into_iter().sum()
    }

    /// Reduce with an identity factory and an associative operation
    /// (`rayon::ParallelIterator::reduce`).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let partials = run_pieces(self.into_producer(), &|piece| {
            let mut acc = identity();
            piece.drain(&mut |item| {
                let prev = std::mem::replace(&mut acc, identity());
                acc = op(prev, item);
            });
            acc
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Collect into a container, preserving item order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let piece_vecs = run_pieces(self.into_producer(), &|piece| {
            let mut items = Vec::with_capacity(piece.len());
            piece.drain(&mut |item| items.push(item));
            items
        });
        piece_vecs.into_iter().flatten().collect()
    }

    /// Item count.
    fn count(self) -> usize {
        let producer = self.into_producer();
        let partials = run_pieces(producer, &|piece| {
            let mut n = 0usize;
            piece.drain(&mut |_| n += 1);
            n
        });
        partials.into_iter().sum()
    }
}

impl<P: Producer> ParallelIterator for ParIter<P> {
    type Item = P::Item;
    type Producer = P;

    fn into_producer(self) -> P {
        self.producer
    }
}

/// Split `producer` into at most `current_num_threads()` contiguous pieces
/// and run `job` over each piece on scoped worker threads, returning the
/// per-piece results in piece order. The last piece runs on the caller.
fn run_pieces<P, R, J>(producer: P, job: &J) -> Vec<R>
where
    P: Producer,
    R: Send,
    J: Fn(P) -> R + Sync,
{
    let len = producer.len();
    let workers = current_num_threads().max(1).min(len.max(1));
    if workers <= 1 || len <= 1 {
        return vec![job(producer)];
    }
    let mut pieces = Vec::with_capacity(workers);
    let mut rest = producer;
    let mut remaining = len;
    for w in 0..workers - 1 {
        let take = remaining / (workers - w);
        let (piece, r) = rest.split_at(take);
        pieces.push(piece);
        rest = r;
        remaining -= take;
    }
    pieces.push(rest);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(pieces.len() - 1);
        let mut iter = pieces.into_iter();
        let first = iter.next().expect("at least one piece");
        for piece in iter {
            handles.push(scope.spawn(move || job(piece)));
        }
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(job(first));
        for handle in handles {
            out.push(handle.join().expect("worker thread panicked"));
        }
        out
    })
}

// ---------------------------------------------------------------------------
// Slice entry points
// ---------------------------------------------------------------------------

/// `par_chunks` on shared slices (`rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-sized chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            producer: ChunksProducer {
                slice: self,
                chunk: chunk_size,
            },
        }
    }
}

/// `par_chunks_mut` on mutable slices (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `chunk_size`-sized chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            producer: ChunksMutProducer {
                slice: self,
                chunk: chunk_size,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_sum_matches_serial() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let par: f64 = data.par_chunks(64).map(|c| c.iter().sum::<f64>()).sum();
        let serial: f64 = data.iter().sum();
        assert_eq!(par, serial);
    }

    #[test]
    fn par_chunks_mut_enumerate_writes_disjointly() {
        let mut data = vec![0usize; 1000];
        data.par_chunks_mut(37).enumerate().for_each(|(ci, chunk)| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = ci * 37 + off;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i);
        }
    }

    #[test]
    fn range_collect_preserves_order() {
        let out: Vec<u64> = (0u64..=999).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 2);
        }
    }

    #[test]
    fn reduce_combines_all_pieces() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (sum, count) = data
            .par_chunks(7)
            .map(|c| (c.iter().sum::<f64>(), c.len()))
            .reduce(|| (0.0, 0), |(s1, n1), (s2, n2)| (s1 + s2, n1 + n2));
        assert_eq!(sum, 5050.0);
        assert_eq!(count, 100);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(POOL_THREADS.with(|t| t.get()), 3);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let data: Vec<f64> = Vec::new();
        let total: f64 = data.par_chunks(8).map(|c| c.iter().sum::<f64>()).sum();
        assert_eq!(total, 0.0);
        let v: Vec<u32> = (5u32..5).into_par_iter().collect();
        assert!(v.is_empty());
    }
}
