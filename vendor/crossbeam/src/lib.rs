//! Offline vendored subset of the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, bounded, Sender, Receiver}` —
//! multi-producer **multi-consumer** channels (std's `mpsc` is
//! single-consumer, which is why the engine's executor pool cannot use it).
//! Implemented as a `Mutex<VecDeque>` + `Condvar`s; throughput is far below
//! real crossbeam's lock-free queue but the engine sends one boxed job per
//! partition per stage, so channel cost is noise next to task bodies. The
//! bounded variant adds a capacity and a `try_send` that fails fast when the
//! queue is full — the admission-control primitive `sbgt-service` builds its
//! ingress queue on.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// Wakes receivers blocked on an empty queue.
        ready: Condvar,
        /// Wakes senders blocked on a full bounded queue.
        space: Condvar,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity; the value is handed back.
        Full(T),
        /// Every receiver is gone; the value is handed back.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// The value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Whether the failure was a full queue (backpressure) rather than a
        /// dead channel.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Sending half; clonable (multi-producer).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable (multi-consumer).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, waking one blocked receiver. On a bounded
        /// channel, blocks while the queue is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            if let Some(cap) = self.inner.capacity {
                while queue.len() >= cap {
                    queue = self.inner.space.wait(queue).expect("channel poisoned");
                }
            }
            queue.push_back(value);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Non-blocking enqueue: [`TrySendError::Full`] when a bounded
        /// channel is at capacity — the load-shedding primitive.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            if let Some(cap) = self.inner.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            queue.push_back(value);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel poisoned").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives; `Err(RecvError)` once the channel is
        /// empty and all senders have disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.inner.space.notify_one();
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Block until a value arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.inner.space.notify_one();
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .expect("channel poisoned");
                queue = guard;
            }
        }

        /// Non-blocking receive: `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            let value = self
                .inner
                .queue
                .lock()
                .expect("channel poisoned")
                .pop_front();
            if value.is_some() {
                self.inner.space.notify_one();
            }
            value
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel poisoned").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Create a bounded MPMC channel holding at most `cap` values
    /// (`cap >= 1`). `send` blocks at capacity; `try_send` fails fast.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded channel capacity must be at least 1");
        with_capacity(Some(cap))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_fan_in() {
            let (tx, rx) = unbounded::<usize>();
            let mut consumers = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                consumers.push(std::thread::spawn(move || {
                    let mut sum = 0usize;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                }));
            }
            for i in 1..=100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 5050);
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_errors_after_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_try_send_sheds_at_capacity() {
            let (tx, rx) = bounded::<u8>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            let err = tx.try_send(3).unwrap_err();
            assert!(err.is_full());
            assert_eq!(err.into_inner(), 3);
            assert_eq!(tx.len(), 2);
            // Draining one slot re-admits.
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.try_recv(), Some(2));
            assert_eq!(rx.try_recv(), Some(3));
            assert!(rx.is_empty() && tx.is_empty());
        }

        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            let writer = std::thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the reader drains.
            });
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            writer.join().unwrap();
        }

        #[test]
        #[should_panic(expected = "capacity must be at least 1")]
        fn zero_capacity_rejected() {
            let _ = bounded::<u8>(0);
        }
    }
}
