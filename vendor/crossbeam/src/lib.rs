//! Offline vendored subset of the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` — an
//! unbounded multi-producer **multi-consumer** channel (std's `mpsc` is
//! single-consumer, which is why the engine's executor pool cannot use it).
//! Implemented as a `Mutex<VecDeque>` + `Condvar`; throughput is far below
//! real crossbeam's lock-free queue but the engine sends one boxed job per
//! partition per stage, so channel cost is noise next to task bodies.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Sending half; clonable (multi-producer).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable (multi-consumer).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            queue.push_back(value);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives; `Err(RecvError)` once the channel is
        /// empty and all senders have disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Block until a value arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .expect("channel poisoned");
                queue = guard;
            }
        }

        /// Non-blocking receive: `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .queue
                .lock()
                .expect("channel poisoned")
                .pop_front()
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_fan_in() {
            let (tx, rx) = unbounded::<usize>();
            let mut consumers = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                consumers.push(std::thread::spawn(move || {
                    let mut sum = 0usize;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                }));
            }
            for i in 1..=100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 5050);
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_errors_after_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
